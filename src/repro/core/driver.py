"""The full parallel community-detection pipeline (paper §5.4).

Steps, exactly as the paper lists them:

1. **VF preprocessing** (optional): merge single-degree vertices into their
   neighbors, once, before phase 1 (§5.3, §6.1).
2. **Coloring preprocessing** (optional): distance-1 color each phase's
   input and process color sets one at a time (§5.2).  Coloring stays
   active until the phase input drops below ``coloring_min_vertices`` or
   the inter-phase modularity gain falls below ``colored_threshold``
   (§6.1); colored phases use θ = ``colored_threshold``, later phases
   θ = ``final_threshold``.
3. **Phases**: Algorithm 1 per phase (:mod:`repro.core.phase`).
4. **Graph rebuilding**: coarsen by the phase's final communities
   (:mod:`repro.graph.coarsen`) and continue on the condensed graph.

The driver records everything the evaluation section needs: per-iteration
modularity, per-phase work counters, coloring statistics, rebuild lock
counts, and wall-clock step timers (clustering / coloring / rebuild — the
Fig. 8 buckets).  Timing flows through the unified observability layer
(:mod:`repro.obs`): the driver installs its :class:`~repro.obs.trace.Tracer`
as ambient for the whole run, and ``result.timers`` is a live
:class:`~repro.utils.timing.StepTimer` view over the tracer's step
buckets.  With ``config.trace`` enabled the same clock reads additionally
produce the span stream behind ``repro obs`` reports and Chrome traces.
"""

from __future__ import annotations

import json
from contextlib import ExitStack
from dataclasses import asdict, dataclass, field

import numpy as np

from repro.coloring.balanced import balance_colors
from repro.coloring.distance_k import distance_k_coloring
from repro.coloring.greedy import greedy_coloring
from repro.coloring.jones_plassmann import jones_plassmann_coloring
from repro.coloring.speculative import speculative_coloring
from repro.coloring.validate import color_class_sizes, color_set_partition
from repro.core.config import HeuristicVariant, LouvainConfig
from repro.core.dendrogram import Dendrogram
from repro.core.history import ConvergenceHistory, PhaseRecord
from repro.core.phase import run_phase, state_modularity
from repro.core.sweep import init_state
from repro.core.workspace import SweepWorkspace
from repro.core.vf import VFResult, chain_compress, vf_merge
from repro.graph.coarsen import coarsen
from repro.graph.csr import CSRGraph
from repro.obs.live import stream_metrics
from repro.obs.profile import ProfileData, profile_run
from repro.obs.trace import Tracer, use_tracer
from repro.parallel.backends import make_backend
from repro.robust.budget import BudgetOutcome, use_budget
from repro.robust.checkpoint import (
    Checkpoint,
    config_fingerprint,
    load_checkpoint,
    save_checkpoint,
)
from repro.robust.faults import use_faults
from repro.utils.arrays import renumber_labels
from repro.utils.errors import CheckpointError, ValidationError
from repro.utils.timing import StepTimer, step_timer_view

__all__ = ["LouvainResult", "louvain"]


@dataclass
class LouvainResult:
    """Everything produced by one pipeline run.

    Attributes
    ----------
    communities:
        Dense labels ``0..k-1`` on the *original* input vertices.
    modularity:
        Eq. 3 modularity of ``communities`` on the input graph.
    history:
        Per-iteration and per-phase records (work counters included).
    dendrogram:
        The phase hierarchy (VF level included when VF ran).
    config:
        The configuration the run used.
    timers:
        Wall-clock step buckets: ``clustering``, ``coloring``, ``rebuild``
        (a live view over ``trace``'s step buckets).
    vf:
        VF preprocessing outcome (``None`` when VF was off).
    trace:
        The run's :class:`~repro.obs.trace.Tracer` when ``config.trace``
        was enabled (feed it to :mod:`repro.obs.export` /
        :mod:`repro.obs.report`); ``None`` otherwise.
    profile:
        Collapsed-stack :class:`~repro.obs.profile.ProfileData` when
        ``config.profile`` was enabled (write it out with
        ``profile.write_collapsed(path)`` or merge it into the Chrome
        trace); ``None`` otherwise.
    budget_outcome:
        What the run's :class:`~repro.robust.budget.RunBudget` did —
        completion vs. cancellation (and why), counters, degradation
        ladder steps taken, and the cancellation checkpoint's path.
        ``None`` for unbudgeted runs.
    """

    communities: np.ndarray
    modularity: float
    history: ConvergenceHistory
    dendrogram: Dendrogram
    config: LouvainConfig
    timers: StepTimer = field(default_factory=StepTimer)
    vf: VFResult | None = None
    trace: "Tracer | None" = None
    budget_outcome: "BudgetOutcome | None" = None
    profile: "ProfileData | None" = None

    @property
    def num_communities(self) -> int:
        return int(self.communities.max()) + 1 if self.communities.size else 0

    @property
    def num_phases(self) -> int:
        return self.history.num_phases

    @property
    def total_iterations(self) -> int:
        return self.history.total_iterations

    def __repr__(self) -> str:
        return (
            f"LouvainResult(Q={self.modularity:.6f}, "
            f"communities={self.num_communities}, phases={self.num_phases}, "
            f"iterations={self.total_iterations}, "
            f"variant={self.config.variant_name!r})"
        )


def _resolve_config(config, variant, overrides) -> LouvainConfig:
    if config is not None and variant is not None:
        raise ValidationError("pass either config or variant, not both")
    if variant is not None:
        if isinstance(variant, str):
            variant = HeuristicVariant(variant)
        return variant.config(**overrides)
    if config is None:
        config = LouvainConfig()
    return config.with_(**overrides) if overrides else config


def louvain(
    graph: CSRGraph,
    config: LouvainConfig | None = None,
    *,
    variant: "HeuristicVariant | str | None" = None,
    initial_communities=None,
    checkpoint=None,
    resume=None,
    **overrides,
) -> LouvainResult:
    """Run parallel Louvain community detection on ``graph``.

    Parameters
    ----------
    graph:
        Input graph.
    config:
        Full configuration; defaults to :class:`LouvainConfig` defaults
        (the paper's *baseline*: minimum-label heuristic only).
    variant:
        Alternative to ``config``: one of the paper's three presets
        (:class:`HeuristicVariant` or its string value).
    initial_communities:
        Optional warm start: phase 1 begins from this assignment instead
        of singletons (Algorithm 1's ``C_init``).  Labels may be arbitrary
        integers; they are compacted to ``[0, n)``.  Incompatible with
        ``use_vf`` (vertex following assumes a singleton start; a merged
        meta-vertex has no well-defined inherited label) — the incremental
        pipeline of :mod:`repro.dynamic` relies on this.
    checkpoint:
        Optional path: after every completed phase that will be followed
        by another, write a ``.ckpt.npz`` phase-boundary checkpoint there
        (atomically — see :mod:`repro.robust.checkpoint`).
    resume:
        Optional path to a checkpoint written by a previous run with the
        same *semantic* configuration (backend/threads/tracing may
        differ): the pipeline skips the completed phases and continues
        from the saved coarse graph, producing the exact final assignment
        and modularity the uninterrupted run would have.  Raises
        :class:`~repro.utils.errors.CheckpointError` on a fingerprint or
        graph mismatch.  Incompatible with ``initial_communities``; the
        resumed result's ``vf`` field is ``None`` (the VF level itself is
        preserved in the dendrogram and mapping).
    **overrides:
        Individual :class:`LouvainConfig` fields to override.

    Examples
    --------
    >>> from repro.graph.generators import two_cliques_bridge
    >>> result = louvain(two_cliques_bridge(4), variant="baseline+VF+Color",
    ...                  coloring_min_vertices=4)
    >>> result.num_communities
    2
    """
    cfg = _resolve_config(config, variant, overrides)
    resumed = None
    if resume is not None:
        if initial_communities is not None:
            raise ValidationError(
                "resume cannot be combined with initial_communities"
            )
        # The fingerprint is validated against the checkpoint's meta
        # before any array is materialized (fail-fast on a wrong config).
        resumed = load_checkpoint(
            resume, expected_fingerprint=config_fingerprint(cfg))
        if resumed.pipeline != "driver":
            raise CheckpointError(
                f"{resume}: checkpoint was written by the "
                f"{resumed.pipeline!r} pipeline, not the driver"
            )
        if (resumed.n_original != graph.num_vertices
                or resumed.m_original != graph.num_edges):
            raise CheckpointError(
                f"{resume}: graph mismatch — checkpoint recorded "
                f"n={resumed.n_original} M={resumed.m_original}, got "
                f"n={graph.num_vertices} M={graph.num_edges}"
            )
    tracer = Tracer(enabled=cfg.trace)
    timers = step_timer_view(tracer)
    history = ConvergenceHistory()
    dendrogram = Dendrogram()
    if resumed is not None:
        history = resumed.history
        for level, label in zip(resumed.levels, resumed.labels):
            dendrogram.push(level, label)

    n_original = graph.num_vertices
    warm_start = None
    if initial_communities is not None:
        if cfg.use_vf:
            raise ValidationError(
                "initial_communities cannot be combined with use_vf "
                "(see the louvain() docstring)"
            )
        warm = np.asarray(initial_communities)
        if warm.shape != (n_original,):
            raise ValidationError(
                f"initial_communities must have shape ({n_original},)"
            )
        if not np.issubdtype(warm.dtype, np.integer):
            raise ValidationError("initial_communities must be integers")
        warm_start, _ = renumber_labels(warm)
    if n_original == 0:
        return LouvainResult(
            communities=np.zeros(0, dtype=np.int64),
            modularity=0.0,
            history=history,
            dendrogram=dendrogram,
            config=cfg,
        )

    backend = make_backend(cfg.backend, cfg.num_threads)
    vf_result: VFResult | None = None
    current = graph
    mapping = np.arange(n_original, dtype=np.int64)
    start_phase = 0
    if resumed is not None:
        current = resumed.graph
        mapping = resumed.mapping
        start_phase = resumed.phase_index

    # The tracer stays ambient for the whole run so nested kernels and
    # forked workers can emit without threading it through signatures;
    # the fault injector is scoped the same way (no-op when no plan).
    _obs = ExitStack()
    _obs.enter_context(use_tracer(tracer))
    _obs.enter_context(use_faults(cfg.fault_plan))
    # The budget controller is ambient too (run_phase and the process
    # backend's recovery loop consult it); its clock starts here.
    controller = _obs.enter_context(use_budget(cfg.budget))
    _obs.enter_context(controller.signal_scope())
    # Live plane (optional, read-only): stream periodic registry
    # snapshots to the ring file and/or sample this thread's stack.
    # Both only observe — results stay bitwise identical either way.
    if cfg.metrics_ring:
        _obs.enter_context(stream_metrics(tracer, cfg.metrics_ring))
    profile_data: "ProfileData | None" = None
    if cfg.profile:
        profile_data = _obs.enter_context(profile_run())
    _obs.enter_context(tracer.span(
        "louvain", cat="pipeline", variant=cfg.variant_name,
        n=n_original, backend=cfg.backend,
    ))
    try:
        # -- Step 1: VF preprocessing (optional, once, §6.1; a resumed run
        # already carries its VF level in the mapping and dendrogram) ------
        if cfg.use_vf and resumed is None:
            with tracer.step("rebuild", stage="vf"):
                vf_result = (
                    chain_compress(current)
                    if cfg.vf_chain_compression
                    else vf_merge(current)
                )
            if vf_result.num_merged:
                dendrogram.push(vf_result.vertex_to_meta, "vf")
                mapping = vf_result.vertex_to_meta[mapping]
                current = vf_result.graph

        # -- Steps 2-4: colored/uncolored phases + rebuilds -----------------
        coloring_active = cfg.use_coloring
        last_phase_gain = np.inf
        if resumed is not None:
            coloring_active = resumed.coloring_active
            last_phase_gain = resumed.last_phase_gain

        # Degradation ladder adjusts these *effective* knobs, never cfg
        # itself: the coloring schedule's stop condition and the
        # checkpoint fingerprint keep reading the configured values, so
        # a cancelled run's checkpoint resumes under the original config.
        eff_colored_threshold = cfg.colored_threshold
        eff_prune = cfg.prune
        cancelled_reason: "str | None" = None
        cancel_ckpt: "str | None" = None

        def _cancel_checkpoint(next_phase_index, mapping_, graph_,
                               coloring_active_, gain_) -> "str | None":
            # The cancellation checkpoint is a regular phase-boundary
            # checkpoint of the state the *next* (or interrupted) phase
            # starts from — resuming it unbudgeted reproduces the
            # unbudgeted run's final assignment bitwise.
            budget = cfg.budget
            path = (budget.checkpoint
                    if budget is not None and budget.checkpoint is not None
                    else checkpoint)
            if path is None:
                return None
            save_checkpoint(path, Checkpoint(
                pipeline="driver",
                phase_index=next_phase_index,
                mapping=mapping_,
                graph=graph_,
                coloring_active=coloring_active_,
                last_phase_gain=float(gain_),
                config_fingerprint=config_fingerprint(cfg),
                config_json=json.dumps(asdict(cfg)),
                history=history,
                levels=dendrogram.levels,
                labels=dendrogram.labels,
                n_original=n_original,
                m_original=graph.num_edges,
            ))
            tracer.count("checkpoint.saved")
            return str(path)

        for phase_index in range(start_phase, cfg.max_phases):
            # Budget: cancel at the phase boundary (exactly the regular
            # checkpoint state), or walk the degradation ladder under
            # pressure before it comes to that.
            reason = controller.stop_reason()
            if reason is not None:
                cancelled_reason = reason
                with tracer.span("cancellation", cat="budget",
                                 phase=phase_index, reason=reason):
                    cancel_ckpt = _cancel_checkpoint(
                        phase_index, mapping, current,
                        coloring_active, last_phase_gain,
                    )
                tracer.count("run.cancelled")
                break
            for step in controller.pending_degradations():
                tracer.count("budget.degraded")
                tracer.instant("degraded", cat="budget", step=step,
                               pressure=round(controller.pressure(), 3))
                if step == "coarse-threshold":
                    # Toward Table 5's coarse setting: one decade per
                    # firing, floored at the paper's 1e-2 default and
                    # capped a decade above it.
                    eff_colored_threshold = min(
                        max(eff_colored_threshold * 10.0, 1e-2), 1e-1
                    )
                elif step == "prune":
                    eff_prune = True
                elif step == "no-trace":
                    tracer.enabled = False
                controller.note_degradation(step)

            n = current.num_vertices
            color_this_phase = (
                coloring_active
                and n >= cfg.coloring_min_vertices
                and last_phase_gain >= cfg.colored_threshold
                and (cfg.multiphase_coloring or phase_index == 0)
            )
            if coloring_active and not color_this_phase:
                # §6.1: once a stop condition fires, no further phase colors.
                coloring_active = False

            color_sets = None
            colors = None
            if color_this_phase:
                with tracer.step("coloring", phase=phase_index):
                    if cfg.distance_k > 1:
                        colors = distance_k_coloring(
                            current, cfg.distance_k, seed=cfg.seed
                        )
                    elif cfg.colorer == "speculative":
                        colors = speculative_coloring(current, seed=cfg.seed)
                    elif cfg.colorer == "greedy":
                        colors = greedy_coloring(current, seed=cfg.seed)
                    else:
                        colors = jones_plassmann_coloring(current, seed=cfg.seed)
                    if cfg.balanced_coloring:
                        # Allow 50% color headroom: balanced colorings trade
                        # a few extra (smaller) sets for evenness.
                        headroom = int(colors.max()) + 1 if colors.size else 1
                        colors = balance_colors(
                            current, colors, max_colors=headroom + headroom // 2
                        )
                    color_sets = color_set_partition(colors)
                if tracer.enabled:
                    for size in color_class_sizes(colors).tolist():
                        tracer.observe("coloring.set_size", size)

            threshold = (
                eff_colored_threshold if color_this_phase
                else cfg.final_threshold
            )
            state = init_state(
                current, warm_start if phase_index == 0 else None
            )
            # One workspace per phase: gather plans and scratch buffers are
            # graph-bound, and each phase runs on a new coarsened graph.
            workspace = (
                SweepWorkspace(current, aggregation=cfg.aggregation,
                               array_backend=cfg.array_backend)
                if cfg.kernel == "vectorized" else None
            )
            with tracer.step("clustering", phase=phase_index):
                outcome = run_phase(
                    current,
                    state,
                    threshold=threshold,
                    phase_index=phase_index,
                    color_sets=color_sets,
                    kernel=cfg.kernel,
                    use_min_label=cfg.use_min_label,
                    backend=backend,
                    max_iterations=cfg.max_iterations_per_phase,
                    resolution=cfg.resolution,
                    workspace=workspace,
                    aggregation=cfg.aggregation,
                    prune=eff_prune,
                    incremental=cfg.incremental_modularity,
                    sanitize=cfg.sanitize,
                )
            interrupted = outcome.interrupted
            if interrupted:
                # Cancel mid-phase: checkpoint the state this phase
                # *started* from (mapping/graph/history are still
                # pre-phase here), then fold the partial phase's
                # best-seen progress into the anytime result below.
                cancelled_reason = controller.stop_reason() or "deadline"
                with tracer.span("cancellation", cat="budget",
                                 phase=phase_index,
                                 reason=cancelled_reason):
                    cancel_ckpt = _cancel_checkpoint(
                        phase_index, mapping, current,
                        coloring_active, last_phase_gain,
                    )
                tracer.count("run.cancelled")
                if not outcome.records:
                    break  # no completed iteration — nothing to fold
            history.iterations.extend(outcome.records)

            with tracer.step("rebuild", phase=phase_index):
                rebuild = coarsen(current, state.comm)
            history.phases.append(
                PhaseRecord(
                    phase=phase_index,
                    num_vertices=n,
                    num_edges=current.num_edges,
                    colored=color_this_phase,
                    num_colors=len(color_sets) if color_sets else 0,
                    threshold=threshold,
                    iterations=len(outcome.records),
                    start_modularity=outcome.start_modularity,
                    end_modularity=outcome.end_modularity,
                    rebuild_lock_ops=rebuild.lock_ops,
                    rebuild_num_communities=rebuild.num_communities,
                    color_class_sizes=(
                        tuple(color_class_sizes(colors).tolist())
                        if colors is not None
                        else ()
                    ),
                )
            )
            dendrogram.push(rebuild.vertex_to_meta, f"phase-{phase_index}")
            mapping = rebuild.vertex_to_meta[mapping]
            last_phase_gain = outcome.end_modularity - outcome.start_modularity
            if not interrupted:
                controller.note_phase()

            made_progress = rebuild.num_communities < n
            converged = last_phase_gain < cfg.final_threshold
            tracer.instant(
                "phase_end", phase=phase_index,
                Q=outcome.end_modularity,
                communities=rebuild.num_communities,
            )
            current = rebuild.graph
            if interrupted:
                break
            if converged or not made_progress:
                break
            if checkpoint is not None:
                # Phase boundary: everything the next phase starts from.
                # Written only when another phase will follow — a finished
                # run's product is its result, not a checkpoint.
                with tracer.span("checkpoint", cat="robust",
                                 phase=phase_index):
                    save_checkpoint(checkpoint, Checkpoint(
                        pipeline="driver",
                        phase_index=phase_index + 1,
                        mapping=mapping,
                        graph=current,
                        coloring_active=coloring_active,
                        last_phase_gain=float(last_phase_gain),
                        config_fingerprint=config_fingerprint(cfg),
                        config_json=json.dumps(asdict(cfg)),
                        history=history,
                        levels=dendrogram.levels,
                        labels=dendrogram.labels,
                        n_original=n_original,
                        m_original=graph.num_edges,
                    ))
                tracer.count("checkpoint.saved")
        budget_outcome = (
            controller.outcome(cancelled_reason, cancel_ckpt)
            if controller.armed else None
        )
    finally:
        backend.close()
        _obs.close()

    communities, _ = renumber_labels(mapping)
    from repro.core.modularity import modularity as full_modularity

    return LouvainResult(
        communities=communities,
        modularity=full_modularity(graph, communities,
                                   resolution=cfg.resolution),
        history=history,
        dendrogram=dendrogram,
        config=cfg,
        timers=timers,
        vf=vf_result,
        trace=tracer if cfg.trace else None,
        budget_outcome=budget_outcome,
        profile=profile_data,
    )
