"""Batched multi-graph Louvain: one kernel invocation per sweep, B graphs.

Running :func:`repro.core.driver.louvain` in a loop over many small graphs
(generator ensembles, per-snapshot dynamic inputs, benchmark suites) pays
the vectorized kernel's fixed dispatch overhead once *per graph per
iteration*.  :func:`louvain_batch` instead packs the inputs into their
block-diagonal union (:mod:`repro.graph.batch`) and sweeps **all** graphs
with a single :func:`~repro.core.sweep.compute_targets_vectorized` call
per iteration, amortizing the fixed costs over the whole batch.

The batched run is *equivalent*, not merely close: for every input graph
the final communities, modularity trajectory, phase count, and iteration
count are identical to a standalone :func:`~repro.core.driver.louvain`
run under the same configuration.  The ingredients:

* **Disconnected union.**  The packed graph has no edges between blocks,
  community labels start per block and candidate moves only ever point at
  neighboring (same-block) communities, so per-graph state never mixes.
* **Per-vertex normalization.**  The one global quantity in the gain
  formula is the graph's total edge weight ``m``; the batched sweep passes
  per-vertex ``m_v``/``two_m_sq_v`` arrays (python-float-derived, one
  value per block) to the kernel, whose elementwise division is bitwise
  identical to the standalone scalar division.
* **Per-graph commits and reductions.**  Moves are committed one block at
  a time via :func:`~repro.core.sweep.apply_moves_tracked` — its
  incremental Q deltas are contiguous-slice float reductions over exactly
  the standalone run's arrays, hence bitwise identical (NumPy's pairwise
  summation depends on the operand array, which is the same).
* **Per-graph convergence masking.**  Each graph keeps its own
  ``q_prev``/best-seen/frontier/converged state and drops out of the
  packed active set when its own Algorithm-1 stopping rule fires; batch
  iteration ``i`` sweeps a graph if and only if the standalone run's
  iteration ``i`` would (both start at 0 and apply the same per-iteration
  rule).  Finished graphs are likewise dropped from the union between
  phases — a re-pack of the survivors' coarse graphs.

Scope: the batch path supports the paper's *baseline* heuristic under the
serial execution backend (``use_vf=False``, ``use_coloring=False``,
``kernel="vectorized"``, ``backend="serial"``, no fault injection, no
warm starts / checkpointing).  Everything else — pruning, incremental
modularity, aggregation modes, min-label ablation, resolution, budgets,
tracing, sanitizing, float32 graphs, array backends — composes.
"""

from __future__ import annotations

from contextlib import ExitStack, nullcontext
from dataclasses import dataclass

import numpy as np

from repro.backends import numpy_ops
from repro.core.config import LouvainConfig
from repro.core.modularity import intra_community_weight, modularity
from repro.core.sweep import (
    SweepState,
    apply_moves,
    apply_moves_tracked,
    compute_targets_vectorized,
    init_state,
)
from repro.core.workspace import SweepWorkspace
from repro.graph.batch import GraphBatch, pack_graphs
from repro.graph.coarsen import coarsen
from repro.graph.csr import CSRGraph
from repro.lint.sanitizer import frozen_snapshot, resolve_sanitize
from repro.obs.trace import Tracer, get_tracer, use_tracer
from repro.robust.budget import get_budget, use_budget
from repro.utils.arrays import renumber_labels
from repro.utils.errors import ValidationError

__all__ = [
    "BatchGraphResult",
    "BatchPhaseOutcome",
    "louvain_batch",
    "run_phase_batch",
]


@dataclass
class BatchGraphResult:
    """Per-graph outcome of :func:`louvain_batch` (a light LouvainResult).

    ``communities``/``modularity``/``num_phases``/``total_iterations``
    match the standalone :func:`~repro.core.driver.louvain` run of the
    same graph exactly.  ``converged`` mirrors the driver's stopping
    test (last phase gain below ``final_threshold``); a graph stopped by
    the no-progress rule or a cap reports ``converged=False``.
    """

    communities: np.ndarray
    modularity: float
    num_phases: int
    total_iterations: int
    converged: bool
    interrupted: bool = False

    @property
    def num_communities(self) -> int:
        return int(self.communities.max()) + 1 if self.communities.size else 0

    def __repr__(self) -> str:
        return (
            f"BatchGraphResult(Q={self.modularity:.6f}, "
            f"communities={self.num_communities}, phases={self.num_phases}, "
            f"iterations={self.total_iterations})"
        )


@dataclass(frozen=True)
class BatchPhaseOutcome:
    """One batched phase: the union state plus per-graph outcome arrays."""

    state: SweepState
    #: ``(B,)`` exact modularity of each graph at the phase start/end.
    start_modularity: np.ndarray
    end_modularity: np.ndarray
    #: ``(B,)`` iterations each graph was swept.
    iterations: np.ndarray
    #: ``(B,)`` per-graph Algorithm-1 convergence (False on the cap).
    converged: np.ndarray
    #: Budget stop: every still-unconverged graph was cut off.
    interrupted: bool = False


def _block_state_modularity(sub: CSRGraph, comm_local, comm_degree_block,
                            *, m: float, resolution: float) -> float:
    """Exact Eq. 3 modularity of one block — the standalone
    :func:`~repro.core.phase.state_modularity` computed from the block's
    slices (same arrays element-for-element, hence the same float)."""
    if m <= 0:
        return 0.0
    intra = intra_community_weight(sub, comm_local)
    return intra / (2.0 * m) - resolution * float(
        numpy_ops.square(comm_degree_block / (2.0 * m)).sum()
    )


def run_phase_batch(
    batch: GraphBatch,
    state: SweepState,
    *,
    threshold: float,
    phase_index: int = 0,
    use_min_label: bool = True,
    max_iterations: int = 1000,
    resolution: float = 1.0,
    workspace: "SweepWorkspace | None" = None,
    aggregation: str = "auto",
    prune: bool = True,
    incremental: bool = True,
    sanitize: "bool | None" = None,
) -> BatchPhaseOutcome:
    """One Louvain phase over every graph of ``batch`` simultaneously.

    Mirrors :func:`repro.core.phase.run_phase` (uncolored, serial) with
    all per-phase control state — ``q_prev``, best-seen assignment,
    frontier, full-sweep verification, convergence — kept **per graph**,
    while each iteration's target computation is one kernel invocation
    over the concatenated active sets.  A graph whose stopping rule fires
    leaves the packed active set; the iteration loop ends when every
    graph has converged (or the cap / budget fires).

    Graphs with zero edge weight are marked converged immediately with
    zero iterations (the standalone phase would no-op sweep them once;
    :func:`louvain_batch` never packs them).
    """
    union = batch.graph
    B = batch.num_graphs
    n = union.num_vertices
    sanitize = resolve_sanitize(sanitize)
    track = incremental or prune

    subs = [batch.subgraph(g) for g in range(B)]
    ms = [sub.total_weight for sub in subs]
    offs = [batch.block(g).start for g in range(B)]
    sizes = [batch.num_vertices_of(g) for g in range(B)]

    # Per-vertex normalizers for the batched kernel.  ``m_v`` follows the
    # weight dtype so the kernel's elementwise ``e / m_v`` rounds exactly
    # like the standalone ``e / m`` scalar division (NumPy casts a python
    # float down to the array dtype); the (2m)^2 divisor hits the always-
    # float64 penalty term, so it stays float64.
    m_v_full = batch.per_vertex(ms).astype(union.weights.dtype)
    tmsq_full = batch.per_vertex([(2.0 * m) ** 2 for m in ms])

    def comm_local(g: int) -> np.ndarray:
        vs = batch.block(g)
        return state.comm[vs] - offs[g]

    # Exact per-graph Q ingredients at the phase start (the incremental
    # tracking baseline; also the non-incremental recount inputs).
    intra = [intra_community_weight(subs[g], comm_local(g)) for g in range(B)]
    degree_sq = [
        float(numpy_ops.square(state.comm_degree[batch.block(g)]).sum())
        for g in range(B)
    ]

    def incremental_q(g: int) -> float:
        two_m = 2.0 * ms[g]
        return (intra[g] / two_m
                - resolution * degree_sq[g] / (two_m * two_m))

    def exact_q(g: int) -> float:
        vs = batch.block(g)
        return _block_state_modularity(
            subs[g], comm_local(g), state.comm_degree[vs],
            m=ms[g], resolution=resolution,
        )

    def q_of(g: int) -> float:
        return incremental_q(g) if incremental else exact_q(g)

    converged = numpy_ops.zeros(B, dtype=bool)
    iters = numpy_ops.zeros(B, dtype=np.int64)
    start_q = numpy_ops.zeros(B, dtype=np.float64)
    end_q = numpy_ops.zeros(B, dtype=np.float64)
    q_prev = [-1.0] * B          # Algorithm 1 line 4, per graph.
    last_q = [0.0] * B
    best_q = [0.0] * B
    for g in range(B):
        if ms[g] <= 0:
            converged[g] = True
            continue
        start_q[g] = q_of(g)
        best_q[g] = last_q[g] = start_q[g]

    # Best-seen state per graph (Lemma 1: parallel sweeps can lose Q);
    # blocks are disjoint, so one union-sized copy serves every graph.
    best_comm = state.comm.copy()
    best_degree = state.comm_degree.copy()
    best_size = state.comm_size.copy()

    active: list[np.ndarray] = [
        numpy_ops.arange(offs[g], offs[g] + sizes[g], dtype=np.int64)
        for g in range(B)
    ]
    frontier_mask = numpy_ops.zeros(n, dtype=bool) if track else None
    moved = [0] * B
    interrupted = False
    tracer = get_tracer()
    budget = get_budget()

    for iteration in range(max_iterations):
        running = [g for g in range(B) if not converged[g]]
        if not running:
            break
        if budget.should_stop():
            interrupted = True
            break
        full_sweep = [active[g].size == sizes[g] for g in range(B)]
        packed = numpy_ops.concat([active[g] for g in running])
        with tracer.span("batch_iteration", phase=phase_index,
                         iteration=iteration, graphs=len(running),
                         vertices=int(packed.size)):
            # The one batched kernel invocation of this iteration.  The
            # standalone sweep's snapshot guard lives in compute_targets;
            # here it wraps the direct kernel call the same way.
            guard = frozen_snapshot(state) if sanitize else nullcontext()
            with guard:
                targets = compute_targets_vectorized(
                    union, state, packed,
                    use_min_label=use_min_label, resolution=resolution,
                    workspace=workspace, aggregation=aggregation,
                    plan_key=("batch", 0),
                    m_v=m_v_full[packed], two_m_sq_v=tmsq_full[packed],
                )
            # Commit block by block: the per-graph tracked deltas are the
            # standalone run's contiguous-slice reductions, bitwise.
            bounds = numpy_ops.searchsorted(packed, batch.vertex_offsets)
            for g in running:
                lo, hi = int(bounds[g]), int(bounds[g + 1])
                if track:
                    result = apply_moves_tracked(
                        union, state, packed[lo:hi], targets[lo:hi],
                        workspace=workspace, frontier_out=frontier_mask,
                    )
                    moved[g] = result.num_moved
                    intra[g] += result.delta_intra
                    degree_sq[g] += result.delta_degree_sq
                else:
                    moved[g] = apply_moves(
                        union, state, packed[lo:hi], targets[lo:hi]
                    )

        # Per-graph bookkeeping and convergence — run_phase's loop tail,
        # applied to each graph independently.
        total_moved = 0
        for g in running:
            iters[g] += 1
            total_moved += moved[g]
            q_curr = q_of(g)
            if q_curr > best_q[g]:
                best_q[g] = q_curr
                vs = batch.block(g)
                best_comm[vs] = state.comm[vs]
                best_degree[vs] = state.comm_degree[vs]
                best_size[vs] = state.comm_size[vs]
            last_q[g] = q_curr
            if moved[g] == 0:
                if prune and not full_sweep[g]:
                    # Pruned fixed point: verify with one full sweep
                    # before declaring this graph converged.
                    active[g] = numpy_ops.arange(
                        offs[g], offs[g] + sizes[g], dtype=np.int64
                    )
                    q_prev[g] = q_curr
                    continue
                converged[g] = True
                continue
            if (q_curr - q_prev[g]) < threshold * abs(q_prev[g]):
                converged[g] = True
                continue
            q_prev[g] = q_curr
            if prune:
                vs = batch.block(g)
                active[g] = (
                    numpy_ops.flatnonzero(frontier_mask[vs]) + offs[g]
                )
        if prune:
            frontier_mask[:] = False
        if tracer.enabled:
            tracer.count("sweep.moves", total_moved)
            tracer.observe("batch.running_graphs", len(running))
        budget.note_iteration()

    # Phase boundary, per graph: restore the best-seen block if the
    # trajectory ended below it, then recount Q exactly (drift guard).
    for g in range(B):
        if ms[g] <= 0:
            continue
        ref = last_q[g] if iters[g] else start_q[g]
        if best_q[g] > ref:
            vs = batch.block(g)
            state.comm[vs] = best_comm[vs]
            state.comm_degree[vs] = best_degree[vs]
            state.comm_size[vs] = best_size[vs]
        end_q[g] = exact_q(g)
    return BatchPhaseOutcome(
        state=state,
        start_modularity=start_q,
        end_modularity=end_q,
        iterations=iters,
        converged=converged,
        interrupted=interrupted,
    )


def _validate_batch_config(cfg: LouvainConfig) -> None:
    unsupported = []
    if cfg.use_vf:
        unsupported.append("use_vf")
    if cfg.use_coloring:
        unsupported.append("use_coloring")
    if cfg.kernel != "vectorized":
        unsupported.append(f"kernel={cfg.kernel!r}")
    if cfg.backend != "serial":
        unsupported.append(f"backend={cfg.backend!r}")
    if cfg.fault_plan is not None:
        unsupported.append("fault_plan")
    if unsupported:
        raise ValidationError(
            "louvain_batch supports the baseline heuristic under the "
            "serial backend only; unsupported settings: "
            + ", ".join(unsupported)
            + " (run repro.louvain per graph for these)"
        )


class _Running:
    """Multi-phase bookkeeping for one still-running graph."""

    __slots__ = ("index", "graph", "mapping", "phases", "iterations")

    def __init__(self, index: int, graph: CSRGraph):
        self.index = index
        self.graph = graph
        self.mapping = numpy_ops.arange(graph.num_vertices, dtype=np.int64)
        self.phases = 0
        self.iterations = 0


def louvain_batch(
    graphs: "list[CSRGraph]",
    config: "LouvainConfig | None" = None,
    **overrides,
) -> "list[BatchGraphResult]":
    """Run baseline Louvain on many graphs as one batched computation.

    Packs ``graphs`` into their block-diagonal union and executes the
    multi-phase pipeline with one kernel invocation per sweep iteration
    (see the module docstring).  Per graph, the returned communities,
    modularity, phase count, and iteration count equal the standalone
    :func:`repro.louvain` run under the same configuration — the batch
    changes throughput, never results.

    Parameters
    ----------
    graphs:
        The input graphs (any mix of sizes and weight dtypes).
    config:
        :class:`~repro.core.config.LouvainConfig`; defaults to the
        baseline defaults.  Must keep ``use_vf``/``use_coloring`` off,
        ``kernel="vectorized"``, ``backend="serial"``, and no fault
        plan — :class:`~repro.utils.errors.ValidationError` otherwise.
    **overrides:
        Individual config fields to override.

    Returns
    -------
    list[BatchGraphResult]
        One entry per input graph, in input order.

    Examples
    --------
    >>> from repro.graph.generators import two_cliques_bridge
    >>> results = louvain_batch([two_cliques_bridge(3),
    ...                          two_cliques_bridge(5)])
    >>> [r.num_communities for r in results]
    [2, 2]
    """
    cfg = (config or LouvainConfig())
    if overrides:
        cfg = cfg.with_(**overrides)
    _validate_batch_config(cfg)
    for g in graphs:
        if not isinstance(g, CSRGraph):
            raise ValidationError("louvain_batch takes CSRGraph instances")

    results: "list[BatchGraphResult | None]" = [None] * len(graphs)
    work: "list[_Running]" = []
    for i, g in enumerate(graphs):
        if g.num_vertices == 0:
            results[i] = BatchGraphResult(
                communities=numpy_ops.zeros(0, dtype=np.int64),
                modularity=0.0, num_phases=0, total_iterations=0,
                converged=True,
            )
        elif g.total_weight <= 0:
            # Edgeless: the standalone run sweeps once (nobody moves) and
            # stops on the no-progress rule after one phase.
            results[i] = BatchGraphResult(
                communities=numpy_ops.arange(g.num_vertices, dtype=np.int64),
                modularity=0.0, num_phases=1, total_iterations=1,
                converged=True,
            )
        else:
            work.append(_Running(i, g))

    tracer = Tracer(enabled=cfg.trace)
    finished: "list[tuple[_Running, bool, bool]]" = []  # (w, converged, interrupted)
    with ExitStack() as obs:
        obs.enter_context(use_tracer(tracer))
        controller = obs.enter_context(use_budget(cfg.budget))
        obs.enter_context(controller.signal_scope())
        obs.enter_context(tracer.span(
            "louvain_batch", cat="pipeline", graphs=len(work),
            backend=cfg.array_backend,
        ))
        for phase_index in range(cfg.max_phases):
            if not work:
                break
            if controller.stop_reason() is not None:
                finished.extend((w, False, True) for w in work)
                work = []
                break
            batch = pack_graphs([w.graph for w in work])
            state = init_state(batch.graph)
            # One workspace per phase, like the driver: plans and scratch
            # are graph-bound and each phase re-packs a new union.
            workspace = SweepWorkspace(
                batch.graph, aggregation=cfg.aggregation,
                array_backend=cfg.array_backend,
            )
            with tracer.step("clustering", phase=phase_index):
                outcome = run_phase_batch(
                    batch, state,
                    threshold=cfg.final_threshold,
                    phase_index=phase_index,
                    use_min_label=cfg.use_min_label,
                    max_iterations=cfg.max_iterations_per_phase,
                    resolution=cfg.resolution,
                    workspace=workspace,
                    aggregation=cfg.aggregation,
                    prune=cfg.prune,
                    incremental=cfg.incremental_modularity,
                    sanitize=cfg.sanitize,
                )
            if outcome.interrupted and not int(outcome.iterations.max()):
                # Cut off before any iteration ran: nothing to fold (the
                # driver likewise drops a record-less interrupted phase).
                finished.extend((w, False, True) for w in work)
                work = []
                break

            # One union coarsen; blocks stay contiguous under the dense
            # renumbering (each block's labels occupy a disjoint ordered
            # range), so the coarse union is itself a GraphBatch and the
            # per-graph coarse subgraphs are block slices of it.
            with tracer.step("rebuild", phase=phase_index):
                rebuild = coarsen(batch.graph, state.comm)
            dense = rebuild.vertex_to_meta
            meta_offsets = numpy_ops.zeros(len(work) + 1, dtype=np.int64)
            for i in range(len(work)):
                meta_offsets[i + 1] = int(dense[batch.block(i)].max()) + 1
            coarse = GraphBatch(
                graph=rebuild.graph,
                vertex_offsets=meta_offsets,
                entry_offsets=rebuild.graph.indptr[meta_offsets],
            )

            next_work: "list[_Running]" = []
            for i, w in enumerate(work):
                w.phases += 1
                w.iterations += int(outcome.iterations[i])
                vs = batch.block(i)
                moff = int(meta_offsets[i])
                w.mapping = dense[vs.start + w.mapping] - moff
                gain = float(outcome.end_modularity[i]
                             - outcome.start_modularity[i])
                num_comms = int(meta_offsets[i + 1]) - moff
                made_progress = num_comms < batch.num_vertices_of(i)
                if outcome.interrupted and not outcome.converged[i]:
                    finished.append((w, False, True))
                elif gain < cfg.final_threshold:
                    finished.append((w, True, False))
                elif not made_progress:
                    finished.append((w, False, False))
                else:
                    w.graph = coarse.subgraph(i)
                    next_work.append(w)
            tracer.instant("batch_phase_end", phase=phase_index,
                           running=len(next_work))
            if outcome.interrupted:
                finished.extend((w, False, True) for w in next_work)
                next_work = []
            else:
                controller.note_phase()
            work = next_work
        # Phase cap exhausted with graphs still running.
        finished.extend((w, False, False) for w in work)

    for w, conv, intr in finished:
        communities, _ = renumber_labels(w.mapping)
        results[w.index] = BatchGraphResult(
            communities=communities,
            modularity=modularity(graphs[w.index], communities,
                                  resolution=cfg.resolution),
            num_phases=w.phases,
            total_iterations=w.iterations,
            converged=conv,
            interrupted=intr,
        )
    return results
