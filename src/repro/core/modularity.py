"""Modularity (Newman–Girvan, Eq. 3) and its building blocks.

With ``P = {C_1 .. C_k}`` a partition of the vertex set,

    Q = (1/2m) * sum_i e_{i→C(i)}  -  sum_C (a_C / 2m)^2          (Eq. 3)

where ``e_{i→C}`` is the total weight of edges joining vertex ``i`` to
members of community ``C`` (a self-loop joins ``i`` to its own community
and counts once), ``a_C = sum_{i in C} k_i`` is the community degree, and
``m`` is half the total weighted degree.

Everything here is vectorized over CSR entries; no per-vertex Python loops.
This module belongs to the array-API kernel tier: all array operations go
through a :class:`repro.backends.ArrayOps` dispatch object (NumPy by
default, bitwise identical to the pre-port kernels; CuPy/torch when
installed — see :mod:`repro.backends`).
"""

from __future__ import annotations

import numpy as np

from repro.backends import ArrayOps, numpy_ops
from repro.graph.csr import CSRGraph
from repro.utils.errors import ValidationError

__all__ = [
    "communities_are_valid",
    "community_degrees",
    "community_sizes",
    "intra_community_weight",
    "modularity",
    "vertex_to_community_weight",
]


def _check_assignment(graph: CSRGraph, communities,
                      ops: ArrayOps = numpy_ops):
    comm = ops.asarray(communities)
    if comm.shape != (graph.num_vertices,):
        raise ValidationError(
            f"communities must have shape ({graph.num_vertices},), got {comm.shape}"
        )
    if not _is_integer_dtype(comm, ops):
        raise ValidationError("communities must be an integer array")
    return ops.astype(comm, ops.int64, copy=False)


def _is_integer_dtype(arr, ops: ArrayOps) -> bool:
    if ops.is_numpy:
        return bool(np.issubdtype(arr.dtype, np.integer))
    return bool(ops.isdtype(arr.dtype, "integral"))


def communities_are_valid(graph: CSRGraph, communities) -> bool:
    """True when ``communities`` is a well-formed assignment for ``graph``."""
    try:
        _check_assignment(graph, communities)
    except ValidationError:
        return False
    return True


def community_degrees(graph: CSRGraph, communities, num_labels: int | None = None,
                      *, ops: ArrayOps = numpy_ops):
    """Community degrees ``a_C`` (Eq. 2) indexed by community label.

    Parameters
    ----------
    num_labels:
        Length of the output array (labels must lie in ``[0, num_labels)``).
        Defaults to ``max label + 1``.
    """
    comm = _check_assignment(graph, communities, ops)
    if num_labels is None:
        num_labels = int(ops.max(comm)) + 1 if comm.shape[0] else 0
    return ops.bincount(comm, weights=ops.asarray(graph.degrees),
                        minlength=num_labels)


def community_sizes(graph: CSRGraph, communities, num_labels: int | None = None,
                    *, ops: ArrayOps = numpy_ops):
    """Number of vertices per community label."""
    comm = _check_assignment(graph, communities, ops)
    if num_labels is None:
        num_labels = int(ops.max(comm)) + 1 if comm.shape[0] else 0
    return ops.bincount(comm, minlength=num_labels)


def intra_community_weight(graph: CSRGraph, communities,
                           *, ops: ArrayOps = numpy_ops) -> float:
    """``sum_i e_{i→C(i)}`` — the numerator of Eq. 3's first term.

    Each intra-community non-loop edge contributes its weight twice (once
    per endpoint); a self-loop contributes once.
    """
    comm = _check_assignment(graph, communities, ops)
    row_of = ops.asarray(graph.row_of_entry())
    dst = ops.asarray(graph.indices)
    weights = ops.asarray(graph.weights)
    src_c = ops.take(comm, row_of)
    dst_c = ops.take(comm, dst)
    return float(ops.sum(weights[src_c == dst_c]))


def modularity(graph: CSRGraph, communities, *, resolution: float = 1.0,
               ops: ArrayOps = numpy_ops) -> float:
    """Modularity ``Q`` of a partition (Eq. 3), with an optional resolution
    parameter.

    ``resolution`` γ generalizes Eq. 3 to the Reichardt–Bornholdt form

        Q_γ = (1/2m) Σ_i e_{i→C(i)}  -  γ Σ_C (a_C / 2m)²

    (γ = 1 is the paper's definition).  The paper lists alternative
    modularity definitions that "overcome the known resolution-limit
    issues" as future work (iv); γ > 1 favors smaller communities, γ < 1
    larger ones.

    Examples
    --------
    >>> from repro.graph.generators import two_cliques_bridge
    >>> import numpy as np
    >>> g = two_cliques_bridge(4)
    >>> q = modularity(g, np.array([0, 0, 0, 0, 1, 1, 1, 1]))
    >>> round(q, 4)
    0.4231
    """
    comm = _check_assignment(graph, communities, ops)
    m = graph.total_weight
    if m <= 0:
        return 0.0
    if resolution <= 0:
        raise ValidationError("resolution must be positive")
    a_c = community_degrees(graph, comm, ops=ops)
    intra = intra_community_weight(graph, comm, ops=ops)
    return intra / (2.0 * m) - resolution * float(
        ops.sum(ops.square(a_c / (2.0 * m)))
    )


def vertex_to_community_weight(graph: CSRGraph, v: int, communities,
                               target: int, *, ops: ArrayOps = numpy_ops
                               ) -> float:
    """``e_{v→target}`` — total weight from ``v`` into community ``target``.

    Includes the self-loop when ``target`` is ``v``'s own community.
    """
    comm = _check_assignment(graph, communities, ops)
    nbrs, w = graph.neighbors(v)
    nbr_comm = ops.take(comm, ops.asarray(nbrs))
    return float(ops.sum(ops.asarray(w)[nbr_comm == target]))
