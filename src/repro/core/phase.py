"""One phase of the parallel Louvain algorithm (Algorithm 1's outer loop).

A phase repeatedly sweeps the vertices until the relative modularity gain
between consecutive iterations falls below the threshold θ (line 18).
Without coloring, one iteration is a single Jacobi sweep of all vertices;
with coloring, one iteration processes the color sets in ascending color
order, committing community state between sets (so later sets see the
"community information from the previous coloring stages", §5.4 step 3).

The modularity after each iteration is computed from the running state in
O(M) — mirroring the paper's pre-aggregation optimization (§5.5) that
avoids a separate full recount — and recorded, together with the per-color-
set work counters, into :class:`repro.core.history.IterationRecord`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.history import IterationRecord
from repro.core.modularity import intra_community_weight
from repro.core.sweep import SweepState, compute_targets, apply_moves
from repro.graph.csr import CSRGraph
from repro.parallel.backends import ExecutionBackend

__all__ = ["PhaseOutcome", "run_phase", "state_modularity"]


@dataclass(frozen=True)
class PhaseOutcome:
    """Result of one phase: final state plus its iteration records."""

    state: SweepState
    records: list[IterationRecord]
    start_modularity: float
    end_modularity: float
    converged: bool


def state_modularity(graph: CSRGraph, state: SweepState,
                     *, resolution: float = 1.0) -> float:
    """Eq. 3 modularity of the current sweep state (vectorized O(M))."""
    m = graph.total_weight
    if m <= 0:
        return 0.0
    intra = intra_community_weight(graph, state.comm)
    a = state.comm_degree
    return intra / (2.0 * m) - resolution * float(
        np.square(a / (2.0 * m)).sum()
    )


def _color_set_edge_counts(graph: CSRGraph, sets: list[np.ndarray]) -> list[int]:
    deg = graph.unweighted_degrees
    return [int(deg[s].sum()) for s in sets]


def run_phase(
    graph: CSRGraph,
    state: SweepState,
    *,
    threshold: float,
    phase_index: int = 0,
    color_sets: "list[np.ndarray] | None" = None,
    kernel: str = "vectorized",
    use_min_label: bool = True,
    backend: ExecutionBackend | None = None,
    max_iterations: int = 1000,
    resolution: float = 1.0,
) -> PhaseOutcome:
    """Iterate sweeps until the relative modularity gain drops below θ.

    Parameters
    ----------
    threshold:
        θ of Algorithm 1 line 18: the phase ends when
        ``|Q_curr - Q_prev| / |Q_prev| < θ``.
    color_sets:
        Optional color-based partition of the vertices; ``None`` means a
        single set containing every vertex (Algorithm 1's note on line 2).
    max_iterations:
        Safety cap; parallel sweeps lack the serial monotonicity guarantee
        (Lemma 1), so a hard stop bounds the worst case.

    Returns
    -------
    PhaseOutcome
        ``converged`` is False only when the iteration cap fired.
    """
    n = graph.num_vertices
    all_vertices = np.arange(n, dtype=np.int64)
    if color_sets is None:
        sets = [all_vertices]
    else:
        sets = [np.asarray(s, dtype=np.int64) for s in color_sets if len(s)]
    set_vertex_counts = tuple(int(s.size) for s in sets)
    set_edge_counts = tuple(_color_set_edge_counts(graph, sets))

    q_prev = -1.0  # Algorithm 1 line 4.
    start_q = state_modularity(graph, state, resolution=resolution)
    records: list[IterationRecord] = []
    converged = False

    for iteration in range(max_iterations):
        moved = 0
        for vertex_set in sets:
            targets = compute_targets(
                graph, state, vertex_set,
                kernel=kernel, use_min_label=use_min_label, backend=backend,
                resolution=resolution,
            )
            moved += apply_moves(graph, state, vertex_set, targets)
        q_curr = state_modularity(graph, state, resolution=resolution)
        records.append(
            IterationRecord(
                phase=phase_index,
                iteration=iteration,
                modularity=q_curr,
                vertices_moved=moved,
                num_communities=state.num_communities(),
                color_set_vertices=set_vertex_counts,
                color_set_edges=set_edge_counts,
            )
        )
        if moved == 0:
            converged = True
            break
        # Line 18 of Algorithm 1 with the *signed* gain: a negligible — or
        # negative (Lemma 1: parallel sweeps can lose modularity) — gain
        # ends the phase.  This is what bounds oscillating sweeps.
        if (q_curr - q_prev) < threshold * abs(q_prev):
            converged = True
            break
        q_prev = q_curr

    end_q = records[-1].modularity if records else start_q
    return PhaseOutcome(
        state=state,
        records=records,
        start_modularity=start_q,
        end_modularity=end_q,
        converged=converged,
    )
