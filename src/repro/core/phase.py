"""One phase of the parallel Louvain algorithm (Algorithm 1's outer loop).

A phase repeatedly sweeps the vertices until the relative modularity gain
between consecutive iterations falls below the threshold θ (line 18).
Without coloring, one iteration is a single Jacobi sweep of all vertices;
with coloring, one iteration processes the color sets in ascending color
order, committing community state between sets (so later sets see the
"community information from the previous coloring stages", §5.4 step 3).

Hot-path structure (see docs/algorithms.md §9):

* a :class:`~repro.core.workspace.SweepWorkspace` caches the gather plans
  and scratch buffers the vectorized kernel needs, so per-iteration setup
  work is paid once per vertex set instead of once per sweep;
* **frontier pruning** (Staudt & Meyerhenke's active-vertex strategy,
  composable with our snapshot semantics): after a sweep, only vertices
  adjacent to a mover — plus the movers themselves — can have locally
  changed candidate moves, so only they are re-evaluated next iteration.
  Because distant moves can still shift community degrees ``a_C``, a
  pruned run that reaches a fixed point is re-verified with one full
  sweep before the phase reports convergence — the returned partition is
  a genuine full-sweep fixed point;
* **incremental modularity**: :func:`repro.core.sweep.apply_moves_tracked`
  returns the exact change of both Eq. 3 ingredients in O(edges touched
  by movers), so the per-iteration Q needs no O(M) recount.  An exact
  recount still runs once at the phase boundary as a drift guard (and is
  what ``end_modularity`` reports);
* the phase keeps the **best-seen state**: parallel sweeps can lose
  modularity (Lemma 1's caveat), so the returned state is the highest-Q
  assignment observed — never worse than the phase's input, which makes
  warm starts monotone.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.history import IterationRecord
from repro.core.modularity import intra_community_weight
from repro.core.sweep import (
    SweepState,
    apply_moves,
    apply_moves_tracked,
    compute_targets,
)
from repro.core.workspace import SweepWorkspace
from repro.graph.csr import CSRGraph
from repro.lint.sanitizer import resolve_sanitize
from repro.obs.trace import get_tracer
from repro.parallel.backends import ExecutionBackend
from repro.robust.budget import get_budget
from repro.robust.faults import get_injector

__all__ = ["PhaseOutcome", "run_phase", "state_modularity"]


@dataclass(frozen=True)
class PhaseOutcome:
    """Result of one phase: final state plus its iteration records.

    ``state`` is the *best-seen* assignment of the phase (recounted
    exactly), not necessarily the last sweep's — see the module docstring.
    """

    state: SweepState
    records: list[IterationRecord]
    start_modularity: float
    end_modularity: float
    converged: bool
    #: True when the ambient :class:`~repro.robust.budget.BudgetController`
    #: requested a stop mid-phase (deadline/cap/signal).  The state is
    #: still the best-seen, exactly-recounted assignment; ``converged``
    #: stays False.
    interrupted: bool = False


def state_modularity(graph: CSRGraph, state: SweepState,
                     *, resolution: float = 1.0) -> float:
    """Eq. 3 modularity of the current sweep state (vectorized O(M))."""
    m = graph.total_weight
    if m <= 0:
        return 0.0
    intra = intra_community_weight(graph, state.comm)
    a = state.comm_degree
    return intra / (2.0 * m) - resolution * float(
        np.square(a / (2.0 * m)).sum()
    )


def _color_set_edge_counts(graph: CSRGraph, sets: list[np.ndarray]) -> list[int]:
    deg = graph.unweighted_degrees
    return [int(deg[s].sum()) for s in sets]


def run_phase(
    graph: CSRGraph,
    state: SweepState,
    *,
    threshold: float,
    phase_index: int = 0,
    color_sets: "list[np.ndarray] | None" = None,
    kernel: str = "vectorized",
    use_min_label: bool = True,
    backend: ExecutionBackend | None = None,
    max_iterations: int = 1000,
    resolution: float = 1.0,
    workspace: "SweepWorkspace | None" = None,
    aggregation: str = "auto",
    prune: bool = True,
    incremental: bool = True,
    sanitize: "bool | None" = None,
) -> PhaseOutcome:
    """Iterate sweeps until the relative modularity gain drops below θ.

    Parameters
    ----------
    threshold:
        θ of Algorithm 1 line 18: the phase ends when
        ``|Q_curr - Q_prev| / |Q_prev| < θ``.
    color_sets:
        Optional color-based partition of the vertices; ``None`` means a
        single set containing every vertex (Algorithm 1's note on line 2).
    max_iterations:
        Safety cap; parallel sweeps lack the serial monotonicity guarantee
        (Lemma 1), so a hard stop bounds the worst case.
    workspace:
        Reusable :class:`~repro.core.workspace.SweepWorkspace` for this
        graph; created on the fly when ``None`` and the vectorized kernel
        is in use.
    aggregation:
        e_{v→C} aggregation path for the vectorized kernel (``"auto"``,
        ``"sort"``, ``"bincount"``, ``"matmul"``).
    prune:
        Frontier pruning: re-evaluate only vertices adjacent to the
        previous iteration's movers.  A pruned fixed point is verified
        with one full sweep before the phase reports convergence, so the
        returned partition is always a full-sweep fixed point.  Set False
        to sweep every vertex every iteration (the seed behavior).
    incremental:
        Track modularity via the per-sweep deltas of
        :func:`~repro.core.sweep.apply_moves_tracked` instead of an O(M)
        recount per iteration.  The phase-boundary recount runs either way.
    sanitize:
        Freeze the community/degree/size snapshot arrays while each
        sweep's targets are computed, so an accidental in-place write in
        any kernel raises immediately (:mod:`repro.lint.sanitizer`).
        ``None`` defers to the ``REPRO_SANITIZE`` environment default
        (on in the test-suite, off in benchmarks); results are bitwise
        identical either way.

    Returns
    -------
    PhaseOutcome
        ``converged`` is False only when the iteration cap fired.
    """
    n = graph.num_vertices
    m = graph.total_weight
    all_vertices = np.arange(n, dtype=np.int64)
    if color_sets is None:
        sets = [all_vertices]
    else:
        sets = [np.asarray(s, dtype=np.int64) for s in color_sets if len(s)]
    set_vertex_counts = tuple(int(s.size) for s in sets)
    set_edge_counts = tuple(_color_set_edge_counts(graph, sets))

    if workspace is None and kernel == "vectorized":
        workspace = SweepWorkspace(graph, aggregation=aggregation)

    sanitize = resolve_sanitize(sanitize)
    track = incremental or prune

    # Incremental Q ingredients (exact O(M) once at the phase start).
    two_m = 2.0 * m
    intra = intra_community_weight(graph, state.comm)
    degree_sq = float(np.square(state.comm_degree).sum())

    def current_q() -> float:
        if m <= 0:
            return 0.0
        return intra / two_m - resolution * degree_sq / (two_m * two_m)

    start_q = (current_q() if incremental
               else state_modularity(graph, state, resolution=resolution))

    # Best-seen state (Lemma 1: parallel sweeps can lose Q, so the phase
    # must never end below its own input — the warm-start monotonicity fix).
    best_q = start_q
    best_comm = state.comm.copy()
    best_degree = state.comm_degree.copy()
    best_size = state.comm_size.copy()

    # Per-set active subsets (full sets until pruning shrinks them).
    active_sets: list[np.ndarray] = list(sets)
    unweighted_deg = graph.unweighted_degrees
    # One mask for the whole phase; apply_moves_tracked ORs each sweep's
    # frontier into it (O(edges touched), no edge-sized sort+unique).
    frontier_mask = np.zeros(n, dtype=bool) if track else None

    q_prev = -1.0  # Algorithm 1 line 4.
    records: list[IterationRecord] = []
    converged = False
    interrupted = False
    tracer = get_tracer()
    injector = get_injector()
    budget = get_budget()

    for iteration in range(max_iterations):
        # Cooperative cancellation: iteration boundaries are the finest
        # granularity at which the phase state is a valid snapshot.
        if budget.should_stop():
            interrupted = True
            break
        injector.on_sweep(phase_index, iteration)
        moved = 0
        active_vertices = 0
        active_edges = 0
        full_sweep = all(
            act.size == full.size for act, full in zip(active_sets, sets)
        )
        with tracer.span("iteration", phase=phase_index, iteration=iteration):
            for set_index, act in enumerate(active_sets):
                if act.size == 0:
                    continue
                # Sweep boundary: community state is committed between
                # color sets (§5.4 step 3), so stopping here is as safe
                # as stopping between iterations.  Skip set 0 — an empty
                # iteration would record nothing new.
                if set_index and budget.should_stop():
                    interrupted = True
                    break
                active_vertices += int(act.size)
                active_edges += int(unweighted_deg[act].sum())
                with tracer.span("sweep", set=set_index, vertices=int(act.size)):
                    targets = compute_targets(
                        graph, state, act,
                        kernel=kernel, use_min_label=use_min_label,
                        backend=backend,
                        resolution=resolution, workspace=workspace,
                        aggregation=aggregation, plan_key=("set", set_index),
                        sanitize=sanitize,
                    )
                    if track:
                        result = apply_moves_tracked(
                            graph, state, act, targets, workspace=workspace,
                            frontier_out=frontier_mask,
                        )
                        moved += result.num_moved
                        intra += result.delta_intra
                        degree_sq += result.delta_degree_sq
                    else:
                        moved += apply_moves(graph, state, act, targets)

        q_curr = (current_q() if incremental
                  else state_modularity(graph, state, resolution=resolution))
        if tracer.enabled:
            tracer.count("sweep.moves", moved)
            tracer.observe("iteration.moves", moved)
            tracer.observe("iteration.active_vertices", active_vertices)
            if workspace is not None and workspace.last_aggregation:
                tracer.count(f"aggregation.{workspace.last_aggregation}")
        records.append(
            IterationRecord(
                phase=phase_index,
                iteration=iteration,
                modularity=q_curr,
                vertices_moved=moved,
                num_communities=state.num_communities(),
                color_set_vertices=set_vertex_counts,
                color_set_edges=set_edge_counts,
                active_vertices=active_vertices,
                active_edges=active_edges,
                aggregation=(workspace.last_aggregation or ""
                             if workspace is not None else ""),
            )
        )
        if q_curr > best_q:
            best_q = q_curr
            np.copyto(best_comm, state.comm)
            np.copyto(best_degree, state.comm_degree)
            np.copyto(best_size, state.comm_size)
        budget.note_iteration()

        if interrupted:
            # A partial iteration's ``moved`` only covers the sets that
            # ran — not a convergence signal.  The record and best-seen
            # update above still stand (the state is committed/valid).
            break
        if moved == 0:
            if prune and not full_sweep:
                # A pruned fixed point: distant moves may still have opened
                # gains for inactive vertices (a_C shifts globally), so
                # verify with one full sweep before declaring convergence.
                active_sets = list(sets)
                q_prev = q_curr
                continue
            converged = True
            break
        # Line 18 of Algorithm 1 with the *signed* gain: a negligible — or
        # negative (Lemma 1: parallel sweeps can lose modularity) — gain
        # ends the phase.  This is what bounds oscillating sweeps.
        if (q_curr - q_prev) < threshold * abs(q_prev):
            converged = True
            break
        q_prev = q_curr

        if prune:
            active_sets = [s[frontier_mask[s]] for s in sets]
            frontier_mask[:] = False

    # Phase boundary: restore the best-seen state if the trajectory ended
    # below it, then recount Q exactly (the incremental-tracking drift
    # guard) — what the caller coarsens and reports.
    if best_q > (records[-1].modularity if records else start_q):
        np.copyto(state.comm, best_comm)
        np.copyto(state.comm_degree, best_degree)
        np.copyto(state.comm_size, best_size)
    end_q = state_modularity(graph, state, resolution=resolution)
    return PhaseOutcome(
        state=state,
        records=records,
        start_modularity=start_q,
        end_modularity=end_q,
        converged=converged,
        interrupted=interrupted,
    )
