"""Vertex-following (VF) preprocessing — paper §5.3.

Lemma 3: a *single-degree* vertex (exactly one incident edge ``(i, j)``
with ``i != j`` and no self-loop) always ends up in its neighbor's
community in the serial Louvain solution.  The VF heuristic therefore
merges every single-degree vertex into its neighbor *a priori*, shrinking
the phase-1 input and — more importantly in parallel — stopping hub
vertices from being pulled into one of their degree-1 "spokes" (the Fig. 2
hub/spoke scenario).

Implementation: the merge is expressed as a community assignment
(each vertex's representative) fed to :func:`repro.graph.coarsen.coarsen`,
which already produces the merged graph with exact modularity-preserving
weights.  Special case: a pair of single-degree vertices joined to each
other (an isolated edge) collapses into its lower-id endpoint.

The module also implements the *extension* the paper sketches at the end
of §5.3 — recursive merging of single-neighbor chains ("fast compression
of chains"): :func:`chain_compress` repeats VF rounds until no
single-degree vertex remains (a path collapses in O(log length) rounds).
The paper stops short of evaluating it; we expose it as an option and an
ablation benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.coarsen import coarsen
from repro.graph.csr import CSRGraph

__all__ = [
    "VFResult",
    "chain_compress",
    "single_degree_vertices",
    "single_neighbor_vertices",
    "vf_merge",
]


@dataclass(frozen=True)
class VFResult:
    """Outcome of VF preprocessing.

    Attributes
    ----------
    graph:
        The merged (smaller) graph.
    vertex_to_meta:
        ``(n_fine,)`` map from input vertices to merged-graph vertices.
    num_merged:
        How many vertices were folded away.
    rounds:
        Number of merge rounds performed (1 for plain VF).
    """

    graph: CSRGraph
    vertex_to_meta: np.ndarray
    num_merged: int
    rounds: int


def single_degree_vertices(graph: CSRGraph) -> np.ndarray:
    """Ids of single-degree vertices in the paper's strict sense.

    Exactly one incident edge, which joins the vertex to a *different*
    vertex; a vertex whose only entry is a self-loop is isolated-with-loop,
    and a vertex with one neighbor plus a self-loop is "single neighbor",
    not single degree — Lemma 3 only covers the strict case.
    """
    deg1 = np.flatnonzero(graph.unweighted_degrees == 1)
    if deg1.size == 0:
        return deg1
    only_nbr = graph.indices[graph.indptr[deg1]]
    return deg1[only_nbr != deg1]


def single_neighbor_vertices(
    graph: CSRGraph,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Single-*neighbor* vertices (§5.3): one non-loop edge ``(i, j)``
    (mandatory) plus at most a self-loop ``(i, i)``.

    Returns ``(ids, neighbor, edge_weight)`` aligned arrays.  Every strict
    single-degree vertex is included (its optional self-loop is absent).
    """
    deg = graph.unweighted_degrees
    cand = np.flatnonzero((deg == 1) | (deg == 2))
    if cand.size == 0:
        empty = np.zeros(0, dtype=np.int64)
        return empty, empty, np.zeros(0, dtype=np.float64)
    ids: list[int] = []
    nbrs: list[int] = []
    w_out: list[float] = []
    # Candidate rows have <= 2 entries; inspect them directly.
    for v in cand.tolist():
        lo, hi = graph.indptr[v], graph.indptr[v + 1]
        row = graph.indices[lo:hi]
        w = graph.weights[lo:hi]
        non_loop = row != v
        if int(non_loop.sum()) != 1 or (hi - lo) - int(non_loop.sum()) > 1:
            continue
        ids.append(v)
        nbrs.append(int(row[non_loop][0]))
        w_out.append(float(w[non_loop][0]))
    return (
        np.asarray(ids, dtype=np.int64),
        np.asarray(nbrs, dtype=np.int64),
        np.asarray(w_out, dtype=np.float64),
    )


def _pair_off(
    n: int, singles: np.ndarray, neighbor: np.ndarray
) -> tuple[np.ndarray, int]:
    """Build a one-round representative map, resolving mutual merges.

    When both endpoints of an edge want to merge into each other (isolated
    edge, or a 2-cycle of single-neighbor vertices), the higher id merges
    into the lower so exactly one survives.
    """
    rep = np.arange(n, dtype=np.int64)
    if singles.size == 0:
        return rep, 0
    is_single = np.zeros(n, dtype=bool)
    is_single[singles] = True
    wants = np.full(n, -1, dtype=np.int64)
    wants[singles] = neighbor
    partner_mutual = is_single[neighbor] & (wants[neighbor] == singles)
    keep = ~partner_mutual | (neighbor < singles)
    rep[singles[keep]] = neighbor[keep]
    return rep, int(keep.sum())


def _representatives(graph: CSRGraph) -> tuple[np.ndarray, int]:
    """Representative (merge target) per vertex for one strict-VF round."""
    n = graph.num_vertices
    singles = single_degree_vertices(graph)
    if singles.size == 0:
        return np.arange(n, dtype=np.int64), 0
    neighbor = graph.indices[graph.indptr[singles]]
    return _pair_off(n, singles, neighbor)


def vf_merge(graph: CSRGraph) -> VFResult:
    """One round of vertex following: merge all single-degree vertices.

    The merged graph's meta-vertices carry self-loops holding the absorbed
    edge weight, so community degrees and total weight are preserved and
    any partition of the merged graph has exactly the modularity of the
    partition it induces on the input (see :mod:`repro.graph.coarsen`).
    """
    rep, merged = _representatives(graph)
    if merged == 0:
        return VFResult(graph, rep, 0, 0)
    result = coarsen(graph, rep)
    return VFResult(result.graph, result.vertex_to_meta, merged, 1)


def chain_compress(graph: CSRGraph, *, max_rounds: int | None = None) -> VFResult:
    """Recursive single-neighbor VF — the extension sketched at the end of
    §5.3 ("fast compression of chains").

    Each round merges every single-*neighbor* vertex ``i`` (one non-loop
    edge ``(i, j)``, optional self-loop) into its neighbor, but only while
    the lower bound of inequality (10) stays positive, i.e. while

        2m > k_i * a_{C(j)} / ω(i, j)

    — the explicit termination test the paper proposes.  At preprocessing
    time ``a_{C(j)} = k_j``.  Because a merged chain end re-appears as a
    single-neighbor vertex with a self-loop, a pendant path collapses fully
    over successive rounds, unlike the strict single-degree rule.
    """
    current = graph
    mapping = np.arange(graph.num_vertices, dtype=np.int64)
    total_merged = 0
    rounds = 0
    two_m = 2.0 * graph.total_weight
    while max_rounds is None or rounds < max_rounds:
        ids, neighbor, w_ij = single_neighbor_vertices(current)
        if ids.size:
            k = current.degrees
            safe = two_m > k[ids] * k[neighbor] / w_ij
            ids, neighbor = ids[safe], neighbor[safe]
        if ids.size == 0:
            break
        rep, merged = _pair_off(current.num_vertices, ids, neighbor)
        if merged == 0:
            break
        result = coarsen(current, rep)
        mapping = result.vertex_to_meta[mapping]
        total_merged += merged
        current = result.graph
        rounds += 1
    return VFResult(current, mapping, total_merged, rounds)
