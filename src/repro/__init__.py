"""repro — parallel heuristics for scalable community detection.

A from-scratch Python reproduction of

    Hao Lu, Mahantesh Halappanavar, Ananth Kalyanaraman,
    "Parallel heuristics for scalable community detection",
    Parallel Computing 47 (2015) 19-37 (preliminary version: IPDPSW 2014),

i.e. the algorithmic core of the *Grappolo* community-detection package:
a parallelization of the Louvain modularity-optimization method using the
minimum-label heuristic, distance-1 graph coloring, and vertex-following
preprocessing.

Quick start
-----------
>>> from repro import CSRGraph, louvain
>>> g = CSRGraph.from_edges(4, [(0, 1), (1, 2), (2, 0), (2, 3)])
>>> result = louvain(g)

The top-level namespace re-exports the most commonly used pieces; the
subpackages hold the full system:

``repro.graph``
    CSR graph substrate, builders, I/O, synthetic generators, statistics,
    and the between-phase coarsening (graph rebuild) step.
``repro.coloring``
    Serial and parallel-semantics distance-1 (and distance-k) vertex
    coloring, plus balanced recoloring.
``repro.core``
    The Louvain template: modularity (Eq. 3), modularity gain (Eq. 4),
    the serial algorithm, the parallel sweep (Algorithm 1) with the
    minimum-label heuristics, vertex following, and the multi-phase driver.
``repro.parallel``
    Execution backends (serial / thread pool), vertex partitioners, and the
    simulated-machine cost model used to regenerate the paper's scaling
    figures.
``repro.metrics``
    Pair-counting partition comparison (specificity, sensitivity, overlap
    quality, Rand index) and performance profiles.
``repro.datasets``
    Synthetic stand-ins for the paper's eleven real-world inputs.
``repro.bench``
    The experiment harness that regenerates every table and figure of the
    paper's evaluation section.
"""

from __future__ import annotations

from repro._version import __version__
from repro.graph.csr import CSRGraph
from repro.graph.build import GraphBuilder
from repro.core.batch import BatchGraphResult, louvain_batch
from repro.core.config import HeuristicVariant, LouvainConfig
from repro.core.driver import LouvainResult, louvain
from repro.core.louvain_serial import louvain_serial
from repro.core.modularity import modularity

__all__ = [
    "BatchGraphResult",
    "CSRGraph",
    "GraphBuilder",
    "HeuristicVariant",
    "LouvainConfig",
    "LouvainResult",
    "__version__",
    "louvain",
    "louvain_batch",
    "louvain_serial",
    "modularity",
]
