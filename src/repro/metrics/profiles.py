"""Performance profiles (paper Fig. 10, Dolan–Moré style).

Given a value per (scheme, input) — runtime or final modularity — the
profile of a scheme is the distribution of its ratio to the best scheme on
each input.  Plotting the sorted ratios against the cumulative fraction of
inputs shows how often, and by how much, each scheme trails the per-input
winner; "the longer a heuristic's curve stays near the Y-axis the more
superior its performance" (§6.2.3).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.errors import ValidationError

__all__ = ["PerformanceProfile", "performance_profile"]


@dataclass(frozen=True)
class PerformanceProfile:
    """Profile of one scheme: sorted best-ratio factors over the inputs.

    ``ratios[i]`` is how many times worse the scheme was than the per-input
    best on its (i+1)-th easiest input; 1.0 means it *was* the best.
    """

    scheme: str
    ratios: np.ndarray

    def fraction_within(self, factor: float) -> float:
        """Fraction of inputs where the scheme is within ``factor`` of best."""
        if self.ratios.size == 0:
            return 0.0
        return float(np.count_nonzero(self.ratios <= factor) / self.ratios.size)

    def curve(self) -> tuple[np.ndarray, np.ndarray]:
        """(x, y) arrays for plotting: factor vs cumulative input fraction."""
        y = np.arange(1, self.ratios.size + 1) / max(1, self.ratios.size)
        return self.ratios, y


def performance_profile(
    values: dict[str, dict[str, float]],
    *,
    better: str = "min",
) -> dict[str, PerformanceProfile]:
    """Build performance profiles from per-scheme per-input values.

    Parameters
    ----------
    values:
        ``{scheme: {input_name: value}}``.  Every scheme must cover the
        same inputs (the paper drops inputs lacking a serial result before
        profiling; do the same upstream).
    better:
        ``"min"`` when smaller is better (runtime), ``"max"`` when larger
        is better (modularity).

    Returns
    -------
    ``{scheme: PerformanceProfile}`` with ratios sorted ascending.
    """
    if better not in ("min", "max"):
        raise ValidationError("better must be 'min' or 'max'")
    if not values:
        return {}
    schemes = list(values)
    inputs = sorted(values[schemes[0]])
    for scheme in schemes:
        if sorted(values[scheme]) != inputs:
            raise ValidationError(
                f"scheme {scheme!r} does not cover the same inputs"
            )
    profiles: dict[str, PerformanceProfile] = {}
    for scheme in schemes:
        ratios = []
        for name in inputs:
            column = [values[s][name] for s in schemes]
            mine = values[scheme][name]
            if better == "min":
                best = min(column)
                if best <= 0:
                    raise ValidationError(
                        f"non-positive value for input {name!r} with better='min'"
                    )
                ratios.append(mine / best)
            else:
                best = max(column)
                if mine <= 0:
                    raise ValidationError(
                        f"non-positive value for scheme {scheme!r}, "
                        f"input {name!r} with better='max'"
                    )
                ratios.append(best / mine)
        profiles[scheme] = PerformanceProfile(
            scheme=scheme, ratios=np.sort(np.asarray(ratios, dtype=np.float64))
        )
    return profiles
