"""Pair-counting comparison of two partitions (paper §6.2.3, Table 3).

Every unordered vertex pair falls into one of four bins with respect to a
benchmark partition ``S`` (the paper uses the serial output) and a test
partition ``P`` (the parallel output):

* **TP** — same community in both;
* **FP** — same community only in ``P``;
* **FN** — same community only in ``S``;
* **TN** — different communities in both.

From these: specificity ``SP = TP/(TP+FP)``, sensitivity ``SE =
TP/(TP+FN)``, overlap quality ``OQ = TP/(TP+FP+FN)``, and the Rand index
``(TP+TN)/(TP+FP+FN+TN)``.

The paper computes these by enumerating all Θ(n²) pairs, which restricts
Table 3 to two inputs.  The identical quantities follow from the
contingency table: with ``n_ij`` the overlap of S-community ``i`` and
P-community ``j``, ``TP = Σ_ij C(n_ij, 2)``, ``TP+FN = Σ_i C(a_i, 2)``,
``TP+FP = Σ_j C(b_j, 2)`` — an O(n + #cells) computation that the tests
verify against a brute-force pair loop on small inputs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.errors import ValidationError

__all__ = ["PairCounts", "compare_partitions", "pair_counts"]


def _choose2(x: np.ndarray) -> np.ndarray:
    x = x.astype(np.float64)
    return x * (x - 1.0) / 2.0


@dataclass(frozen=True)
class PairCounts:
    """The four pair-counting bins plus the derived Table 3 metrics."""

    tp: float
    fp: float
    fn: float
    tn: float

    @property
    def total_pairs(self) -> float:
        return self.tp + self.fp + self.fn + self.tn

    @property
    def specificity(self) -> float:
        """SP = TP / (TP + FP); 1.0 when P never over-merges (or is trivial)."""
        denom = self.tp + self.fp
        return self.tp / denom if denom else 1.0

    @property
    def sensitivity(self) -> float:
        """SE = TP / (TP + FN)."""
        denom = self.tp + self.fn
        return self.tp / denom if denom else 1.0

    @property
    def overlap_quality(self) -> float:
        """OQ = TP / (TP + FP + FN) — the Jaccard index of co-membership."""
        denom = self.tp + self.fp + self.fn
        return self.tp / denom if denom else 1.0

    @property
    def rand_index(self) -> float:
        """(TP + TN) / all pairs."""
        total = self.total_pairs
        return (self.tp + self.tn) / total if total else 1.0

    def as_percentages(self) -> dict[str, float]:
        """The Table 3 row: SP, SE, OQ, Rand index, in percent."""
        return {
            "SP": 100.0 * self.specificity,
            "SE": 100.0 * self.sensitivity,
            "OQ": 100.0 * self.overlap_quality,
            "Rand": 100.0 * self.rand_index,
        }


def pair_counts(benchmark, test) -> PairCounts:
    """Pair-counting bins of ``test`` against ``benchmark``.

    Both arguments are integer label arrays of equal length; label values
    are arbitrary.

    Examples
    --------
    >>> pc = pair_counts([0, 0, 1, 1], [0, 0, 1, 1])
    >>> pc.rand_index
    1.0
    """
    s = np.asarray(benchmark)
    p = np.asarray(test)
    if s.shape != p.shape or s.ndim != 1:
        raise ValidationError("partitions must be 1-D arrays of equal length")
    if s.size == 0:
        return PairCounts(0.0, 0.0, 0.0, 0.0)
    if not (np.issubdtype(s.dtype, np.integer)
            and np.issubdtype(p.dtype, np.integer)):
        raise ValidationError("partitions must hold integer labels")
    n = s.size

    _, s_dense = np.unique(s, return_inverse=True)
    _, p_dense = np.unique(p, return_inverse=True)
    ks = int(s_dense.max()) + 1
    kp = int(p_dense.max()) + 1

    # Contingency cells via one bincount over combined keys.
    cells = np.bincount(s_dense.astype(np.int64) * kp + p_dense,
                        minlength=ks * kp)
    cells = cells[cells > 0]
    a = np.bincount(s_dense, minlength=ks)  # benchmark community sizes
    b = np.bincount(p_dense, minlength=kp)  # test community sizes

    tp = float(_choose2(cells).sum())
    tp_fn = float(_choose2(a).sum())
    tp_fp = float(_choose2(b).sum())
    all_pairs = float(n) * (n - 1) / 2.0
    fn = tp_fn - tp
    fp = tp_fp - tp
    tn = all_pairs - tp - fn - fp
    return PairCounts(tp=tp, fp=fp, fn=fn, tn=tn)


def compare_partitions(benchmark, test) -> dict[str, float]:
    """Convenience wrapper returning the Table 3 percentages directly."""
    return pair_counts(benchmark, test).as_percentages()
