"""Information-theoretic and chance-corrected partition comparison.

Table 3's SP/SE/OQ/Rand quantify raw pair agreement; the community-
detection literature additionally standardizes on chance-corrected and
information-theoretic scores, so the metrics subpackage provides them for
the examples and for downstream users:

* **Adjusted Rand Index (ARI)** — the Rand index corrected for chance
  agreement under the permutation model (Hubert & Arabie);
* **Normalized Mutual Information (NMI)** — mutual information of the two
  label distributions normalized by the mean entropy;
* **Variation of Information (VI)** — a true metric on partition space
  (lower is better; 0 iff identical).

All are computed from one contingency table in O(n + cells).
"""

from __future__ import annotations

import numpy as np

from repro.utils.errors import ValidationError

__all__ = [
    "adjusted_rand_index",
    "normalized_mutual_information",
    "variation_of_information",
]


def _contingency(a, b) -> tuple[np.ndarray, np.ndarray, np.ndarray, int]:
    a = np.asarray(a)
    b = np.asarray(b)
    if a.shape != b.shape or a.ndim != 1:
        raise ValidationError("partitions must be 1-D arrays of equal length")
    if a.size == 0:
        raise ValidationError("partitions must be non-empty")
    if not (np.issubdtype(a.dtype, np.integer)
            and np.issubdtype(b.dtype, np.integer)):
        raise ValidationError("partitions must hold integer labels")
    _, a_dense = np.unique(a, return_inverse=True)
    _, b_dense = np.unique(b, return_inverse=True)
    ka = int(a_dense.max()) + 1
    kb = int(b_dense.max()) + 1
    cells = np.bincount(a_dense.astype(np.int64) * kb + b_dense,
                        minlength=ka * kb).reshape(ka, kb)
    return cells, cells.sum(axis=1), cells.sum(axis=0), a.size


def adjusted_rand_index(a, b) -> float:
    """Hubert–Arabie adjusted Rand index in [-0.5, 1]; 1 iff identical."""
    cells, rows, cols, n = _contingency(a, b)

    def choose2(x):
        x = x.astype(np.float64)
        return (x * (x - 1) / 2).sum()

    sum_cells = choose2(cells.ravel())
    sum_rows = choose2(rows)
    sum_cols = choose2(cols)
    total = n * (n - 1) / 2
    expected = sum_rows * sum_cols / total if total else 0.0
    max_index = (sum_rows + sum_cols) / 2
    if max_index == expected:
        return 1.0  # both partitions trivial (all-singletons or all-one)
    return float((sum_cells - expected) / (max_index - expected))


def _entropy(counts: np.ndarray, n: int) -> float:
    p = counts[counts > 0].astype(np.float64) / n
    return float(-(p * np.log(p)).sum())


def _mutual_information(cells: np.ndarray, rows: np.ndarray,
                        cols: np.ndarray, n: int) -> float:
    nz = cells > 0
    pij = cells[nz].astype(np.float64) / n
    pi = (rows[:, None] * np.ones_like(cells))[nz].astype(np.float64) / n
    pj = (np.ones_like(cells) * cols[None, :])[nz].astype(np.float64) / n
    return float((pij * np.log(pij / (pi * pj))).sum())


def normalized_mutual_information(a, b) -> float:
    """NMI with arithmetic-mean normalization, in [0, 1].

    1 iff the partitions are identical (up to relabeling); 0 when the
    labels are independent.  Two identical *trivial* partitions score 1.
    """
    cells, rows, cols, n = _contingency(a, b)
    h_a = _entropy(rows, n)
    h_b = _entropy(cols, n)
    if h_a == 0.0 and h_b == 0.0:
        return 1.0
    mi = _mutual_information(cells, rows, cols, n)
    denom = (h_a + h_b) / 2.0
    return float(np.clip(mi / denom, 0.0, 1.0)) if denom else 0.0


def variation_of_information(a, b) -> float:
    """VI(a, b) = H(a) + H(b) - 2 I(a, b); a metric, 0 iff identical."""
    cells, rows, cols, n = _contingency(a, b)
    mi = _mutual_information(cells, rows, cols, n)
    vi = _entropy(rows, n) + _entropy(cols, n) - 2.0 * mi
    return float(max(0.0, vi))
