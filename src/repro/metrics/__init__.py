"""Partition-quality metrics and cross-scheme performance profiles.

``pairs``
    Pair-counting comparison of two partitions (Table 3's specificity,
    sensitivity, overlap quality and Rand index), computed from the
    contingency table in O(n + cells) instead of the Θ(n²) pair enumeration
    the paper resorts to.
``information``
    Chance-corrected and information-theoretic scores (ARI, NMI, VI) for
    downstream users beyond Table 3.
``profiles``
    Relative performance profiles across schemes and inputs (Fig. 10).
"""

from repro.metrics.information import (
    adjusted_rand_index,
    normalized_mutual_information,
    variation_of_information,
)
from repro.metrics.pairs import PairCounts, compare_partitions, pair_counts
from repro.metrics.profiles import PerformanceProfile, performance_profile

__all__ = [
    "PairCounts",
    "PerformanceProfile",
    "adjusted_rand_index",
    "compare_partitions",
    "normalized_mutual_information",
    "pair_counts",
    "performance_profile",
    "variation_of_information",
]
