"""Coloring validation and color-class statistics.

The paper reports the number of colors and the relative standard deviation
of color-set sizes (943 colors with RSD 18.876 for uk-2002's first phase,
§6.2) and correlates skewed color sets with poor scaling; the same
statistics are computed here and consumed by the cost model.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph
from repro.utils.errors import ValidationError

__all__ = [
    "color_class_sizes",
    "color_set_partition",
    "color_size_rsd",
    "is_valid_coloring",
    "num_colors",
]


def _check_colors(graph: CSRGraph, colors) -> np.ndarray:
    colors = np.asarray(colors)
    if colors.shape != (graph.num_vertices,):
        raise ValidationError(
            f"colors must have shape ({graph.num_vertices},), got {colors.shape}"
        )
    if not np.issubdtype(colors.dtype, np.integer):
        raise ValidationError("colors must be integers")
    if colors.size and colors.min() < 0:
        raise ValidationError("colors must be non-negative")
    return colors.astype(np.int64, copy=False)


def is_valid_coloring(graph: CSRGraph, colors, k: int = 1) -> bool:
    """True when no two vertices within distance ``k`` share a color.

    Self-loops are ignored.  ``k > 1`` checks against the k-th power graph.
    """
    colors = _check_colors(graph, colors)
    if k > 1:
        from repro.coloring.distance_k import power_graph

        graph = power_graph(graph, k)
    row_of = graph.row_of_entry()
    non_loop = graph.indices != row_of
    return not bool(
        np.any(colors[row_of[non_loop]] == colors[graph.indices[non_loop]])
    )


def num_colors(colors) -> int:
    """Number of distinct colors used."""
    colors = np.asarray(colors)
    return int(np.unique(colors).size) if colors.size else 0


def color_class_sizes(colors) -> np.ndarray:
    """Size of each color class ``0..max_color`` (may contain zeros only
    when the coloring skipped color values, which our colorers never do)."""
    colors = np.asarray(colors)
    if colors.size == 0:
        return np.zeros(0, dtype=np.int64)
    return np.bincount(colors.astype(np.int64))


def color_size_rsd(colors) -> float:
    """Relative standard deviation of color-class sizes (§6.2's skew metric)."""
    sizes = color_class_sizes(colors).astype(np.float64)
    sizes = sizes[sizes > 0]
    if sizes.size == 0 or sizes.mean() == 0:
        return 0.0
    return float(sizes.std() / sizes.mean())


def color_set_partition(colors) -> list[np.ndarray]:
    """Vertex ids grouped by color, ascending color order.

    Each returned array is sorted, so sweeping the sets in order preserves
    the deterministic vertex-id ordering inside each parallel step.
    """
    colors = np.asarray(colors, dtype=np.int64)
    if colors.size == 0:
        return []
    order = np.argsort(colors, kind="stable")
    sorted_colors = colors[order]
    boundaries = np.flatnonzero(np.diff(sorted_colors)) + 1
    return [np.sort(part) for part in np.split(order, boundaries)]
