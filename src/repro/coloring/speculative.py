"""Speculative (iterative conflict-resolution) coloring.

The colorer the paper actually uses — Catalyurek, Feo, Gebremedhin,
Halappanavar, Pothen [12] — is of the Gebremedhin–Manne *speculative*
family, which differs from Jones–Plassmann: instead of waiting for local
priority maxima, **every** uncolored vertex tentatively takes the smallest
color not used in its neighborhood (reading a possibly stale snapshot);
conflicts (adjacent vertices that picked the same color in the same round)
are then detected and one endpoint of each conflict is sent back for
recoloring.  On real graphs only a tiny fraction of vertices conflict, so
the schedule approaches one parallel pass over the edges.

This module implements that scheme with Jacobi (snapshot) semantics and a
seeded random priority for conflict victims, so the outcome is
deterministic given the seed.  Both this and the Jones–Plassmann colorer
are available to the pipeline (``LouvainConfig.colorer``); they produce
different — but both valid — color partitions.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph
from repro.utils.rng import as_rng

__all__ = ["speculative_coloring"]


def speculative_coloring(
    graph: CSRGraph,
    *,
    seed=None,
    work_log: list | None = None,
    max_rounds: int = 10_000,
) -> np.ndarray:
    """Color ``graph`` by speculate-then-resolve rounds ([12]-style).

    Parameters
    ----------
    seed:
        Seed for the conflict-victim priorities.
    work_log:
        Optional list receiving one ``(vertices_colored, edges_scanned)``
        tuple per round, for the cost model.
    max_rounds:
        Safety cap (each round strictly shrinks the conflict set, so the
        cap never fires on valid inputs).

    Returns
    -------
    ``(n,)`` color array, colors in ``0..C-1``.
    """
    n = graph.num_vertices
    colors = np.full(n, -1, dtype=np.int64)
    if n == 0:
        return colors
    rng = as_rng(seed)
    priority = rng.permutation(n).astype(np.int64)

    indptr, indices = graph.indptr, graph.indices
    row_of = graph.row_of_entry()
    non_loop = indices != row_of
    src_all = row_of[non_loop]
    dst_all = indices[non_loop]

    pending = np.arange(n, dtype=np.int64)
    for _ in range(max_rounds):
        if pending.size == 0:
            break
        # --- speculation: every pending vertex picks its mex color from
        # the *snapshot* (stale reads allowed — that's the speculation).
        snapshot = colors.copy()
        edges_scanned = 0
        for v in pending.tolist():
            lo, hi = indptr[v], indptr[v + 1]
            nbrs = indices[lo:hi]
            edges_scanned += hi - lo
            used = set(
                int(c) for c in snapshot[nbrs[nbrs != v]].tolist() if c >= 0
            )
            c = 0
            while c in used:
                c += 1
            colors[v] = c
        if work_log is not None:
            work_log.append((int(pending.size), int(edges_scanned)))
        # --- conflict detection (vectorized over all non-loop entries):
        # adjacent equal colors where both endpoints were just colored.
        in_pending = np.zeros(n, dtype=bool)
        in_pending[pending] = True
        live = in_pending[src_all] | in_pending[dst_all]
        src = src_all[live]
        dst = dst_all[live]
        clash = colors[src] == colors[dst]
        if not clash.any():
            break
        # The lower-priority endpoint of each clashing edge recolors.
        a = src[clash]
        b = dst[clash]
        loser = np.where(priority[a] < priority[b], a, b)
        pending = np.unique(loser)
        colors[pending] = -1
    return colors
