"""Distance-k coloring (paper §5.2 mentions k ≥ 1; the evaluation uses k=1).

A distance-k coloring assigns distinct colors to any two vertices within
graph distance k.  Equivalently it is a distance-1 coloring of the k-th
power graph; the power is built with boolean sparse matrix products
(SciPy), which is exact and fast for the moderate k and graph sizes used
here.
"""

from __future__ import annotations

import numpy as np

from repro.coloring.greedy import greedy_coloring
from repro.graph.csr import CSRGraph
from repro.utils.errors import ValidationError

__all__ = ["distance_k_coloring", "power_graph"]


def power_graph(graph: CSRGraph, k: int) -> CSRGraph:
    """The k-th power of ``graph``: edges join vertices at distance ≤ k.

    Self-loops are dropped (a vertex is not its own neighbor for coloring);
    all edge weights in the power graph are 1.
    """
    if k < 1:
        raise ValidationError("k must be >= 1")
    import scipy.sparse as sp

    n = graph.num_vertices
    if n == 0:
        return CSRGraph.empty(0)
    adj = graph.to_scipy().astype(bool)
    adj.setdiag(False)
    adj.eliminate_zeros()
    reach = adj.copy()
    hop = adj
    for _ in range(k - 1):
        hop = (hop @ adj).astype(bool)
        reach = (reach + hop).astype(bool)
    reach = sp.coo_array(reach)
    keep = reach.row != reach.col
    rows = reach.row[keep]
    cols = reach.col[keep]
    upper = rows < cols
    edges = np.column_stack([rows[upper], cols[upper]]).astype(np.int64)
    return CSRGraph.from_edges(n, edges, combine="error")


def distance_k_coloring(
    graph: CSRGraph, k: int = 1, *, order: str = "largest_first", seed=None
) -> np.ndarray:
    """Distance-k greedy coloring (k=1 delegates straight to greedy)."""
    if k == 1:
        return greedy_coloring(graph, order=order, seed=seed)
    return greedy_coloring(power_graph(graph, k), order=order, seed=seed)
