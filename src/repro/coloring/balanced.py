"""Balanced recoloring.

The paper attributes uk-2002's poor coloring speedup to "highly skewed
color size distributions" and says the authors "are exploring an
alternative approaches to create balanced coloring sets" (§6.2).  This
module implements that alternative: after an initial valid coloring, move
vertices out of oversized color classes into any *feasible* (distance-1
conflict-free) class that is below the average size, repeating until no
move is possible or the pass limit is reached.

The result is still a valid distance-1 coloring — only class sizes change —
so it plugs into the pipeline unchanged; the ablation benchmark measures
its effect on the simulated runtime of skewed inputs.
"""

from __future__ import annotations

import numpy as np

from repro.coloring.validate import color_class_sizes
from repro.graph.csr import CSRGraph
from repro.utils.errors import ValidationError

__all__ = ["balance_colors"]


def balance_colors(
    graph: CSRGraph,
    colors,
    *,
    max_passes: int = 8,
    max_colors: int | None = None,
) -> np.ndarray:
    """Even out color-class sizes while preserving coloring validity.

    Parameters
    ----------
    colors:
        A valid distance-1 coloring.
    max_passes:
        Upper bound on rebalance sweeps (each pass is O(n + M)).
    max_colors:
        Total colors the balancer may use.  Defaults to the input's color
        count; a larger value lets the balancer open fresh classes when a
        crowded vertex has no feasible existing class (balanced colorings
        generally trade a few extra colors for evenness).

    Returns
    -------
    A new color array using at most ``max_colors`` colors, with a
    color-size RSD no larger than the input's.
    """
    colors = np.asarray(colors, dtype=np.int64).copy()
    n = graph.num_vertices
    if colors.shape != (n,):
        raise ValidationError(f"colors must have shape ({n},)")
    if n == 0:
        return colors
    sizes = color_class_sizes(colors).astype(np.int64).tolist()
    k_init = len(sizes)
    if max_colors is None:
        max_colors = k_init
    if max_colors < k_init:
        raise ValidationError("max_colors cannot be below the input color count")
    if k_init <= 1 and max_colors <= 1:
        return colors
    target = float(n) / max_colors

    indptr, indices = graph.indptr, graph.indices
    for _ in range(max_passes):
        moved = 0
        for v in range(n):
            cv = int(colors[v])
            if sizes[cv] <= target + 1:
                continue
            lo, hi = indptr[v], indptr[v + 1]
            nbrs = indices[lo:hi]
            used = set(colors[nbrs[nbrs != v]].tolist())
            # Smallest under-target feasible class.
            best = -1
            for c in range(len(sizes)):
                if c == cv or c in used:
                    continue
                if sizes[c] < target and (best < 0 or sizes[c] < sizes[best]):
                    best = c
            if best < 0 and len(sizes) < max_colors:
                sizes.append(0)
                best = len(sizes) - 1
            if best >= 0:
                sizes[cv] -= 1
                sizes[best] += 1
                colors[v] = best
                moved += 1
        if moved == 0:
            break
    return colors
