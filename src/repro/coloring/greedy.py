"""Serial greedy distance-1 coloring.

First-fit greedy over a vertex order: each vertex takes the smallest color
not used by an already-colored neighbor.  Selectable orders:

* ``"natural"`` — vertex id order (deterministic);
* ``"largest_first"`` — descending degree (classic Welsh–Powell, usually
  fewer colors);
* ``"smallest_last"`` — the degeneracy order (colors ≤ degeneracy + 1);
* ``"random"`` — a seeded shuffle.

Self-loops are ignored: a vertex is never its own distance-1 neighbor for
coloring purposes.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph
from repro.utils.errors import ValidationError
from repro.utils.rng import as_rng

__all__ = ["greedy_coloring", "vertex_order"]

_ORDERS = ("natural", "largest_first", "smallest_last", "random")


def vertex_order(graph: CSRGraph, order: str, *, seed=None) -> np.ndarray:
    """Return the visit order for :func:`greedy_coloring`."""
    n = graph.num_vertices
    if order == "natural":
        return np.arange(n, dtype=np.int64)
    if order == "random":
        rng = as_rng(seed)
        return rng.permutation(n).astype(np.int64)
    if order == "largest_first":
        deg = graph.unweighted_degrees
        # Stable sort on negated degree keeps id order within equal degrees.
        return np.argsort(-deg, kind="stable").astype(np.int64)
    if order == "smallest_last":
        return _smallest_last_order(graph)
    raise ValidationError(f"unknown order {order!r}; expected one of {_ORDERS}")


def _smallest_last_order(graph: CSRGraph) -> np.ndarray:
    """Degeneracy (smallest-last) order via iterative min-degree peeling."""
    n = graph.num_vertices
    deg = graph.unweighted_degrees.astype(np.int64).copy()
    removed = np.zeros(n, dtype=bool)
    order = np.empty(n, dtype=np.int64)
    # Bucket queue over degrees for O(n + M) peeling.
    max_deg = int(deg.max()) if n else 0
    buckets: list[list[int]] = [[] for _ in range(max_deg + 1)]
    for v in range(n):
        buckets[deg[v]].append(v)
    pointer = 0
    for slot in range(n - 1, -1, -1):
        while pointer <= max_deg and not buckets[pointer]:
            pointer += 1
        # Entries may be stale (degree since decreased); skip them.
        v = -1
        while pointer <= max_deg:
            while buckets[pointer]:
                cand = buckets[pointer].pop()
                if not removed[cand] and deg[cand] == pointer:
                    v = cand
                    break
            if v >= 0:
                break
            pointer += 1
        order[slot] = v
        removed[v] = True
        nbrs, _ = graph.neighbors(v)
        for u in nbrs.tolist():
            if u != v and not removed[u]:
                deg[u] -= 1
                buckets[deg[u]].append(u)
                if deg[u] < pointer:
                    pointer = deg[u]
    return order


def greedy_coloring(
    graph: CSRGraph, *, order: str = "largest_first", seed=None
) -> np.ndarray:
    """First-fit greedy distance-1 coloring.

    Returns an ``(n,)`` array of colors in ``0..C-1``; adjacent vertices
    always receive distinct colors.
    """
    n = graph.num_vertices
    colors = np.full(n, -1, dtype=np.int64)
    if n == 0:
        return colors
    visit = vertex_order(graph, order, seed=seed)
    indices = graph.indices
    indptr = graph.indptr
    # `forbidden[c] == v` marks color c as used by a neighbor of the vertex
    # currently being colored — the standard O(n + M) timestamp trick.
    forbidden = np.full(n + 1, -1, dtype=np.int64)
    for v in visit.tolist():
        lo, hi = indptr[v], indptr[v + 1]
        for u in indices[lo:hi].tolist():
            c = colors[u]
            if u != v and c >= 0:
                forbidden[c] = v
        c = 0
        while forbidden[c] == v:
            c += 1
        colors[v] = c
    return colors
