"""Vertex coloring substrate (paper §5.2).

Distance-1 coloring partitions the vertices into independent sets
("color sets"); processing one set at a time guarantees no two adjacent
vertices decide concurrently, which eliminates vertex-to-vertex swaps and
empirically speeds convergence (at the price of less parallelism per set).

``greedy``
    Serial first-fit greedy coloring with selectable vertex orders.
``jones_plassmann``
    Parallel-semantics Jones–Plassmann coloring with random priorities.
``speculative``
    Speculate-then-resolve coloring — the Gebremedhin–Manne family the
    paper's actual colorer (Catalyurek et al. [12]) belongs to.
``distance_k``
    Distance-k coloring via the k-th boolean power of the adjacency.
``balanced``
    A recoloring pass that evens out color-class sizes (addressing the
    skewed color-set distribution the paper blames for uk-2002's poor
    scaling, §6.2).
``validate``
    Validity checks and the color-class statistics (count, sizes, RSD).
"""

from repro.coloring.balanced import balance_colors
from repro.coloring.distance_k import distance_k_coloring
from repro.coloring.greedy import greedy_coloring
from repro.coloring.jones_plassmann import jones_plassmann_coloring
from repro.coloring.speculative import speculative_coloring
from repro.coloring.validate import (
    color_class_sizes,
    color_set_partition,
    color_size_rsd,
    is_valid_coloring,
    num_colors,
)

__all__ = [
    "balance_colors",
    "color_class_sizes",
    "color_set_partition",
    "color_size_rsd",
    "distance_k_coloring",
    "greedy_coloring",
    "is_valid_coloring",
    "jones_plassmann_coloring",
    "num_colors",
    "speculative_coloring",
]
