"""Jones–Plassmann parallel-semantics coloring.

The paper colors with the multithreaded algorithm of Catalyurek et al.
[12]; Jones–Plassmann is the canonical parallel independent-set colorer
with the same structure (random priorities, rounds of conflict-free
assignment) and serves as its stand-in here.

Each vertex draws a random priority.  In every round, all still-uncolored
vertices whose priority beats every uncolored neighbor's color themselves
simultaneously with the smallest color unused in their neighborhood.  The
number of rounds is O(log n / log log n) in expectation for bounded-degree
graphs; each round's candidate selection is fully vectorized, and the
outcome depends only on the seed — not on scheduling — mirroring the
deterministic-given-priorities property of the real parallel colorer.

The round structure is also what the simulated-machine cost model charges
for coloring time (Fig. 8's "coloring" share), so :func:`jones_plassmann_coloring`
reports the number of rounds and per-round work via its optional
``work_log``.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph
from repro.lint.sanitizer import snapshot_kernel
from repro.utils.rng import as_rng

__all__ = ["jones_plassmann_coloring"]


@snapshot_kernel("graph")
def jones_plassmann_coloring(
    graph: CSRGraph,
    *,
    seed=None,
    work_log: list | None = None,
) -> np.ndarray:
    """Color ``graph`` with Jones–Plassmann random-priority rounds.

    Parameters
    ----------
    seed:
        Seed for the random priorities (ties broken by vertex id, so the
        result is fully deterministic given the seed).
    work_log:
        Optional list; when given, one ``(candidates, edges_scanned)``
        tuple is appended per round for the cost model.

    Returns
    -------
    ``(n,)`` color array, colors in ``0..C-1``.
    """
    n = graph.num_vertices
    colors = np.full(n, -1, dtype=np.int64)
    if n == 0:
        return colors
    rng = as_rng(seed)
    # Random priorities; vertex id breaks ties deterministically.
    priority = rng.permutation(n).astype(np.int64)

    indptr = graph.indptr
    indices = graph.indices
    row_of = graph.row_of_entry()
    non_loop = indices != row_of
    src_all = row_of[non_loop]
    dst_all = indices[non_loop]

    uncolored = colors < 0
    while uncolored.any():
        # A vertex is a candidate when every *uncolored* neighbor has lower
        # priority.  Compute the max uncolored-neighbor priority per vertex.
        live_edge = uncolored[src_all] & uncolored[dst_all]
        src = src_all[live_edge]
        dst = dst_all[live_edge]
        max_nbr = np.full(n, -1, dtype=np.int64)
        if src.size:
            np.maximum.at(max_nbr, src, priority[dst])
        candidates = np.flatnonzero(uncolored & (priority > max_nbr))
        if work_log is not None:
            work_log.append((int(candidates.size), int(src.size)))
        # Candidates form an independent set among uncolored vertices, so
        # they can all take their smallest feasible color simultaneously;
        # colored neighbors constrain the choice.
        for v in candidates.tolist():
            lo, hi = indptr[v], indptr[v + 1]
            nbr_colors = colors[indices[lo:hi]]
            used = set(nbr_colors[nbr_colors >= 0].tolist())
            c = 0
            while c in used:
                c += 1
            colors[v] = c
        uncolored = colors < 0
    return colors
