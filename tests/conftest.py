"""Shared fixtures: small graphs with hand-checkable structure."""

from __future__ import annotations

import os

import numpy as np
import pytest

# Run the whole suite under the runtime snapshot sanitizer
# (repro.lint.sanitizer): sweep kernels compute targets against *frozen*
# community snapshots, so any in-place write a change sneaks into the
# read path raises here instead of passing silently.  Benchmarks run
# without the variable, i.e. with the guard off.  Set before any test
# module constructs a LouvainConfig (the default is read lazily, but the
# conftest import is the earliest hook either way).
os.environ.setdefault("REPRO_SANITIZE", "1")

from repro.graph.csr import CSRGraph
from repro.graph.generators import (
    complete_graph,
    karate_club,
    path_graph,
    planted_partition,
    star_graph,
    two_cliques_bridge,
)


@pytest.fixture
def triangle() -> CSRGraph:
    """3-cycle; every vertex has degree 2, m = 3."""
    return CSRGraph.from_edges(3, [(0, 1), (1, 2), (0, 2)])


@pytest.fixture
def path4() -> CSRGraph:
    """Path 0-1-2-3."""
    return path_graph(4)


@pytest.fixture
def star5() -> CSRGraph:
    """Hub 0 with 5 leaves — all leaves single-degree."""
    return star_graph(5)


@pytest.fixture
def loops_graph() -> CSRGraph:
    """Graph with self-loops and weighted edges for degree bookkeeping tests.

    Edges: (0,0) w=2, (0,1) w=3, (1,2) w=1, (2,2) w=5.
    Degrees: k0 = 2+3 = 5, k1 = 3+1 = 4, k2 = 1+5 = 6; m = 7.5.
    """
    return CSRGraph.from_edges(
        3, [(0, 0), (0, 1), (1, 2), (2, 2)], [2.0, 3.0, 1.0, 5.0]
    )


@pytest.fixture
def karate() -> CSRGraph:
    return karate_club()


@pytest.fixture
def cliques8() -> CSRGraph:
    """Two 4-cliques joined by a bridge; obvious 2-community structure."""
    return two_cliques_bridge(4)


@pytest.fixture
def k5() -> CSRGraph:
    return complete_graph(5)


@pytest.fixture
def planted() -> CSRGraph:
    """Planted partition: 6 communities of 20, strong structure."""
    return planted_partition(6, 20, 0.4, 0.01, seed=42)


@pytest.fixture
def planted_truth() -> np.ndarray:
    return np.repeat(np.arange(6), 20).astype(np.int64)
