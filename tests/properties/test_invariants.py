"""Property-based tests of the core mathematical invariants.

These are the identities DESIGN.md §4 commits to: the Eq. 4 gain identity,
coarsening exactness, coloring validity, kernel equivalence, serial
monotonicity, and pair-metric consistency — each checked over randomly
generated weighted graphs with self-loops.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.gain import delta_q_vertex
from repro.core.louvain_serial import serial_iteration
from repro.core.modularity import community_degrees, modularity
from repro.core.sweep import (
    apply_moves,
    compute_targets_reference,
    compute_targets_vectorized,
    init_state,
)
from repro.coloring.greedy import greedy_coloring
from repro.coloring.jones_plassmann import jones_plassmann_coloring
from repro.coloring.validate import color_set_partition, is_valid_coloring
from repro.graph.coarsen import coarsen, project_assignment
from repro.metrics.pairs import pair_counts
from repro.utils.arrays import renumber_labels

from tests.properties.strategies import graphs, graphs_with_assignments

SETTINGS = dict(max_examples=60, deadline=None)


class TestGainIdentity:
    @given(gc=graphs_with_assignments(min_vertices=2), data=st.data())
    @settings(**SETTINGS)
    def test_eq4_equals_exact_q_delta(self, gc, data):
        """Eq. 4 == Q(after) - Q(before) for ANY single move."""
        g, comm = gc
        if g.total_weight <= 0:
            return
        n = g.num_vertices
        v = data.draw(st.integers(0, n - 1))
        target = data.draw(st.integers(0, n - 1))
        if target == comm[v]:
            return
        gain = delta_q_vertex(g, comm, v, target)
        moved = comm.copy()
        moved[v] = target
        exact = modularity(g, moved) - modularity(g, comm)
        assert gain == pytest.approx(exact, abs=1e-9)


class TestModularityBounds:
    @given(gc=graphs_with_assignments())
    @settings(**SETTINGS)
    def test_q_at_most_one(self, gc):
        g, comm = gc
        assert modularity(g, comm) <= 1.0

    @given(g=graphs(min_vertices=1))
    @settings(**SETTINGS)
    def test_single_community_zero(self, g):
        assert modularity(
            g, np.zeros(g.num_vertices, dtype=np.int64)
        ) == pytest.approx(0.0, abs=1e-12)


class TestCoarsening:
    @given(gc=graphs_with_assignments())
    @settings(**SETTINGS)
    def test_total_weight_preserved(self, gc):
        g, comm = gc
        assert coarsen(g, comm).graph.total_weight == pytest.approx(
            g.total_weight
        )

    @given(gc=graphs_with_assignments())
    @settings(**SETTINGS)
    def test_degrees_equal_community_degrees(self, gc):
        g, comm = gc
        result = coarsen(g, comm)
        dense, k = renumber_labels(comm)
        np.testing.assert_allclose(
            result.graph.degrees, community_degrees(g, dense, k), atol=1e-9
        )

    @given(gc=graphs_with_assignments(), data=st.data())
    @settings(**SETTINGS)
    def test_modularity_invariance(self, gc, data):
        """Q(coarse partition) == Q(induced fine partition), always."""
        g, comm = gc
        result = coarsen(g, comm)
        k = result.num_communities
        if k == 0:
            return
        meta = np.asarray(
            data.draw(st.lists(st.integers(0, max(0, k - 1)),
                               min_size=k, max_size=k)),
            dtype=np.int64,
        )
        fine = project_assignment(result.vertex_to_meta, meta)
        assert modularity(result.graph, meta) == pytest.approx(
            modularity(g, fine), abs=1e-9
        )

    @given(gc=graphs_with_assignments())
    @settings(**SETTINGS)
    def test_identity_when_all_singletons(self, gc):
        g, _ = gc
        result = coarsen(g, np.arange(g.num_vertices))
        assert result.graph == g


class TestColoring:
    @given(g=graphs(), seed=st.integers(0, 10))
    @settings(**SETTINGS)
    def test_greedy_always_valid(self, g, seed):
        assert is_valid_coloring(g, greedy_coloring(g, order="random",
                                                    seed=seed))

    @given(g=graphs(), seed=st.integers(0, 10))
    @settings(**SETTINGS)
    def test_jones_plassmann_always_valid(self, g, seed):
        colors = jones_plassmann_coloring(g, seed=seed)
        assert is_valid_coloring(g, colors)
        # Partition covers every vertex exactly once.
        sets = color_set_partition(colors)
        if g.num_vertices:
            merged = np.sort(np.concatenate(sets))
            np.testing.assert_array_equal(merged, np.arange(g.num_vertices))


class TestKernelEquivalence:
    @given(gc=graphs_with_assignments(), use_ml=st.booleans())
    @settings(**SETTINGS)
    def test_vectorized_equals_reference(self, gc, use_ml):
        g, comm = gc
        state = init_state(g, comm)
        verts = np.arange(g.num_vertices, dtype=np.int64)
        ref = compute_targets_reference(g, state, verts, use_min_label=use_ml)
        vec = compute_targets_vectorized(g, state, verts, use_min_label=use_ml)
        np.testing.assert_array_equal(ref, vec)

    @given(gc=graphs_with_assignments())
    @settings(max_examples=30, deadline=None)
    def test_equivalence_over_multiple_sweeps(self, gc):
        g, comm = gc
        s_ref = init_state(g, comm)
        s_vec = init_state(g, comm)
        verts = np.arange(g.num_vertices, dtype=np.int64)
        for _ in range(3):
            t_ref = compute_targets_reference(g, s_ref, verts)
            t_vec = compute_targets_vectorized(g, s_vec, verts)
            np.testing.assert_array_equal(t_ref, t_vec)
            apply_moves(g, s_ref, verts, t_ref)
            apply_moves(g, s_vec, verts, t_vec)


class TestSerialMonotonicity:
    @given(g=graphs(min_vertices=2))
    @settings(max_examples=40, deadline=None)
    def test_never_decreases(self, g):
        state = init_state(g)
        order = np.arange(g.num_vertices, dtype=np.int64)
        q = modularity(g, state.comm)
        for _ in range(4):
            moved = serial_iteration(g, state, order)
            q_new = modularity(g, state.comm)
            assert q_new >= q - 1e-9
            q = q_new
            if moved == 0:
                break


class TestPairMetrics:
    @given(
        labels=st.lists(
            st.tuples(st.integers(0, 4), st.integers(0, 4)),
            min_size=0, max_size=30,
        )
    )
    @settings(**SETTINGS)
    def test_bins_partition_all_pairs(self, labels):
        s = np.asarray([a for a, _ in labels], dtype=np.int64)
        p = np.asarray([b for _, b in labels], dtype=np.int64)
        pc = pair_counts(s, p)
        n = len(labels)
        assert pc.total_pairs == n * (n - 1) / 2
        for value in (pc.tp, pc.fp, pc.fn, pc.tn):
            assert value >= 0

    @given(labels=st.lists(st.integers(0, 5), min_size=1, max_size=30))
    @settings(**SETTINGS)
    def test_self_comparison_perfect(self, labels):
        arr = np.asarray(labels, dtype=np.int64)
        pc = pair_counts(arr, arr)
        assert pc.rand_index == 1.0
        assert pc.fp == 0 and pc.fn == 0
