"""Shared hypothesis strategies: random undirected weighted graphs."""

from __future__ import annotations

import numpy as np
from hypothesis import strategies as st

from repro.graph.csr import CSRGraph


@st.composite
def graphs(
    draw,
    min_vertices: int = 1,
    max_vertices: int = 24,
    max_extra_edges: int = 40,
    weighted: bool = True,
    allow_self_loops: bool = True,
):
    """Random small graphs: a random subset of possible edges, optional
    self-loops, strictly positive (optionally non-unit) weights."""
    n = draw(st.integers(min_vertices, max_vertices))
    possible: list[tuple[int, int]] = [
        (i, j) for i in range(n) for j in range(i + 1, n)
    ]
    if allow_self_loops:
        possible += [(i, i) for i in range(n)]
    if not possible:
        return CSRGraph.empty(n)
    count = draw(st.integers(0, min(len(possible), max_extra_edges)))
    picked = draw(
        st.lists(
            st.sampled_from(possible), min_size=count, max_size=count,
            unique=True,
        )
    )
    if not picked:
        return CSRGraph.empty(n)
    if weighted:
        weights = draw(
            st.lists(
                st.floats(0.1, 10.0, allow_nan=False, allow_infinity=False),
                min_size=len(picked), max_size=len(picked),
            )
        )
    else:
        weights = [1.0] * len(picked)
    return CSRGraph.from_edges(n, np.asarray(picked, dtype=np.int64),
                               np.asarray(weights))


@st.composite
def graphs_with_assignments(draw, **kwargs):
    """A graph plus a random community assignment with labels in [0, n)."""
    g = draw(graphs(**kwargs))
    n = g.num_vertices
    comm = draw(
        st.lists(st.integers(0, max(0, n - 1)), min_size=n, max_size=n)
    )
    return g, np.asarray(comm, dtype=np.int64)
