"""Property-based tests for the analysis layer's accounting identities."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.communities import community_stats, summarize_partition
from repro.core.modularity import modularity

from tests.properties.strategies import graphs_with_assignments

SETTINGS = dict(max_examples=40, deadline=None)


class TestAccountingIdentities:
    @given(gc=graphs_with_assignments())
    @settings(**SETTINGS)
    def test_weight_conservation(self, gc):
        """Σ internal + Σ cut/2 accounts every edge once at full weight.

        That total equals m + W_self/2 under this package's convention
        (a self-loop contributes w/2 to m but w to its community's
        internal weight).
        """
        g, comm = gc
        stats = community_stats(g, comm)
        total = sum(s.internal_weight for s in stats) + sum(
            s.cut_weight for s in stats
        ) / 2.0
        w_self = float(g.self_loop_weights().sum())
        assert total == pytest.approx(g.total_weight + w_self / 2.0,
                                      abs=1e-9)

    @given(gc=graphs_with_assignments())
    @settings(**SETTINGS)
    def test_volume_decomposition(self, gc):
        """vol(C) splits into internal (x2 for non-self) and cut weight.

        With self-loops counted once in degrees, the identity is
        vol(C) = 2*W_in(C) - W_self(C) + W_cut(C); we check the looser
        conservation Σ vol = 2m plus per-community non-negativity.
        """
        g, comm = gc
        stats = community_stats(g, comm)
        assert sum(s.volume for s in stats) == pytest.approx(
            2 * g.total_weight, abs=1e-9
        )
        for s in stats:
            assert s.internal_weight >= 0
            assert s.cut_weight >= 0

    @given(gc=graphs_with_assignments())
    @settings(**SETTINGS)
    def test_conductance_bounds(self, gc):
        g, comm = gc
        for s in community_stats(g, comm):
            assert 0.0 <= s.conductance <= 1.0 + 1e-9

    @given(gc=graphs_with_assignments())
    @settings(**SETTINGS)
    def test_summary_consistency(self, gc):
        g, comm = gc
        summary = summarize_partition(g, comm)
        assert 0.0 <= summary.coverage <= 1.0
        assert 0.0 <= summary.mixing_parameter <= 1.0 + 1e-9
        if g.total_weight > 0:
            assert summary.modularity == pytest.approx(
                modularity(g, comm), abs=1e-9
            )
        assert summary.size_min <= summary.size_median <= summary.size_max

    @given(gc=graphs_with_assignments())
    @settings(**SETTINGS)
    def test_coverage_complements_mixing_weighted(self, gc):
        """Degree-weighted mean mixing == 1 - coverage (self-loops intra)."""
        g, comm = gc
        if g.total_weight <= 0:
            return
        summary = summarize_partition(g, comm)
        row_of = g.row_of_entry()
        inter = comm[row_of] != comm[g.indices]
        inter_frac = float(g.weights[inter].sum()) / float(g.weights.sum())
        assert summary.coverage == pytest.approx(1.0 - inter_frac, abs=1e-9)
