"""Property-based round-trip and consistency tests: file formats, dynamic
graphs, and the coarsen/dendrogram composition."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.dynamic.dynamic_graph import DynamicGraph
from repro.graph.csr import CSRGraph
from repro.graph.io import (
    load_csrz,
    read_edge_list,
    read_matrix_market,
    read_metis,
    save_csrz,
    write_edge_list,
    write_matrix_market,
    write_metis,
)

from tests.properties.strategies import graphs

SETTINGS = dict(max_examples=25, deadline=None)


class TestFormatRoundTrips:
    @given(g=graphs())
    @settings(**SETTINGS)
    def test_edge_list(self, g, tmp_path_factory):
        path = tmp_path_factory.mktemp("io") / "g.txt"
        write_edge_list(g, path)
        assert read_edge_list(path, num_vertices=g.num_vertices) == g

    @given(g=graphs())
    @settings(**SETTINGS)
    def test_metis(self, g, tmp_path_factory):
        path = tmp_path_factory.mktemp("io") / "g.metis"
        w = g.weights
        if g.num_edges and not bool(np.all(w == np.rint(w))):
            # Fractional weights violate the METIS spec (positive
            # integers); write_metis warns but our reader accepts them.
            with pytest.warns(UserWarning, match="fractional edge weights"):
                write_metis(g, path)
        else:
            write_metis(g, path)
        assert read_metis(path) == g

    @given(g=graphs())
    @settings(**SETTINGS)
    def test_matrix_market(self, g, tmp_path_factory):
        path = tmp_path_factory.mktemp("io") / "g.mtx"
        write_matrix_market(g, path)
        assert read_matrix_market(path) == g

    @given(g=graphs())
    @settings(**SETTINGS)
    def test_csrz(self, g, tmp_path_factory):
        path = tmp_path_factory.mktemp("io") / "g.npz"
        save_csrz(g, path)
        assert load_csrz(path) == g

    @given(g=graphs())
    @settings(**SETTINGS)
    def test_scipy(self, g):
        assert CSRGraph.from_scipy(g.to_scipy()) == g

    @given(g=graphs())
    @settings(**SETTINGS)
    def test_networkx(self, g):
        assert CSRGraph.from_networkx(g.to_networkx()) == g


class TestDynamicGraphConsistency:
    @given(
        g=graphs(min_vertices=2, max_vertices=12, max_extra_edges=15),
        ops=st.lists(
            st.tuples(st.integers(0, 11), st.integers(0, 11),
                      st.floats(0.1, 5.0)),
            max_size=20,
        ),
    )
    @settings(**SETTINGS)
    def test_mutation_sequence_matches_rebuild(self, g, ops):
        """After any mutation sequence, the snapshot equals a graph built
        from scratch with the same final edge set."""
        dyn = DynamicGraph.from_csr(g)
        mirror = {}
        u_arr, v_arr, w_arr = g.edge_arrays()
        for a, b, c in zip(u_arr.tolist(), v_arr.tolist(), w_arr.tolist()):
            mirror[(a, b)] = c
        n = g.num_vertices
        for u, v, w in ops:
            u %= n
            v %= n
            key = (min(u, v), max(u, v))
            if key in mirror:
                dyn.remove_edge(u, v)
                del mirror[key]
            else:
                dyn.add_edge(u, v, w)
                mirror[key] = w
        snap = dyn.snapshot()
        if mirror:
            pairs = np.asarray(list(mirror.keys()), dtype=np.int64)
            weights = np.asarray(list(mirror.values()))
            rebuilt = CSRGraph.from_edges(n, pairs, weights)
        else:
            rebuilt = CSRGraph.empty(n)
        assert snap == rebuilt


class TestWarmStartProperty:
    @given(g=graphs(min_vertices=3, max_vertices=16, max_extra_edges=30))
    @settings(max_examples=20, deadline=None)
    def test_warm_start_from_own_output_cannot_regress(self, g):
        """Feeding a result back as C_init never lowers modularity."""
        from repro.core.driver import louvain

        if g.total_weight <= 0:
            return
        cold = louvain(g)
        warm = louvain(g, initial_communities=cold.communities)
        assert warm.modularity >= cold.modularity - 1e-9
