"""Smoke tests: every shipped example runs end to end.

Examples are the public face of the library; a broken one is a bug.  Each
is executed in-process (``runpy``) with its stdout captured; the
parameterizable ones are pointed at smaller inputs to keep the suite
quick.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, argv: "list[str] | None" = None, capsys=None):
    old_argv = sys.argv
    sys.argv = [name] + (argv or [])
    try:
        runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    finally:
        sys.argv = old_argv


class TestExamplesRun:
    def test_quickstart(self, capsys):
        run_example("quickstart.py")
        out = capsys.readouterr().out
        assert "karate" in out
        assert "recovery vs ground truth" in out

    def test_social_network_analysis(self, capsys):
        run_example("social_network_analysis.py")
        out = capsys.readouterr().out
        assert "overlap quality" in out
        assert "simulated runtime breakdown" in out

    def test_metagenomics_clustering(self, capsys):
        run_example("metagenomics_clustering.py")
        out = capsys.readouterr().out
        assert "dendrogram" in out
        assert "family sizes" in out

    def test_road_network_vf(self, capsys):
        run_example("road_network_vf.py")
        out = capsys.readouterr().out
        assert "chain compression" in out
        assert "baseline+VF+Color" in out

    def test_scaling_study_small_input(self, capsys):
        run_example("scaling_study.py", ["NLPKKT240"])
        out = capsys.readouterr().out
        assert "rel speedup" in out

    def test_comparing_algorithms_small_input(self, capsys):
        run_example("comparing_algorithms.py", ["MG1"])
        out = capsys.readouterr().out
        assert "Grappolo" in out
        assert "CNM" in out

    def test_streaming_communities(self, capsys):
        run_example("streaming_communities.py")
        out = capsys.readouterr().out
        assert "fewer iterations warm" in out
        assert "Rand vs truth" in out

    def test_community_analysis_small_input(self, capsys):
        run_example("community_analysis.py", ["MG1"])
        out = capsys.readouterr().out
        assert "consensus over" in out
        assert "resolution scan" in out

    def test_resolution_limit(self, capsys):
        run_example("resolution_limit.py")
        out = capsys.readouterr().out
        assert "resolution limit" in out
        assert "yes" in out  # some gamma resolves every clique

    @pytest.mark.slow
    def test_distributed_memory_small_input(self, capsys):
        run_example("distributed_memory.py", ["NLPKKT240"])
        out = capsys.readouterr().out
        assert "identical" in out
