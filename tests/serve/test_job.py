"""Job specs, records, and graph-reference resolution."""

import pytest

from repro.graph.generators import planted_partition
from repro.serve.job import (
    JobSpec,
    JobStatus,
    checkpoint_path,
    resolve_graph_ref,
    result_path,
)
from repro.utils.errors import ValidationError


class TestJobSpec:
    def test_round_trip(self):
        spec = JobSpec(graph="planted:4x20", config={"seed": 3},
                       budget={"max_phases": 2}, priority=5, max_attempts=2)
        assert JobSpec.from_dict(spec.to_dict()) == spec

    def test_defaults(self):
        spec = JobSpec.from_dict({"graph": "dataset:MG1"})
        assert spec.priority == 0
        assert spec.max_attempts == 3
        assert spec.config == {} and spec.budget is None

    def test_budget_merges_into_config_fields(self):
        spec = JobSpec(graph="planted:4x20", config={"seed": 1},
                       budget={"max_phases": 2})
        fields = spec.config_fields()
        assert fields["budget"] == {"max_phases": 2}
        assert fields["seed"] == 1
        assert spec.config == {"seed": 1}  # the spec itself is untouched

    @pytest.mark.parametrize("bad", [
        {"graph": ""},
        {"graph": 7},
        {"graph": "g", "config": "not-a-dict"},
        {"graph": "g", "budget": "not-a-dict"},
        {"graph": "g", "priority": "high"},
        {"graph": "g", "max_attempts": 0},
        {"graph": "g", "surprise": 1},
        {},
    ])
    def test_validation(self, bad):
        with pytest.raises(ValidationError):
            JobSpec.from_dict(bad)

    def test_terminal_states(self):
        assert JobStatus.DONE in JobStatus.TERMINAL
        assert JobStatus.RUNNING not in JobStatus.TERMINAL
        assert JobStatus.TERMINAL <= JobStatus.ALL


class TestGraphRefs:
    def test_planted_ref_is_deterministic(self):
        ref = "planted:4x20?p_in=0.4&p_out=0.01&seed=9"
        assert resolve_graph_ref(ref) == resolve_graph_ref(ref)
        assert resolve_graph_ref(ref) == planted_partition(
            4, 20, 0.4, 0.01, seed=9
        )

    def test_dataset_ref(self):
        graph = resolve_graph_ref("dataset:MG1?scale=0.05&seed=1")
        assert graph.num_vertices > 0

    def test_file_ref(self, tmp_path):
        from repro.graph.io import save_csrz

        path = tmp_path / "g.npz"
        graph = planted_partition(3, 10, 0.5, 0.05, seed=0)
        save_csrz(graph, path)
        assert resolve_graph_ref(str(path)) == graph

    @pytest.mark.parametrize("bad", [
        "dataset:NOPE",
        "planted:4",                      # missing KxS shape
        "planted:axb",
        "planted:4x20?seed=banana",
        "/no/such/file.metis",
    ])
    def test_bad_refs(self, bad):
        with pytest.raises(ValidationError):
            resolve_graph_ref(bad)


class TestSpoolPaths:
    def test_paths_are_pure_functions_of_spool_and_id(self):
        # Workers derive these independently of the parent; any drift
        # would break checkpoint resume across attempts.
        assert checkpoint_path("/s", "job-000001") == \
            "/s/job-000001.ckpt.npz"
        assert result_path("/s", "job-000001") == \
            "/s/job-000001.result.npz"
