"""WAL + DurableBroker: torn tails, replay idempotence, compaction.

The property tests pin the two durability invariants the recovery path
leans on:

* **replay is idempotent** — constructing two ``DurableBroker``\\ s over
  the same log yields identical queue contents;
* **compaction preserves replay equivalence** — snapshotting the state
  and replaying the compacted log reconstructs exactly what the
  uncompacted log would have.
"""

import json
import os
import tempfile

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serve.broker import InMemoryBroker
from repro.serve.job import JobStatus
from repro.serve.wal import DurableBroker, WriteAheadLog, replay_jobs
from repro.utils.errors import QueueFullError


class TestWriteAheadLog:
    def test_append_replay_round_trip(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "w.wal")
        wal.append("put", job="job-000000", priority=2)
        wal.append("take", job="job-000000")
        records = wal.replay()
        assert records == [
            {"op": "put", "job": "job-000000", "priority": 2},
            {"op": "take", "job": "job-000000"},
        ]
        assert wal.torn_lines == 0
        wal.close()

    def test_missing_file_replays_empty(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "absent.wal")
        assert wal.replay() == []

    def test_torn_tail_skipped_and_counted(self, tmp_path):
        path = tmp_path / "w.wal"
        wal = WriteAheadLog(path)
        wal.append("put", job="a", priority=0)
        wal.append("put", job="b", priority=0)
        # Simulate a crash mid-append: a truncated final line.
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"op":"put","job":"c"')
        records = wal.replay()
        assert [r["job"] for r in records] == ["a", "b"]
        assert wal.torn_lines == 1
        wal.close()

    def test_non_object_lines_counted_as_torn(self, tmp_path):
        path = tmp_path / "w.wal"
        with open(path, "w", encoding="utf-8") as fh:
            fh.write('[1,2,3]\n{"no_op_key":1}\n{"op":"put","job":"a"}\n')
        wal = WriteAheadLog(path)
        assert [r["job"] for r in wal.replay()] == ["a"]
        assert wal.torn_lines == 2

    def test_records_written_counter_and_compact_reset(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "w.wal")
        for i in range(5):
            wal.append("put", job=f"job-{i:06d}", priority=0)
        assert wal.records_written == 5
        wal.compact({"queue": [["job-000004", 0]], "jobs": {}})
        assert wal.records_written == 0
        records = wal.replay()
        assert len(records) == 1 and records[0]["op"] == "snapshot"
        wal.close()

    def test_compact_is_atomic_single_line(self, tmp_path):
        path = tmp_path / "w.wal"
        wal = WriteAheadLog(path)
        wal.append("put", job="a", priority=0)
        wal.compact({"queue": [], "jobs": {"a": {"status": "done"}}})
        with open(path, encoding="utf-8") as fh:
            lines = [ln for ln in fh.read().splitlines() if ln.strip()]
        assert len(lines) == 1
        assert json.loads(lines[0])["op"] == "snapshot"
        assert not os.path.exists(str(path) + ".tmp")
        wal.close()

    def test_fsync_mode_appends_fine(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "w.wal", fsync=True)
        wal.append("put", job="a", priority=1)
        assert wal.replay() == [{"op": "put", "job": "a", "priority": 1}]
        wal.close()

    def test_append_after_compact_continues_log(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "w.wal")
        wal.append("put", job="a", priority=0)
        wal.compact({"queue": [["a", 0]], "jobs": {}})
        wal.append("take", job="a")
        ops = [r["op"] for r in wal.replay()]
        assert ops == ["snapshot", "take"]
        wal.close()


class TestDurableBroker:
    def test_queue_rebuilt_from_log(self, tmp_path):
        path = tmp_path / "w.wal"
        broker = DurableBroker(path)
        broker.put("job-000000", 1)
        broker.put("job-000001", 5)
        broker.put("job-000002", 1)
        assert broker.get_nowait() == "job-000001"  # dequeued → logged
        rebuilt = DurableBroker(path)
        assert rebuilt.entries() == [("job-000000", 1), ("job-000002", 1)]
        broker.close()

    def test_cancel_logged_and_replayed(self, tmp_path):
        path = tmp_path / "w.wal"
        broker = DurableBroker(path)
        broker.put("a", 0)
        broker.put("b", 0)
        assert broker.cancel("a")
        assert not broker.cancel("zzz")  # not queued: nothing logged
        rebuilt = DurableBroker(path)
        assert rebuilt.entries() == [("b", 0)]
        broker.close()

    def test_queue_full_logs_nothing(self, tmp_path):
        path = tmp_path / "w.wal"
        broker = DurableBroker(path, inner=InMemoryBroker(maxsize=1))
        broker.put("a", 0)
        with pytest.raises(QueueFullError):
            broker.put("b", 0)
        rebuilt = DurableBroker(path, inner=InMemoryBroker(maxsize=1))
        assert rebuilt.entries() == [("a", 0)]
        broker.close()

    def test_replayed_puts_bypass_restart_bound(self, tmp_path):
        # A smaller restart-time queue must not drop accepted jobs.
        path = tmp_path / "w.wal"
        broker = DurableBroker(path, inner=InMemoryBroker(maxsize=8))
        for i in range(4):
            broker.put(f"job-{i:06d}", 0)
        rebuilt = DurableBroker(path, inner=InMemoryBroker(maxsize=1))
        assert len(rebuilt.entries()) == 4
        broker.close()


# -- property tests ------------------------------------------------------

_JOB_IDS = st.integers(min_value=0, max_value=9).map(
    lambda i: f"job-{i:06d}")
_OPS = st.lists(
    st.one_of(
        st.tuples(st.just("put"), _JOB_IDS,
                  st.integers(min_value=-3, max_value=3)),
        st.tuples(st.just("take"), st.none(), st.none()),
        st.tuples(st.just("cancel"), _JOB_IDS, st.none()),
    ),
    max_size=40,
)


def _drive(broker, ops):
    """Apply an op sequence to a broker (duplicates and misses included)."""
    for action, job_id, priority in ops:
        if action == "put":
            broker.put(job_id, priority, force=True)
        elif action == "take":
            broker.get_nowait()
        else:
            broker.cancel(job_id)


class TestReplayProperties:
    @settings(max_examples=50, deadline=None)
    @given(ops=_OPS)
    def test_replay_is_idempotent(self, ops):
        # tempfile, not tmp_path: @given re-enters the test body many
        # times but pytest builds the fixture once per test.
        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "w.wal")
            live = DurableBroker(path)
            _drive(live, ops)
            replay_one = DurableBroker(path)
            replay_two = DurableBroker(path)
            assert replay_one.entries() == replay_two.entries()
            assert replay_one.entries() == live.entries()
            live.close()

    @settings(max_examples=50, deadline=None)
    @given(ops=_OPS, split=st.integers(min_value=0, max_value=40))
    def test_compaction_preserves_replay_equivalence(self, ops, split):
        split = min(split, len(ops))
        with tempfile.TemporaryDirectory() as tmp:
            # Uncompacted reference: all ops in one log.
            ref_path = os.path.join(tmp, "ref.wal")
            ref = DurableBroker(ref_path)
            _drive(ref, ops)
            # Compacted subject: same ops, a snapshot mid-stream.
            subj_path = os.path.join(tmp, "subj.wal")
            subj = DurableBroker(subj_path)
            _drive(subj, ops[:split])
            subj.wal.compact({"queue": [list(e) for e in subj.entries()],
                              "jobs": {}})
            _drive(subj, ops[split:])
            assert (DurableBroker(subj_path).entries()
                    == DurableBroker(ref_path).entries())
            ref.close()
            subj.close()


_SPEC = {"graph": "planted:4x20?p_in=0.4&p_out=0.01&seed=3"}


def _submit(job, priority=0):
    return {"op": "job_submit", "job": job, "spec": dict(_SPEC),
            "priority": priority}


class TestReplayJobs:
    def test_lifecycle_fold(self):
        records = [
            _submit("job-000000"),
            {"op": "job_dispatch", "job": "job-000000", "attempt": 1,
             "worker": 0},
            {"op": "job_finish", "job": "job-000000",
             "status": JobStatus.DONE, "meta": {"modularity": 0.5}},
            _submit("job-000001"),
            {"op": "job_dispatch", "job": "job-000001", "attempt": 1,
             "worker": 1},
        ]
        jobs = replay_jobs(records)
        assert jobs["job-000000"]["status"] == JobStatus.DONE
        assert jobs["job-000000"]["meta"] == {"modularity": 0.5}
        assert jobs["job-000001"]["status"] == JobStatus.RUNNING
        assert jobs["job-000001"]["attempts"] == 1

    def test_pure_and_idempotent(self):
        records = [
            _submit("job-000000"),
            {"op": "job_dispatch", "job": "job-000000", "attempt": 1},
            {"op": "job_requeue", "job": "job-000000"},
        ]
        first = replay_jobs(records)
        second = replay_jobs(records)
        assert first == second
        assert first["job-000000"]["status"] == JobStatus.PENDING

    def test_finish_cannot_override_cancel(self):
        # A worker's completion racing a cancel must not resurrect the
        # job on replay: first terminal state wins.
        records = [
            _submit("job-000000"),
            {"op": "job_dispatch", "job": "job-000000", "attempt": 1},
            {"op": "job_cancel", "job": "job-000000"},
            {"op": "job_finish", "job": "job-000000",
             "status": JobStatus.DONE, "meta": {}},
        ]
        assert (replay_jobs(records)["job-000000"]["status"]
                == JobStatus.CANCELLED)

    def test_dispatch_without_submit_dropped(self):
        # The submit fell in a torn tail: no spec, nothing to rerun.
        records = [{"op": "job_dispatch", "job": "job-000000",
                    "attempt": 1}]
        assert replay_jobs(records) == {}

    def test_snapshot_seeds_state(self):
        records = [
            {"op": "snapshot", "queue": [],
             "jobs": {"job-000000": {"spec": dict(_SPEC),
                                     "status": JobStatus.RUNNING,
                                     "attempts": 2, "error": None,
                                     "meta": None, "priority": 0}}},
            {"op": "job_requeue", "job": "job-000000"},
        ]
        jobs = replay_jobs(records)
        assert jobs["job-000000"]["status"] == JobStatus.PENDING
        assert jobs["job-000000"]["attempts"] == 2

    @settings(max_examples=50, deadline=None)
    @given(data=st.data())
    def test_fold_never_leaves_terminal(self, data):
        # Once DONE/FAILED/CANCELLED, later dispatch/requeue records
        # (raced out by the crash) must not revive the job.
        terminal_op = data.draw(st.sampled_from([
            {"op": "job_finish", "job": "j", "status": JobStatus.DONE,
             "meta": {}},
            {"op": "job_finish", "job": "j", "status": JobStatus.FAILED,
             "error": "x"},
            {"op": "job_cancel", "job": "j"},
        ]))
        tail = data.draw(st.lists(st.sampled_from([
            {"op": "job_dispatch", "job": "j", "attempt": 9},
            {"op": "job_requeue", "job": "j"},
            {"op": "job_finish", "job": "j", "status": JobStatus.DONE,
             "meta": {"late": True}},
            {"op": "job_cancel", "job": "j"},
        ]), max_size=6))
        records = [_submit("j"), terminal_op, *tail]
        status = replay_jobs(records)["j"]["status"]
        if terminal_op["op"] == "job_cancel":
            assert status == JobStatus.CANCELLED
        else:
            assert status == terminal_op["status"]


class TestFsyncDurability:
    """fsync=True also fsyncs the directory on create and compaction
    rename — functionally a no-op, so these pin the code paths run."""

    def test_append_and_compact_roundtrip_with_fsync(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "sub" / "serve.wal", fsync=True)
        wal.append("put", job="a", priority=0)
        wal.compact({"queue": [["a", 0]], "jobs": {}})
        wal.append("take", job="a")
        records = wal.replay()
        assert [r["op"] for r in records] == ["snapshot", "take"]
        wal.close()


class TestIdempotencyKeyReplay:
    def test_job_submit_carries_the_key_through_replay(self):
        records = [
            {"op": "job_submit", "job": "job-000000",
             "spec": {"graph": "planted:3x12"}, "priority": 0,
             "idem": "k1"},
        ]
        assert replay_jobs(records)["job-000000"]["idem"] == "k1"

    def test_snapshot_carries_the_key_through_replay(self):
        records = [
            {"op": "snapshot", "queue": [],
             "jobs": {"job-000000": {
                 "spec": {"graph": "planted:3x12"}, "status": "pending",
                 "attempts": 0, "error": None, "meta": None,
                 "priority": 0, "idem": "k1"}}},
        ]
        assert replay_jobs(records)["job-000000"]["idem"] == "k1"
