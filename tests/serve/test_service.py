"""JobService integration: at-least-once crash recovery, backpressure,
cancellation, autoscaling."""

import os
import signal
import time

import numpy as np
import pytest

from repro.core.driver import louvain
from repro.serve import AutoscalePolicy, InMemoryBroker, JobService, JobStatus
from repro.serve.job import JobSpec, checkpoint_path
from repro.utils.errors import QueueFullError

#: A graph big enough that baseline Louvain runs several phases, so the
#: phase-boundary checkpoint leaves real work for the resumed attempt.
GRAPH_REF = "planted:10x40?p_in=0.3&p_out=0.005&seed=11"


def reference_graph():
    from repro.serve.job import resolve_graph_ref

    return resolve_graph_ref(GRAPH_REF)


def wait_terminal(service, job_id, timeout=90.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        record = service.status(job_id)
        if record["status"] in JobStatus.TERMINAL:
            return record
        time.sleep(0.02)
    raise AssertionError(
        f"job {job_id} still {record['status']} after {timeout}s"
    )


@pytest.fixture
def service(tmp_path):
    svc = JobService(str(tmp_path / "spool"))
    svc.start()
    yield svc
    svc.stop()


class TestExecution:
    def test_job_runs_to_done_and_matches_direct_run(self, service):
        job_id = service.submit({"graph": GRAPH_REF})
        record = wait_terminal(service, job_id)
        assert record["status"] == JobStatus.DONE
        assert record["attempts"] == 1
        result = service.result(job_id)
        direct = louvain(reference_graph())
        np.testing.assert_array_equal(
            np.asarray(result["communities"]), direct.communities
        )
        assert result["meta"]["modularity"] == direct.modularity
        assert result["meta"]["resumed_from_phase"] is None

    def test_worker_crash_resumes_from_checkpoint_bitwise(self, service):
        """The tentpole guarantee: a worker dying mid-job is requeued and
        the retry resumes from the phase-boundary checkpoint, producing
        the exact assignment an uninterrupted run produces.

        The injected fault raises (uncaught) inside the worker at phase 1
        sweep 0 — after phase 0's checkpoint exists — killing the
        process for real; the resumed attempt never re-injects it.
        """
        job_id = service.submit({
            "graph": GRAPH_REF,
            "config": {"fault_plan": "raise:phase=1,sweep=0"},
        })
        record = wait_terminal(service, job_id)
        assert record["status"] == JobStatus.DONE
        assert record["attempts"] == 2  # one crash, one resume
        meta = record["meta"]
        assert meta["resumed_from_phase"] is not None
        assert meta["resumed_from_phase"] >= 1
        result = service.result(job_id)
        direct = louvain(reference_graph())
        np.testing.assert_array_equal(
            np.asarray(result["communities"]), direct.communities
        )
        assert meta["modularity"] == direct.modularity
        # The checkpoint is cleaned up once the job is done.
        assert not os.path.exists(checkpoint_path(service.spool, job_id))

    def test_sigkill_mid_phase_resumes_from_checkpoint(self, service):
        """A real SIGKILL (not an injected raise) mid-run: the job still
        completes bitwise-identically via checkpoint resume.

        The config stretches the run (reference kernel, one iteration
        per phase => a checkpoint after every phase) so the poller can
        land the kill between the first checkpoint and completion; if a
        fast machine finishes first anyway, resubmit and try again.
        """
        config = {"kernel": "reference", "max_iterations_per_phase": 1}
        graph_ref = "planted:20x100?p_in=0.2&p_out=0.002&seed=7"
        killed_record = None
        for _attempt in range(5):
            job_id = service.submit({"graph": graph_ref, "config": config})
            deadline = time.monotonic() + 90.0
            while time.monotonic() < deadline:
                record = service.status(job_id)
                if record["status"] in JobStatus.TERMINAL:
                    break
                worker_id = record["worker_id"]
                if (worker_id is not None
                        and os.path.exists(
                            checkpoint_path(service.spool, job_id))):
                    slot = service.pool._slots.get(worker_id)
                    if slot is not None:
                        os.kill(slot.process.pid, signal.SIGKILL)
                        break
                time.sleep(0.001)
            record = wait_terminal(service, job_id)
            assert record["status"] == JobStatus.DONE
            if record["attempts"] >= 2:
                killed_record = record
                break  # the kill landed mid-run
        assert killed_record is not None, \
            "SIGKILL never landed before completion in 5 tries"
        assert killed_record["meta"]["resumed_from_phase"] is not None
        from repro.serve.job import resolve_graph_ref

        direct = louvain(resolve_graph_ref(graph_ref), **config)
        result = service.result(killed_record["job_id"])
        np.testing.assert_array_equal(
            np.asarray(result["communities"]), direct.communities
        )
        assert result["meta"]["modularity"] == direct.modularity

    def test_permanent_error_fails_without_retry(self, service):
        job_id = service.submit({"graph": "dataset:NO_SUCH_DATASET"})
        record = wait_terminal(service, job_id)
        assert record["status"] == JobStatus.FAILED
        assert record["attempts"] == 1  # ValidationError is not retried
        assert "NO_SUCH_DATASET" in record["error"]
        assert service.result(job_id) is None

    def test_priority_orders_execution(self, tmp_path):
        # Submit before starting the control loop so ordering is decided
        # purely by the broker, then verify completion order via timing.
        svc = JobService(str(tmp_path / "spool"),
                         policy=AutoscalePolicy(max_workers=1))
        low = svc.submit({"graph": "planted:3x12?seed=1", "priority": 0})
        high = svc.submit({"graph": "planted:3x12?seed=2", "priority": 5})
        svc.start()
        try:
            wait_terminal(svc, low)
            wait_terminal(svc, high)
            assert (svc.status(high)["started_at"]
                    < svc.status(low)["started_at"])
        finally:
            svc.stop()


class TestBackpressureAndCancel:
    def test_queue_full_submit_raises_not_hangs(self, tmp_path):
        # No control loop running: nothing drains the queue, so the
        # bound is hit deterministically — and the submit returns
        # immediately with backpressure instead of blocking.
        svc = JobService(str(tmp_path / "spool"),
                         broker=InMemoryBroker(maxsize=2))
        svc.submit({"graph": "planted:3x12"})
        svc.submit({"graph": "planted:3x12"})
        start = time.monotonic()
        with pytest.raises(QueueFullError):
            svc.submit({"graph": "planted:3x12"})
        assert time.monotonic() - start < 5.0
        svc.stop()

    def test_cancel_pending(self, tmp_path):
        svc = JobService(str(tmp_path / "spool"))
        job_id = svc.submit({"graph": GRAPH_REF})
        assert svc.cancel(job_id) is True
        record = svc.status(job_id)
        assert record["status"] == JobStatus.CANCELLED
        assert svc.broker.depth() == 0
        assert svc.cancel(job_id) is False  # terminal states are sticky
        svc.stop()

    def test_cancel_running_kills_the_worker(self, service):
        job_id = service.submit({
            "graph": "planted:20x100?p_in=0.2&p_out=0.002&seed=7",
            "config": {"kernel": "reference",
                       "max_iterations_per_phase": 1},
        })
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            if service.status(job_id)["status"] == JobStatus.RUNNING:
                break
            time.sleep(0.005)
        assert service.cancel(job_id) is True
        record = wait_terminal(service, job_id)
        assert record["status"] == JobStatus.CANCELLED
        # The cancelled job is never requeued; the pool recovers and
        # serves later jobs.
        follow_up = service.submit({"graph": "planted:3x12"})
        assert wait_terminal(service, follow_up)["status"] == JobStatus.DONE

    def test_unknown_job(self, service):
        assert service.status("job-999999") is None
        assert service.cancel("job-999999") is False
        assert service.result("job-999999") is None


class TestCancellationRaces:
    """Deterministic reenactments of the cancel races: each test drives
    the control-loop steps by hand so the interleaving is exact, not a
    matter of scheduler luck."""

    def test_cancel_racing_dispatch_skips_the_job(self, tmp_path):
        # The control loop takes the id off the queue, then the cancel
        # lands before _dispatch marks it RUNNING: the status guard
        # must drop the dispatch, never run a cancelled job.
        svc = JobService(str(tmp_path / "spool"))
        job_id = svc.submit({"graph": "planted:3x12"})
        assert svc.broker.get_nowait() == job_id  # the dispatch's take
        assert svc.cancel(job_id) is True         # cancel wins the race
        svc.broker.put(job_id, 0, force=True)     # the taken id, back
        svc.pool.spawn()
        svc._dispatch()
        record = svc.status(job_id)
        assert record["status"] == JobStatus.CANCELLED
        assert record["attempts"] == 0
        assert svc.pool.busy_count() == 0
        svc.stop()

    def test_cancel_racing_completion_keeps_terminal_status(self, tmp_path):
        # The worker's completion message is in flight when the cancel
        # lands: first terminal state wins, in the records *and* in the
        # WAL's replay.
        svc = JobService(str(tmp_path / "spool"), wal=True)
        job_id = svc.submit({"graph": GRAPH_REF})
        with svc._lock:
            record = svc._records[job_id]
            record.status = JobStatus.RUNNING
            record.worker_id = 7
            record.attempts = 1
        assert svc.cancel(job_id) is True
        svc._on_done(7, job_id, "ok", {"modularity": 0.5})
        assert svc.status(job_id)["status"] == JobStatus.CANCELLED
        assert svc.result(job_id) is None
        from repro.serve.wal import replay_jobs

        states = replay_jobs(svc.wal.replay())
        assert states[job_id]["status"] == JobStatus.CANCELLED
        svc.stop()

    def test_double_cancel_single_effect(self, tmp_path):
        svc = JobService(str(tmp_path / "spool"), wal=True)
        job_id = svc.submit({"graph": "planted:3x12"})
        assert svc.cancel(job_id) is True
        assert svc.cancel(job_id) is False
        assert svc.tracer.metrics.counters["serve.jobs_cancelled"] == 1
        cancels = [r for r in svc.wal.replay()
                   if r.get("op") == "job_cancel"]
        assert len(cancels) == 1  # the second cancel logged nothing
        svc.stop()

    def test_kill_guard_spares_a_worker_on_another_job(self, tmp_path):
        # By the time the control loop services a kill request the
        # worker may have finished the cancelled job and moved on:
        # expect_job makes the kill refuse instead of murdering the
        # innocent successor's attempt.
        svc = JobService(str(tmp_path / "spool"))
        worker_id = svc.pool.spawn()
        assert svc.pool.kill(worker_id, expect_job="job-000000") is False
        svc.stop()


class TestAutoscale:
    def test_policy_desired(self):
        policy = AutoscalePolicy(min_workers=1, max_workers=4,
                                 backlog_per_worker=2)
        assert policy.desired(0) == 1
        assert policy.desired(1) == 1
        assert policy.desired(4) == 2
        assert policy.desired(100) == 4

    def test_policy_validation(self):
        from repro.utils.errors import ValidationError

        with pytest.raises(ValidationError):
            AutoscalePolicy(min_workers=3, max_workers=2)
        with pytest.raises(ValidationError):
            AutoscalePolicy(backlog_per_worker=0)

    def test_pool_grows_with_load_and_shrinks_when_idle(self, tmp_path):
        svc = JobService(
            str(tmp_path / "spool"),
            policy=AutoscalePolicy(min_workers=1, max_workers=3,
                                   idle_grace_s=0.1),
        )
        svc.start()
        try:
            jobs = [svc.submit({"graph": f"planted:4x20?seed={i}"})
                    for i in range(6)]
            peak = 0
            for job_id in jobs:
                wait_terminal(svc, job_id)
                peak = max(peak, svc.pool.num_workers())
            assert peak >= 2  # scaled beyond the minimum under load
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                if svc.pool.num_workers() <= 1:
                    break
                time.sleep(0.02)
            assert svc.pool.num_workers() <= 1  # idle grace retired them
        finally:
            svc.stop()


class TestMetrics:
    def test_job_lifecycle_metrics_published(self, service):
        job_id = service.submit({
            "graph": GRAPH_REF,
            "config": {"fault_plan": "raise:phase=1,sweep=0"},
        })
        wait_terminal(service, job_id)
        # Let the control loop publish its end-of-tick gauges.
        time.sleep(0.2)
        snapshot = service.tracer.metrics.snapshot()
        counters = snapshot["counters"]
        assert counters["serve.jobs_submitted"] == 1
        assert counters["serve.jobs_completed"] == 1
        assert counters["serve.jobs_retried"] == 1
        assert counters["serve.worker_deaths"] == 1
        gauges = snapshot["gauges"]
        assert "serve.queue_depth" in gauges
        assert "serve.workers" in gauges
        assert any(name.startswith("serve.worker.")
                   and name.endswith(".last_heartbeat")
                   for name in gauges)
        hist = snapshot["histograms"]["serve.job_seconds"]
        assert hist["count"] == 1


class TestSpecValidationAtSubmit:
    def test_bad_config_field_rejected_up_front(self, tmp_path):
        from repro.utils.errors import ValidationError

        svc = JobService(str(tmp_path / "spool"))
        with pytest.raises(ValidationError):
            svc.submit({"graph": GRAPH_REF,
                        "config": {"kernel": "warp-drive"}})
        with pytest.raises(ValidationError):
            svc.submit({"graph": GRAPH_REF, "config": {"no_such_field": 1}})
        assert svc.broker.depth() == 0  # nothing half-accepted
        svc.stop()

    def test_spec_instance_accepted(self, service):
        job_id = service.submit(JobSpec(graph="planted:3x12"))
        assert wait_terminal(service, job_id)["status"] == JobStatus.DONE


class TestCompactionVsSubmitRace:
    """Regression: _compact() must hold the record lock across snapshot
    *and* log rewrite, or a submit landing in between is erased."""

    def test_submit_during_compaction_survives_replay(self, tmp_path):
        import threading

        from repro.serve.wal import replay_jobs

        svc = JobService(str(tmp_path / "spool"), wal=True)
        svc.submit({"graph": "planted:3x12"})
        original_compact = svc.wal.compact
        window_open = threading.Event()

        def slow_compact(snapshot):
            # Hold the rewrite open so a concurrent submit gets a real
            # chance to append into the (formerly unlocked) window.
            window_open.set()
            time.sleep(0.3)
            original_compact(snapshot)

        svc.wal.compact = slow_compact
        racer_ids = []

        def racer():
            window_open.wait(10.0)
            racer_ids.append(svc.submit({"graph": "planted:3x12"}))

        thread = threading.Thread(target=racer)
        thread.start()
        svc._compact()
        thread.join(30.0)
        svc.wal.compact = original_compact
        assert racer_ids, "racing submit never completed"
        # Before any healing re-compaction: the racer's job must already
        # have a durable trace, both as a record and in the queue.
        states = replay_jobs(svc.wal.replay())
        assert racer_ids[0] in states
        assert states[racer_ids[0]]["status"] == JobStatus.PENDING
        puts = [r["job"] for r in svc.wal.replay() if r.get("op") == "put"]
        assert racer_ids[0] in puts
        svc.stop()


class TestIdempotentSubmit:
    def test_same_key_returns_same_job(self, tmp_path):
        svc = JobService(str(tmp_path / "spool"), wal=True)
        first = svc.submit({"graph": "planted:3x12"}, idempotency_key="k1")
        second = svc.submit({"graph": "planted:3x12"}, idempotency_key="k1")
        assert first == second
        assert len(svc.jobs()) == 1
        assert svc.broker.depth() == 1
        assert svc.tracer.metrics.counters["serve.jobs_deduped"] == 1
        svc.stop()

    def test_distinct_keys_distinct_jobs(self, tmp_path):
        svc = JobService(str(tmp_path / "spool"))
        first = svc.submit({"graph": "planted:3x12"}, idempotency_key="k1")
        second = svc.submit({"graph": "planted:3x12"}, idempotency_key="k2")
        assert first != second
        assert len(svc.jobs()) == 2
        svc.stop()

    def test_key_survives_restart_and_compaction(self, tmp_path):
        spool = str(tmp_path / "spool")
        svc = JobService(spool, wal=True)
        first = svc.submit({"graph": "planted:3x12"}, idempotency_key="k1")
        svc.stop()  # compacts: the key must ride the snapshot too
        restarted = JobService(spool, wal=True)
        second = restarted.submit({"graph": "planted:3x12"},
                                  idempotency_key="k1")
        assert first == second
        assert len(restarted.jobs()) == 1
        restarted.stop()


class _StubProcess:
    """Process stand-in for pool kill-escalation unit tests."""

    def __init__(self):
        self.pid = 12345
        self.exitcode = None
        self.terminated = False
        self.killed = False

    def terminate(self):
        self.terminated = True

    def kill(self):
        self.killed = True


class TestKillEscalation:
    """kill() is cooperative (SIGTERM at a sweep boundary); a worker that
    ignores it must still be forcibly killable after the grace period."""

    def _pool_with_stub(self, tmp_path):
        from repro.serve.pool import WorkerPool, _WorkerSlot
        from repro.utils.timing import monotonic

        pool = WorkerPool(str(tmp_path))
        process = _StubProcess()
        slot = _WorkerSlot(0, process, None)
        slot.job_id = "job-000000"
        pool._slots[0] = slot
        return pool, slot, process, monotonic

    def test_kill_arms_the_escalation_deadline(self, tmp_path):
        pool, slot, process, _ = self._pool_with_stub(tmp_path)
        assert pool.kill(0, expect_job="job-000000") is True
        assert process.terminated
        assert slot.kill_job == "job-000000"
        assert slot.kill_deadline is not None
        # Grace period not yet over: no SIGKILL.
        assert pool.escalate_kills() == 0
        assert not process.killed

    def test_escalates_to_sigkill_after_grace(self, tmp_path):
        pool, slot, process, monotonic = self._pool_with_stub(tmp_path)
        assert pool.kill(0, expect_job="job-000000") is True
        slot.kill_deadline = monotonic() - 1.0  # grace period elapsed
        assert pool.escalate_kills() == 1
        assert process.killed
        assert slot.kill_deadline is None and slot.kill_job is None

    def test_spares_worker_that_moved_on(self, tmp_path):
        pool, slot, process, monotonic = self._pool_with_stub(tmp_path)
        assert pool.kill(0, expect_job="job-000000") is True
        slot.job_id = "job-000001"  # finished the doomed job, took another
        slot.kill_deadline = monotonic() - 1.0
        assert pool.escalate_kills() == 0
        assert not process.killed
        assert slot.kill_deadline is None  # stale request discarded

    def test_drain_done_clears_pending_kill(self, tmp_path):
        pool, slot, process, _ = self._pool_with_stub(tmp_path)
        assert pool.kill(0, expect_job="job-000000") is True
        pool._done_q.put(("done", 0, "job-000000", "drained", {}))
        deadline = time.monotonic() + 5.0
        drained = []
        while time.monotonic() < deadline and not drained:
            drained = pool.drain_done()
            time.sleep(0.01)
        assert drained == [(0, "job-000000", "drained", {})]
        assert slot.kill_job is None and slot.kill_deadline is None
        assert not process.killed
