"""Service-level durability: restart recovery, drain, spool integrity.

The tentpole scenarios of the durable-serve work: SIGKILL the *service*
process mid-job and restart over the same spool + WAL — no accepted job
is lost, the retry resumes from the phase-boundary checkpoint, and the
final assignment is bitwise-identical to an uninterrupted run.  Corrupt
spool artifacts (torn or bit-flipped) are detected by content digest,
counted (``serve.spool_corrupt``) and recomputed rather than served.
"""

import os
import signal
import subprocess
import sys
import time

import numpy as np
import pytest

import repro
from repro.core.driver import louvain
from repro.serve import AutoscalePolicy, JobService, JobStatus
from repro.serve.job import checkpoint_path, resolve_graph_ref, result_path
from repro.serve.service import SERVE_FAULTS_ENV

FAST_REF = "planted:4x20?p_in=0.4&p_out=0.01&seed=3"
SLOW_REF = "planted:20x100?p_in=0.2&p_out=0.002&seed=7"
SLOW_CONFIG = {"kernel": "reference", "max_iterations_per_phase": 1}

_SRC = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))


def _child_env(**extra):
    env = dict(os.environ)
    env["PYTHONPATH"] = _SRC + os.pathsep + env.get("PYTHONPATH", "")
    env.update(extra)
    return env


def one_worker():
    return AutoscalePolicy(min_workers=1, max_workers=1, idle_grace_s=60.0)


def counters(service):
    return service.tracer.metrics.counters


def wait_terminal(service, job_id, timeout=120.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        record = service.status(job_id)
        if record["status"] in JobStatus.TERMINAL:
            return record
        time.sleep(0.02)
    raise AssertionError(
        f"job {job_id} still {record['status']} after {timeout}s"
    )


def wait_result(service, job_id, timeout=90.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        result = service.result(job_id)
        if result is not None:
            return result
        time.sleep(0.02)
    raise AssertionError(f"no result for {job_id} after {timeout}s")


#: A WAL'd single-worker service that submits one slow job and parks —
#: the parent decides when (and how hard) it dies.
_CHILD_SERVICE = """
import sys, time

from repro.serve import AutoscalePolicy, JobService

svc = JobService(sys.argv[1], wal=True,
                 policy=AutoscalePolicy(min_workers=1, max_workers=1))
svc.start()
job_id = svc.submit({"graph": %r, "config": %r})
print(job_id, flush=True)
time.sleep(600)
""" % (SLOW_REF, SLOW_CONFIG)

#: A service whose own fault injector SIGKILLs it at a service site.
_CHILD_FAULTED = """
import sys

from repro.serve import JobService

svc = JobService(sys.argv[1], wal=True)
svc.submit({"graph": %r})
print("survived the fault site", flush=True)
""" % (FAST_REF,)


class TestServiceCrashRecovery:
    def _submit_and_kill_mid_job(self, spool):
        """Run a WAL'd service in its own process group and SIGKILL the
        whole group (service *and* worker) once the job's first
        phase-boundary checkpoint exists.  Returns the job id, or None
        when the job finished before the kill could land mid-run."""
        proc = subprocess.Popen(
            [sys.executable, "-c", _CHILD_SERVICE, spool],
            stdout=subprocess.PIPE, text=True, env=_child_env(),
            start_new_session=True,
        )
        landed = False
        try:
            job_id = proc.stdout.readline().strip()
            assert job_id.startswith("job-"), f"child failed: {job_id!r}"
            deadline = time.monotonic() + 90.0
            ckpt = checkpoint_path(spool, job_id)
            while time.monotonic() < deadline:
                if os.path.exists(ckpt):
                    landed = True
                    break
                if os.path.exists(result_path(spool, job_id)):
                    break  # finished before any checkpoint was seen
                time.sleep(0.001)
        finally:
            os.killpg(os.getpgid(proc.pid), signal.SIGKILL)
            proc.wait(timeout=30)
            proc.stdout.close()
        return job_id if landed else None

    def test_sigkill_service_mid_job_recovers_bitwise(self, tmp_path):
        """The acceptance scenario: SIGKILL service + worker mid-job,
        restart over the same spool, and the job completes on attempt
        >= 2 with the exact assignment an uninterrupted run produces."""
        record = result = None
        for attempt in range(5):
            spool = str(tmp_path / f"spool{attempt}")
            job_id = self._submit_and_kill_mid_job(spool)
            if job_id is None:
                continue  # too fast: the job won; fresh spool, try again
            second = JobService(spool, wal=True, policy=one_worker())
            try:
                rec = second.status(job_id)
                assert rec is not None, "accepted job lost across restart"
                if rec["status"] == JobStatus.DONE:
                    continue  # kill landed after completion; try again
                assert rec["status"] == JobStatus.PENDING
                assert counters(second).get("serve.jobs_recovered", 0) >= 1
                second.start()
                record = wait_terminal(second, job_id)
                assert record["status"] == JobStatus.DONE
                assert record["attempts"] >= 2
                assert record["meta"]["resumed_from_phase"] is not None
                result = second.result(job_id)
            finally:
                second.stop()
            break
        assert record is not None, \
            "SIGKILL never landed mid-job in 5 tries"
        direct = louvain(resolve_graph_ref(SLOW_REF), **SLOW_CONFIG)
        np.testing.assert_array_equal(
            np.asarray(result["communities"]), direct.communities
        )
        assert result["meta"]["modularity"] == direct.modularity

    def test_service_crash_fault_site_then_restart(self, tmp_path):
        """``service_crash:site=serve.submit`` (armed via the env var)
        SIGKILLs the service right after the submit's WAL append — the
        restart still owns the job and completes it."""
        spool = str(tmp_path / "spool")
        proc = subprocess.Popen(
            [sys.executable, "-c", _CHILD_FAULTED, spool],
            stdout=subprocess.PIPE, text=True,
            env=_child_env(**{
                SERVE_FAULTS_ENV: "service_crash:site=serve.submit",
            }),
        )
        out, _ = proc.communicate(timeout=120)
        assert proc.returncode == -signal.SIGKILL
        assert "survived" not in out
        second = JobService(spool, wal=True, policy=one_worker())
        try:
            rec = second.status("job-000000")
            assert rec is not None and rec["status"] == JobStatus.PENDING
            second.start()
            assert (wait_terminal(second, "job-000000")["status"]
                    == JobStatus.DONE)
            result = second.result("job-000000")
        finally:
            second.stop()
        direct = louvain(resolve_graph_ref(FAST_REF))
        np.testing.assert_array_equal(
            np.asarray(result["communities"]), direct.communities
        )


class TestRestartStateCarryover:
    def _abandon(self, svc):
        """Simulate a crash: release OS resources without the graceful
        ``stop()`` path (no compaction, no final snapshot)."""
        svc.pool.close()
        svc.wal.close()

    def test_unstarted_submits_survive_crash(self, tmp_path):
        spool = str(tmp_path / "spool")
        first = JobService(spool, wal=True)
        a = first.submit({"graph": FAST_REF})
        b = first.submit({"graph": FAST_REF, "priority": 3})
        self._abandon(first)
        second = JobService(spool, wal=True, policy=one_worker())
        try:
            assert second.status(a)["status"] == JobStatus.PENDING
            assert second.status(b)["status"] == JobStatus.PENDING
            assert second.broker.depth() == 2
            second.start()
            for job_id in (a, b):
                assert (wait_terminal(second, job_id)["status"]
                        == JobStatus.DONE)
            result = second.result(a)
        finally:
            second.stop()
        direct = louvain(resolve_graph_ref(FAST_REF))
        np.testing.assert_array_equal(
            np.asarray(result["communities"]), direct.communities
        )

    def test_done_job_survives_restart_without_rerun(self, tmp_path):
        spool = str(tmp_path / "spool")
        first = JobService(spool, wal=True, policy=one_worker())
        first.start()
        job_id = first.submit({"graph": FAST_REF})
        wait_terminal(first, job_id)
        first.stop()  # graceful: the snapshot-compaction path
        second = JobService(spool, wal=True)
        try:
            rec = second.status(job_id)
            assert rec["status"] == JobStatus.DONE
            assert rec["attempts"] == 1  # not re-run
            assert counters(second).get("serve.jobs_recovered", 0) == 0
            assert second.result(job_id) is not None
        finally:
            second.stop()

    def test_done_with_missing_result_requeued(self, tmp_path):
        spool = str(tmp_path / "spool")
        first = JobService(spool, wal=True, policy=one_worker())
        first.start()
        job_id = first.submit({"graph": FAST_REF})
        wait_terminal(first, job_id)
        first.stop()
        os.remove(result_path(spool, job_id))
        second = JobService(spool, wal=True, policy=one_worker())
        try:
            assert second.status(job_id)["status"] == JobStatus.PENDING
            assert counters(second).get("serve.jobs_recovered", 0) >= 1
            second.start()
            assert (wait_terminal(second, job_id)["status"]
                    == JobStatus.DONE)
            result = second.result(job_id)
        finally:
            second.stop()
        direct = louvain(resolve_graph_ref(FAST_REF))
        np.testing.assert_array_equal(
            np.asarray(result["communities"]), direct.communities
        )

    def test_torn_wal_tail_tolerated_and_counted(self, tmp_path):
        spool = str(tmp_path / "spool")
        first = JobService(spool, wal=True)
        job_id = first.submit({"graph": FAST_REF})
        self._abandon(first)
        # A crash mid-append leaves a truncated trailing line.
        with open(os.path.join(spool, "serve.wal"), "a",
                  encoding="utf-8") as fh:
            fh.write('{"op":"job_submit","job":"job-9')
        second = JobService(spool, wal=True)
        try:
            assert counters(second).get("serve.wal_torn_lines", 0) >= 1
            assert second.status(job_id)["status"] == JobStatus.PENDING
        finally:
            second.stop()


class TestDrain:
    def test_drain_checkpoints_then_restart_resumes_bitwise(self, tmp_path):
        """SIGTERM-style drain: the running job checkpoints at a sweep
        boundary (no result is written), and a restart over the same
        spool + WAL resumes it to the uninterrupted run's assignment."""
        record = result = None
        for attempt in range(5):
            spool = str(tmp_path / f"spool{attempt}")
            svc = JobService(spool, wal=True, policy=one_worker())
            svc.start()
            job_id = svc.submit({"graph": SLOW_REF,
                                 "config": dict(SLOW_CONFIG)})
            # Drain only once the first checkpoint exists, so the
            # worker's signal-armed budget scope is certainly live.
            deadline = time.monotonic() + 60.0
            while time.monotonic() < deadline:
                if svc.status(job_id)["status"] in JobStatus.TERMINAL:
                    break
                if os.path.exists(checkpoint_path(spool, job_id)):
                    break
                time.sleep(0.001)
            drained = svc.drain(timeout=60.0)
            rec = svc.status(job_id)
            if rec["status"] == JobStatus.DONE:
                continue  # finished before the drain; fresh spool, retry
            assert drained is True
            assert rec["status"] == JobStatus.PENDING
            assert counters(svc).get("serve.jobs_drained", 0) >= 1
            assert os.path.exists(checkpoint_path(spool, job_id))
            assert not os.path.exists(result_path(spool, job_id))
            second = JobService(spool, wal=True, policy=one_worker())
            try:
                second.start()
                record = wait_terminal(second, job_id)
                assert record["status"] == JobStatus.DONE
                assert record["attempts"] >= 2
                assert record["meta"]["resumed_from_phase"] is not None
                result = second.result(job_id)
            finally:
                second.stop()
            break
        assert record is not None, \
            "drain never caught the job mid-run in 5 tries"
        direct = louvain(resolve_graph_ref(SLOW_REF), **SLOW_CONFIG)
        np.testing.assert_array_equal(
            np.asarray(result["communities"]), direct.communities
        )
        assert result["meta"]["modularity"] == direct.modularity


class TestSpoolIntegrity:
    def test_garbage_checkpoint_recomputed_not_served(self, tmp_path):
        spool = str(tmp_path / "spool")
        os.makedirs(spool)
        # Job ids are deterministic — the first submit is job-000000 —
        # so the corrupt artifact can be planted before the service
        # exists, guaranteeing the worker trips over it on attempt 1.
        with open(checkpoint_path(spool, "job-000000"), "wb") as fh:
            fh.write(b"this is not a checkpoint archive")
        svc = JobService(spool, policy=one_worker())
        svc.start()
        try:
            job_id = svc.submit({"graph": FAST_REF})
            assert job_id == "job-000000"
            record = wait_terminal(svc, job_id)
            assert record["status"] == JobStatus.DONE
            assert record["meta"].get("recovered_corrupt_artifact") is True
            assert counters(svc).get("serve.spool_corrupt", 0) >= 1
            result = svc.result(job_id)
        finally:
            svc.stop()
        direct = louvain(resolve_graph_ref(FAST_REF))
        np.testing.assert_array_equal(
            np.asarray(result["communities"]), direct.communities
        )
        assert result["meta"]["modularity"] == direct.modularity

    @pytest.mark.parametrize("damage", ["bitflip", "truncate"])
    def test_corrupt_result_demoted_and_recomputed(self, tmp_path, damage):
        """A bit-flipped or truncated result file trips the content
        digest: the read returns None (never a wrong answer), the event
        is counted, and the job recomputes to the correct result."""
        spool = str(tmp_path / "spool")
        svc = JobService(spool, wal=True, policy=one_worker())
        svc.start()
        try:
            job_id = svc.submit({"graph": FAST_REF})
            wait_terminal(svc, job_id)
            path = result_path(spool, job_id)
            with open(path, "rb") as fh:
                raw = bytearray(fh.read())
            if damage == "bitflip":
                raw[len(raw) // 2] ^= 0xFF
            else:
                raw = raw[:64]
            with open(path, "wb") as fh:
                fh.write(bytes(raw))
            assert svc.result(job_id) is None  # detected, demoted
            assert counters(svc).get("serve.spool_corrupt", 0) >= 1
            result = wait_result(svc, job_id)
        finally:
            svc.stop()
        direct = louvain(resolve_graph_ref(FAST_REF))
        np.testing.assert_array_equal(
            np.asarray(result["communities"]), direct.communities
        )
        assert result["meta"]["modularity"] == direct.modularity
