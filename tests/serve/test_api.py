"""The stdlib HTTP API: submit/status/result/cancel + metrics routes."""

import time

import numpy as np
import pytest

from repro.core.driver import louvain
from repro.serve import (
    AutoscalePolicy,
    InMemoryBroker,
    JobStatus,
    ServeAPIError,
    ServeClient,
    serve_api,
)
from repro.serve.job import resolve_graph_ref

FAST_REF = "planted:4x20?p_in=0.4&p_out=0.01&seed=3"
SLOW_SPEC = {
    "graph": "planted:20x100?p_in=0.2&p_out=0.002&seed=7",
    "config": {"kernel": "reference", "max_iterations_per_phase": 1},
}


@pytest.fixture
def server(tmp_path):
    srv = serve_api(
        str(tmp_path / "spool"), port=0,
        broker=InMemoryBroker(maxsize=2),
        policy=AutoscalePolicy(min_workers=1, max_workers=1,
                               idle_grace_s=60.0),
    ).start()
    yield srv
    srv.stop()


@pytest.fixture
def client(server):
    # retries=0: these tests assert on the raw status surface; the
    # retry/backoff layer gets its own tests below.
    return ServeClient(server.url, retries=0)


class TestRoundTrip:
    def test_submit_wait_result(self, client):
        job_id = client.submit({"graph": FAST_REF})
        record = client.wait(job_id, timeout=90.0)
        assert record["status"] == JobStatus.DONE
        result = client.result(job_id)
        direct = louvain(resolve_graph_ref(FAST_REF))
        np.testing.assert_array_equal(
            np.asarray(result["communities"]), direct.communities
        )
        assert result["meta"]["modularity"] == direct.modularity
        jobs = client.jobs()
        assert {"job_id": job_id, "status": "done"} in jobs

    def test_healthz(self, client):
        health = client.health()
        assert health["status"] == "ok"
        assert "queue_depth" in health and "workers" in health

    def test_metrics_scrape(self, client):
        job_id = client.submit({"graph": FAST_REF})
        client.wait(job_id, timeout=90.0)
        time.sleep(0.2)  # let the control loop publish its gauges
        text = client.metrics_text()
        assert "repro_serve_jobs_submitted_total 1" in text
        assert "repro_serve_jobs_completed_total 1" in text
        assert "# TYPE repro_serve_queue_depth gauge" in text
        assert "# TYPE repro_serve_job_seconds histogram" in text


class TestErrorStatuses:
    def test_unknown_job_404(self, client):
        for call in (lambda: client.status("job-424242"),
                     lambda: client.result("job-424242"),
                     lambda: client.cancel("job-424242")):
            with pytest.raises(ServeAPIError) as exc:
                call()
            assert exc.value.status == 404

    def test_bad_spec_400(self, client):
        for spec in ({"config": {}},                        # no graph
                     {"graph": FAST_REF, "surprise": 1},    # unknown field
                     {"graph": FAST_REF,
                      "config": {"kernel": "warp-drive"}}):
            with pytest.raises(ServeAPIError) as exc:
                client.submit(spec)
            assert exc.value.status == 400

    def test_unknown_path_404(self, client):
        with pytest.raises(ServeAPIError) as exc:
            client._request("GET", "/nope")
        assert exc.value.status == 404

    def test_backpressure_and_conflicts(self, client):
        # One slow job occupies the single worker; two more fill the
        # bounded queue (maxsize=2); the next submit gets 429.
        running = client.submit(SLOW_SPEC)
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            if client.status(running)["status"] == JobStatus.RUNNING:
                break
            time.sleep(0.005)
        queued = [client.submit(SLOW_SPEC) for _ in range(2)]
        with pytest.raises(ServeAPIError) as exc:
            client.submit(SLOW_SPEC)
        assert exc.value.status == 429

        # A queued job has no result yet: 409, with its current status.
        with pytest.raises(ServeAPIError) as exc:
            client.result(queued[0])
        assert exc.value.status == 409

        # Cancel the queued jobs (200), then cancelling again is 409.
        for job_id in queued:
            assert client.cancel(job_id)["status"] == "cancelled"
        with pytest.raises(ServeAPIError) as exc:
            client.cancel(queued[0])
        assert exc.value.status == 409
        # Cancel the running one too so teardown is quick.
        client.cancel(running)

    def test_429_carries_retry_after(self, client):
        running = client.submit(SLOW_SPEC)
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            if client.status(running)["status"] == JobStatus.RUNNING:
                break
            time.sleep(0.005)
        queued = [client.submit(SLOW_SPEC) for _ in range(2)]
        with pytest.raises(ServeAPIError) as exc:
            client.submit(SLOW_SPEC)
        assert exc.value.status == 429
        assert exc.value.retry_after == 1.0
        for job_id in queued + [running]:
            client.cancel(job_id)

    def test_cancel_completed_job_409_with_terminal_status(self, client):
        # Satellite: cancelling an already-completed job answers 409
        # with the job's terminal status in the body, not just prose.
        import json
        import urllib.error
        import urllib.request

        job_id = client.submit({"graph": FAST_REF})
        record = client.wait(job_id, timeout=90.0)
        assert record["status"] == JobStatus.DONE
        request = urllib.request.Request(
            f"{client.base_url}/jobs/{job_id}/cancel", method="POST")
        with pytest.raises(urllib.error.HTTPError) as exc:
            urllib.request.urlopen(request, timeout=10.0)
        with exc.value:
            assert exc.value.code == 409
            body = json.loads(exc.value.read().decode("utf-8"))
        assert body["status"] == JobStatus.DONE
        assert body["job_id"] == job_id


class TestClientRetry:
    """The bounded retry/backoff layer, driven deterministically."""

    def _client(self, **kwargs):
        kwargs.setdefault("backoff_s", 0.001)
        kwargs.setdefault("max_backoff_s", 0.002)
        return ServeClient("http://127.0.0.1:1", **kwargs)

    def test_connection_errors_retried_then_raised(self, monkeypatch):
        import urllib.error

        client = self._client(retries=2)
        calls = []

        def flaky(method, path, payload=None):
            calls.append(path)
            raise urllib.error.URLError("connection refused")

        monkeypatch.setattr(client, "_request_once", flaky)
        with pytest.raises(urllib.error.URLError):
            client._request("GET", "/healthz")
        assert len(calls) == 3  # initial + 2 retries

    def test_recovers_when_service_comes_back(self, monkeypatch):
        client = self._client(retries=3)
        calls = []

        def flaky(method, path, payload=None):
            calls.append(path)
            if len(calls) < 3:
                raise ConnectionResetError("mid-restart")
            return {"status": "ok"}

        monkeypatch.setattr(client, "_request_once", flaky)
        assert client._request("GET", "/healthz") == {"status": "ok"}
        assert len(calls) == 3

    def test_429_honors_retry_after(self, monkeypatch):
        client = self._client(retries=2)
        calls = []

        def backpressured(method, path, payload=None):
            calls.append(path)
            if len(calls) < 2:
                raise ServeAPIError(429, "queue full", retry_after=0.0)
            return {"job_id": "job-000000"}

        monkeypatch.setattr(client, "_request_once", backpressured)
        assert client._request("POST", "/jobs", {})["job_id"] == "job-000000"
        assert len(calls) == 2

    def test_deliberate_api_errors_never_retried(self, monkeypatch):
        client = self._client(retries=5)
        calls = []

        def answer(method, path, payload=None):
            calls.append(path)
            raise ServeAPIError(409, "already done")

        monkeypatch.setattr(client, "_request_once", answer)
        with pytest.raises(ServeAPIError):
            client._request("POST", "/jobs/job-000000/cancel")
        assert len(calls) == 1  # 409 is an answer, not an outage

    def test_zero_retries_disables_the_loop(self, monkeypatch):
        client = self._client(retries=0)
        calls = []

        def flaky(method, path, payload=None):
            calls.append(path)
            raise ConnectionResetError("boom")

        monkeypatch.setattr(client, "_request_once", flaky)
        with pytest.raises(ConnectionResetError):
            client._request("GET", "/healthz")
        assert len(calls) == 1


class TestSubmitIdempotency:
    """A retried POST /jobs must not become a second job."""

    def test_same_key_dedupes_to_one_job(self, client):
        payload = dict(SLOW_SPEC, idempotency_key="retry-abc")
        first = client._request("POST", "/jobs", payload)["job_id"]
        second = client._request("POST", "/jobs", payload)["job_id"]
        assert first == second
        assert len(client.jobs()) == 1

    def test_non_string_key_is_400(self, client):
        with pytest.raises(ServeAPIError) as exc:
            client._request("POST", "/jobs",
                            dict(SLOW_SPEC, idempotency_key=7))
        assert exc.value.status == 400

    def test_client_submit_attaches_fresh_keys(self, monkeypatch):
        client = ServeClient("http://127.0.0.1:1", retries=0)
        payloads = []

        def capture(method, path, payload=None):
            payloads.append(payload)
            return {"job_id": f"job-{len(payloads):06d}"}

        monkeypatch.setattr(client, "_request", capture)
        client.submit({"graph": FAST_REF})
        client.submit({"graph": FAST_REF})
        keys = [p["idempotency_key"] for p in payloads]
        assert all(isinstance(k, str) and k for k in keys)
        assert keys[0] != keys[1]  # fresh per call, not per client

    def test_client_caller_key_wins(self, monkeypatch):
        client = ServeClient("http://127.0.0.1:1", retries=0)
        payloads = []

        def capture(method, path, payload=None):
            payloads.append(payload)
            return {"job_id": "job-000000"}

        monkeypatch.setattr(client, "_request", capture)
        client.submit({"graph": FAST_REF, "idempotency_key": "mine"})
        assert payloads[0]["idempotency_key"] == "mine"
