"""The stdlib HTTP API: submit/status/result/cancel + metrics routes."""

import time

import numpy as np
import pytest

from repro.core.driver import louvain
from repro.serve import (
    AutoscalePolicy,
    InMemoryBroker,
    JobStatus,
    ServeAPIError,
    ServeClient,
    serve_api,
)
from repro.serve.job import resolve_graph_ref

FAST_REF = "planted:4x20?p_in=0.4&p_out=0.01&seed=3"
SLOW_SPEC = {
    "graph": "planted:20x100?p_in=0.2&p_out=0.002&seed=7",
    "config": {"kernel": "reference", "max_iterations_per_phase": 1},
}


@pytest.fixture
def server(tmp_path):
    srv = serve_api(
        str(tmp_path / "spool"), port=0,
        broker=InMemoryBroker(maxsize=2),
        policy=AutoscalePolicy(min_workers=1, max_workers=1,
                               idle_grace_s=60.0),
    ).start()
    yield srv
    srv.stop()


@pytest.fixture
def client(server):
    return ServeClient(server.url)


class TestRoundTrip:
    def test_submit_wait_result(self, client):
        job_id = client.submit({"graph": FAST_REF})
        record = client.wait(job_id, timeout=90.0)
        assert record["status"] == JobStatus.DONE
        result = client.result(job_id)
        direct = louvain(resolve_graph_ref(FAST_REF))
        np.testing.assert_array_equal(
            np.asarray(result["communities"]), direct.communities
        )
        assert result["meta"]["modularity"] == direct.modularity
        jobs = client.jobs()
        assert {"job_id": job_id, "status": "done"} in jobs

    def test_healthz(self, client):
        health = client.health()
        assert health["status"] == "ok"
        assert "queue_depth" in health and "workers" in health

    def test_metrics_scrape(self, client):
        job_id = client.submit({"graph": FAST_REF})
        client.wait(job_id, timeout=90.0)
        time.sleep(0.2)  # let the control loop publish its gauges
        text = client.metrics_text()
        assert "repro_serve_jobs_submitted_total 1" in text
        assert "repro_serve_jobs_completed_total 1" in text
        assert "# TYPE repro_serve_queue_depth gauge" in text
        assert "# TYPE repro_serve_job_seconds histogram" in text


class TestErrorStatuses:
    def test_unknown_job_404(self, client):
        for call in (lambda: client.status("job-424242"),
                     lambda: client.result("job-424242"),
                     lambda: client.cancel("job-424242")):
            with pytest.raises(ServeAPIError) as exc:
                call()
            assert exc.value.status == 404

    def test_bad_spec_400(self, client):
        for spec in ({"config": {}},                        # no graph
                     {"graph": FAST_REF, "surprise": 1},    # unknown field
                     {"graph": FAST_REF,
                      "config": {"kernel": "warp-drive"}}):
            with pytest.raises(ServeAPIError) as exc:
                client.submit(spec)
            assert exc.value.status == 400

    def test_unknown_path_404(self, client):
        with pytest.raises(ServeAPIError) as exc:
            client._request("GET", "/nope")
        assert exc.value.status == 404

    def test_backpressure_and_conflicts(self, client):
        # One slow job occupies the single worker; two more fill the
        # bounded queue (maxsize=2); the next submit gets 429.
        running = client.submit(SLOW_SPEC)
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            if client.status(running)["status"] == JobStatus.RUNNING:
                break
            time.sleep(0.005)
        queued = [client.submit(SLOW_SPEC) for _ in range(2)]
        with pytest.raises(ServeAPIError) as exc:
            client.submit(SLOW_SPEC)
        assert exc.value.status == 429

        # A queued job has no result yet: 409, with its current status.
        with pytest.raises(ServeAPIError) as exc:
            client.result(queued[0])
        assert exc.value.status == 409

        # Cancel the queued jobs (200), then cancelling again is 409.
        for job_id in queued:
            assert client.cancel(job_id)["status"] == "cancelled"
        with pytest.raises(ServeAPIError) as exc:
            client.cancel(queued[0])
        assert exc.value.status == 409
        # Cancel the running one too so teardown is quick.
        client.cancel(running)
