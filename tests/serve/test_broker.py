"""The in-memory broker: ordering, backpressure, cancellation."""

import pytest

from repro.serve.broker import InMemoryBroker
from repro.utils.errors import QueueFullError, ValidationError


class TestOrdering:
    def test_higher_priority_first(self):
        broker = InMemoryBroker()
        broker.put("low", priority=0)
        broker.put("high", priority=9)
        broker.put("mid", priority=4)
        assert [broker.get_nowait() for _ in range(3)] == \
            ["high", "mid", "low"]

    def test_fifo_within_priority(self):
        broker = InMemoryBroker()
        for name in ("a", "b", "c"):
            broker.put(name, priority=1)
        assert [broker.get_nowait() for _ in range(3)] == ["a", "b", "c"]

    def test_empty_returns_none(self):
        assert InMemoryBroker().get_nowait() is None


class TestBackpressure:
    def test_full_queue_raises(self):
        broker = InMemoryBroker(maxsize=2)
        broker.put("a")
        broker.put("b")
        with pytest.raises(QueueFullError, match="full"):
            broker.put("c")
        assert broker.depth() == 2

    def test_requeue_bypasses_the_bound(self):
        # At-least-once: a job already accepted must be requeueable even
        # when the queue is full.
        broker = InMemoryBroker(maxsize=1)
        broker.put("a")
        broker.put("crashed", force=True)
        assert broker.depth() == 2

    def test_draining_frees_capacity(self):
        broker = InMemoryBroker(maxsize=1)
        broker.put("a")
        assert broker.get_nowait() == "a"
        broker.put("b")  # no raise
        assert broker.depth() == 1

    def test_bad_maxsize(self):
        with pytest.raises(ValidationError):
            InMemoryBroker(maxsize=0)


class TestCancel:
    def test_cancel_pending(self):
        broker = InMemoryBroker()
        broker.put("a")
        broker.put("b")
        assert broker.cancel("a") is True
        assert broker.depth() == 1
        assert broker.get_nowait() == "b"
        assert broker.get_nowait() is None

    def test_cancel_unknown_or_dispatched(self):
        broker = InMemoryBroker()
        broker.put("a")
        assert broker.get_nowait() == "a"
        assert broker.cancel("a") is False
        assert broker.cancel("never-queued") is False

    def test_cancelled_slot_frees_capacity(self):
        broker = InMemoryBroker(maxsize=1)
        broker.put("a")
        broker.cancel("a")
        broker.put("b")  # tombstoned entry no longer counts
        assert broker.get_nowait() == "b"

    def test_resubmit_after_cancel(self):
        broker = InMemoryBroker()
        broker.put("a")
        broker.cancel("a")
        broker.put("a")
        assert broker.get_nowait() == "a"
        assert broker.get_nowait() is None  # exactly one entry survives

    def test_double_cancel_second_is_noop(self):
        broker = InMemoryBroker()
        broker.put("a")
        assert broker.cancel("a") is True
        assert broker.cancel("a") is False
        assert broker.depth() == 0
        assert broker.get_nowait() is None

    def test_reput_queued_id_is_noop(self):
        # A job id names one job: the first put wins its position and
        # priority, so WAL replay of duplicate puts converges.
        broker = InMemoryBroker()
        broker.put("a", priority=1)
        broker.put("a", priority=9)
        assert broker.entries() == [("a", 1)]
        assert broker.get_nowait() == "a"
        assert broker.get_nowait() is None
