"""The ``repro serve`` CLI round-trip against an in-process server."""

import numpy as np
import pytest

from repro.cli import main
from repro.serve import AutoscalePolicy, InMemoryBroker, serve_api

GRAPH_REF = "planted:4x20?p_in=0.4&p_out=0.01&seed=3"


@pytest.fixture
def url(tmp_path):
    server = serve_api(
        str(tmp_path / "spool"), port=0,
        broker=InMemoryBroker(maxsize=8),
        policy=AutoscalePolicy(min_workers=1, max_workers=1,
                               idle_grace_s=60.0),
    ).start()
    yield server.url
    server.stop()


class TestServeCLI:
    def test_submit_status_result_round_trip(self, url, tmp_path, capsys):
        assert main(["serve", "submit", GRAPH_REF, "--url", url,
                     "--wait", "--timeout", "90"]) == 0
        out = capsys.readouterr().out
        assert "job_id: job-000000" in out
        assert "status: done" in out
        assert "modularity:" in out

        assert main(["serve", "status", "job-000000", "--url", url]) == 0
        assert '"status": "done"' in capsys.readouterr().out

        assert main(["serve", "status", "--url", url]) == 0
        assert "job-000000  done" in capsys.readouterr().out

        out_file = tmp_path / "assignment.txt"
        assert main(["serve", "result", "job-000000", "--url", url,
                     "--output", str(out_file)]) == 0
        out = capsys.readouterr().out
        assert "modularity:" in out
        communities = np.loadtxt(out_file, dtype=np.int64)
        assert communities.shape == (80,)

    def test_submit_with_config_and_budget(self, url, capsys):
        assert main(["serve", "submit", GRAPH_REF, "--url", url,
                     "--config", '{"seed": 5}',
                     "--budget", '{"max_phases": 2}',
                     "--priority", "3", "--max-attempts", "2",
                     "--wait", "--timeout", "90"]) == 0
        out = capsys.readouterr().out
        assert "status: done" in out
        assert "phases: " in out

    def test_cancel(self, url, tmp_path, capsys):
        # An unstarted second service would auto-run the job, so cancel
        # a slow one instead: it may be pending or already running —
        # both paths return 200.
        assert main(["serve", "submit",
                     "planted:20x100?p_in=0.2&p_out=0.002&seed=7",
                     "--url", url,
                     "--config",
                     '{"kernel": "reference", '
                     '"max_iterations_per_phase": 1}']) == 0
        job_id = capsys.readouterr().out.split("job_id: ")[1].strip()
        assert main(["serve", "cancel", job_id, "--url", url]) == 0
        assert f"{job_id}: cancelled" in capsys.readouterr().out

    def test_api_error_exits_1(self, url, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["serve", "status", "job-424242", "--url", url])
        assert exc.value.code == 1
        assert "HTTP 404" in capsys.readouterr().err

    def test_bad_config_json_exits_2(self, url, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["serve", "submit", GRAPH_REF, "--url", url,
                  "--config", "{not json"])
        assert exc.value.code == 2

    def test_unreachable_service_exits_2(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["serve", "status", "--url", "http://127.0.0.1:9"])
        assert exc.value.code == 2
        assert "cannot reach" in capsys.readouterr().err
