"""Unit tests for ARI / NMI / VI."""

import numpy as np
import pytest

from repro.metrics.information import (
    adjusted_rand_index,
    normalized_mutual_information,
    variation_of_information,
)
from repro.utils.errors import ValidationError


IDENT = np.array([0, 0, 1, 1, 2, 2])
RELABELED = np.array([7, 7, 3, 3, 9, 9])


class TestARI:
    def test_identical(self):
        assert adjusted_rand_index(IDENT, IDENT) == pytest.approx(1.0)

    def test_relabel_invariant(self):
        assert adjusted_rand_index(IDENT, RELABELED) == pytest.approx(1.0)

    def test_independent_near_zero(self):
        rng = np.random.default_rng(0)
        a = rng.integers(0, 4, size=2000)
        b = rng.integers(0, 4, size=2000)
        assert abs(adjusted_rand_index(a, b)) < 0.05

    def test_symmetric(self):
        rng = np.random.default_rng(1)
        a = rng.integers(0, 3, size=50)
        b = rng.integers(0, 5, size=50)
        assert adjusted_rand_index(a, b) == pytest.approx(
            adjusted_rand_index(b, a)
        )

    def test_matches_known_value(self):
        # Classic textbook example.
        a = np.array([0, 0, 0, 1, 1, 1])
        b = np.array([0, 0, 1, 1, 2, 2])
        # Contingency: [[2,1,0],[0,1,2]].
        # sum_cells C2 = 1+0+0+0+0+1 = 2; rows (3,3) -> C2 = 6;
        # cols (2,2,2) -> C2 = 3; total C2 = 15.
        expected = (2 - 6 * 3 / 15) / ((6 + 3) / 2 - 6 * 3 / 15)
        assert adjusted_rand_index(a, b) == pytest.approx(expected)

    def test_both_trivial(self):
        assert adjusted_rand_index([0, 0, 0], [5, 5, 5]) == 1.0

    def test_validation(self):
        with pytest.raises(ValidationError):
            adjusted_rand_index([0, 1], [0])
        with pytest.raises(ValidationError):
            adjusted_rand_index([], [])


class TestNMI:
    def test_identical(self):
        assert normalized_mutual_information(IDENT, RELABELED) == (
            pytest.approx(1.0)
        )

    def test_independent_near_zero(self):
        rng = np.random.default_rng(2)
        a = rng.integers(0, 4, size=4000)
        b = rng.integers(0, 4, size=4000)
        assert normalized_mutual_information(a, b) < 0.05

    def test_range(self):
        rng = np.random.default_rng(3)
        a = rng.integers(0, 3, size=60)
        b = rng.integers(0, 6, size=60)
        assert 0.0 <= normalized_mutual_information(a, b) <= 1.0

    def test_trivial_vs_informative(self):
        # One partition constant: MI = 0, but not "identical" -> NMI 0.
        assert normalized_mutual_information([0, 0, 0, 0], [0, 1, 0, 1]) == 0.0

    def test_both_trivial(self):
        assert normalized_mutual_information([0, 0], [3, 3]) == 1.0


class TestVI:
    def test_identical_zero(self):
        assert variation_of_information(IDENT, RELABELED) == pytest.approx(
            0.0, abs=1e-12
        )

    def test_symmetric(self):
        rng = np.random.default_rng(4)
        a = rng.integers(0, 3, size=40)
        b = rng.integers(0, 4, size=40)
        assert variation_of_information(a, b) == pytest.approx(
            variation_of_information(b, a)
        )

    def test_triangle_inequality(self):
        rng = np.random.default_rng(5)
        a = rng.integers(0, 3, size=40)
        b = rng.integers(0, 3, size=40)
        c = rng.integers(0, 3, size=40)
        assert variation_of_information(a, c) <= (
            variation_of_information(a, b) + variation_of_information(b, c)
            + 1e-12
        )

    def test_bounded_by_log_n(self):
        rng = np.random.default_rng(6)
        n = 64
        a = rng.integers(0, n, size=n)
        b = rng.integers(0, n, size=n)
        assert variation_of_information(a, b) <= np.log(n) + 1e-9

    def test_refinement_distance(self):
        """VI between a partition and its refinement equals the entropy
        added by the refinement."""
        coarse = np.array([0, 0, 0, 0])
        fine = np.array([0, 0, 1, 1])
        assert variation_of_information(coarse, fine) == pytest.approx(
            np.log(2)
        )
