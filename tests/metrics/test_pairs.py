"""Unit tests for pair-counting partition comparison (Table 3 metrics)."""

import itertools

import numpy as np
import pytest

from repro.metrics.pairs import PairCounts, compare_partitions, pair_counts
from repro.utils.errors import ValidationError


def brute_force(benchmark, test):
    """The paper's Θ(n²) pair enumeration, as ground truth."""
    s = np.asarray(benchmark)
    p = np.asarray(test)
    tp = fp = fn = tn = 0
    for i, j in itertools.combinations(range(s.size), 2):
        same_s = s[i] == s[j]
        same_p = p[i] == p[j]
        if same_s and same_p:
            tp += 1
        elif same_p:
            fp += 1
        elif same_s:
            fn += 1
        else:
            tn += 1
    return tp, fp, fn, tn


class TestPairCounts:
    def test_identical_partitions(self):
        pc = pair_counts([0, 0, 1, 1, 2], [5, 5, 9, 9, 7])
        assert pc.fp == 0 and pc.fn == 0
        assert pc.rand_index == 1.0
        assert pc.overlap_quality == 1.0

    def test_completely_split(self):
        """Test partition is all singletons: no pairs together in P."""
        pc = pair_counts([0, 0, 0, 0], [0, 1, 2, 3])
        assert pc.tp == 0 and pc.fp == 0
        assert pc.fn == 6
        assert pc.sensitivity == 0.0
        assert pc.specificity == 1.0  # vacuous: P claims nothing

    def test_completely_merged(self):
        pc = pair_counts([0, 1, 2, 3], [0, 0, 0, 0])
        assert pc.fp == 6 and pc.tp == 0
        assert pc.specificity == 0.0

    @pytest.mark.parametrize("seed", range(5))
    def test_matches_brute_force(self, seed):
        rng = np.random.default_rng(seed)
        n = 40
        s = rng.integers(0, 5, size=n)
        p = rng.integers(0, 7, size=n)
        tp, fp, fn, tn = brute_force(s, p)
        pc = pair_counts(s, p)
        assert (pc.tp, pc.fp, pc.fn, pc.tn) == (tp, fp, fn, tn)

    def test_total_pairs(self):
        pc = pair_counts(np.zeros(10, dtype=np.int64),
                         np.arange(10))
        assert pc.total_pairs == 45

    def test_arbitrary_label_values(self):
        a = np.array([100, 100, -5, -5])
        b = np.array([0, 0, 1, 1])
        assert pair_counts(a, b).rand_index == 1.0

    def test_symmetry_of_rand(self):
        rng = np.random.default_rng(3)
        s = rng.integers(0, 4, size=30)
        p = rng.integers(0, 4, size=30)
        assert pair_counts(s, p).rand_index == pytest.approx(
            pair_counts(p, s).rand_index
        )

    def test_empty(self):
        pc = pair_counts(np.zeros(0, np.int64), np.zeros(0, np.int64))
        assert pc.rand_index == 1.0

    def test_single_vertex(self):
        pc = pair_counts([0], [0])
        assert pc.total_pairs == 0
        assert pc.rand_index == 1.0

    def test_validation(self):
        with pytest.raises(ValidationError):
            pair_counts([0, 1], [0])
        with pytest.raises(ValidationError):
            pair_counts([0.5, 1.0], [0, 1])

    def test_percentages(self):
        pct = compare_partitions([0, 0, 1, 1], [0, 0, 1, 1])
        assert pct == {"SP": 100.0, "SE": 100.0, "OQ": 100.0, "Rand": 100.0}

    def test_known_half_overlap(self):
        # S = {01}{23}, P = {02}{13}: TP=0, FP=2, FN=2, TN=2.
        pc = pair_counts([0, 0, 1, 1], [0, 1, 0, 1])
        assert (pc.tp, pc.fp, pc.fn, pc.tn) == (0, 2, 2, 2)
        assert pc.rand_index == pytest.approx(2 / 6)
