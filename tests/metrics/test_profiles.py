"""Unit tests for performance profiles (Fig. 10)."""

import numpy as np
import pytest

from repro.metrics.profiles import performance_profile
from repro.utils.errors import ValidationError


VALUES = {
    "fast": {"a": 1.0, "b": 2.0, "c": 1.0},
    "slow": {"a": 2.0, "b": 2.0, "c": 4.0},
}


class TestPerformanceProfile:
    def test_runtime_profile(self):
        profiles = performance_profile(VALUES, better="min")
        fast = profiles["fast"]
        slow = profiles["slow"]
        np.testing.assert_allclose(fast.ratios, [1.0, 1.0, 1.0])
        np.testing.assert_allclose(slow.ratios, [1.0, 2.0, 4.0])
        assert fast.fraction_within(1.0) == 1.0
        assert slow.fraction_within(1.0) == pytest.approx(1 / 3)
        assert slow.fraction_within(2.0) == pytest.approx(2 / 3)

    def test_modularity_profile(self):
        values = {
            "good": {"a": 0.9, "b": 0.8},
            "bad": {"a": 0.45, "b": 0.8},
        }
        profiles = performance_profile(values, better="max")
        np.testing.assert_allclose(profiles["good"].ratios, [1.0, 1.0])
        np.testing.assert_allclose(profiles["bad"].ratios, [1.0, 2.0])

    def test_curve_shape(self):
        profiles = performance_profile(VALUES, better="min")
        x, y = profiles["slow"].curve()
        assert x.shape == y.shape == (3,)
        assert y[-1] == 1.0
        assert (np.diff(x) >= 0).all()

    def test_mismatched_inputs_rejected(self):
        with pytest.raises(ValidationError):
            performance_profile(
                {"a": {"x": 1.0}, "b": {"y": 1.0}}, better="min"
            )

    def test_bad_better(self):
        with pytest.raises(ValidationError):
            performance_profile(VALUES, better="median")

    def test_nonpositive_rejected(self):
        with pytest.raises(ValidationError):
            performance_profile({"s": {"a": 0.0}}, better="min")

    def test_empty(self):
        assert performance_profile({}, better="min") == {}
