"""Unit tests of the span tracer: nesting, the disabled path, merging."""

import threading

import pytest

from repro.obs.trace import (
    TraceEvent,
    Tracer,
    get_tracer,
    resolve_trace,
    set_tracer,
    trace_default,
    use_tracer,
)
from repro.utils.timing import StepTimer, step_timer_view


class TestDisabledPath:
    def test_span_is_shared_noop(self):
        tracer = Tracer(enabled=False)
        a = tracer.span("x")
        b = tracer.span("y", cat="pipeline", n=3)
        assert a is b  # the singleton fast path: no allocation per call
        with a:
            pass
        assert tracer.events == []

    def test_metrics_are_noops(self):
        tracer = Tracer(enabled=False)
        tracer.count("c")
        tracer.gauge("g", 2.0)
        tracer.observe("h", 5.0)
        tracer.instant("i")
        assert tracer.metrics.snapshot() == {
            "counters": {}, "gauges": {}, "histograms": {},
        }
        assert tracer.events == []

    def test_step_still_accumulates(self):
        tracer = Tracer(enabled=False)
        with tracer.step("clustering"):
            pass
        with tracer.step("clustering"):
            pass
        assert tracer.step_totals["clustering"] > 0.0
        assert tracer.events == []  # totals without spans


class TestEnabledSpans:
    def test_nesting_records_parent_links(self):
        tracer = Tracer(enabled=True)
        with tracer.span("outer", cat="pipeline"):
            with tracer.span("inner", vertices=7):
                pass
        # Spans are recorded on exit: inner first.
        inner, outer = tracer.events
        assert inner.name == "inner" and outer.name == "outer"
        assert inner.parent == outer.id
        assert outer.parent == 0
        assert outer.cat == "pipeline"
        assert inner.args == {"vertices": 7}
        assert inner.ts >= outer.ts
        assert inner.dur <= outer.dur

    def test_sibling_spans_share_parent(self):
        tracer = Tracer(enabled=True)
        with tracer.span("outer"):
            with tracer.span("a"):
                pass
            with tracer.span("b"):
                pass
        a, b, outer = tracer.events
        assert a.parent == b.parent == outer.id
        assert a.id != b.id

    def test_instant_event(self):
        tracer = Tracer(enabled=True)
        tracer.instant("phase_end", phase=0, Q=0.5)
        (ev,) = tracer.events
        assert ev.cat == "instant"
        assert ev.dur == 0.0
        assert ev.args == {"phase": 0, "Q": 0.5}

    def test_step_span_and_bucket_share_one_clock_pair(self):
        tracer = Tracer(enabled=True)
        with tracer.step("coloring", phase=0):
            pass
        (ev,) = tracer.events
        assert ev.cat == "step"
        assert ev.args == {"phase": 0}
        # Identical float, not merely close: one perf_counter pair.
        assert tracer.step_totals["coloring"] == ev.dur

    def test_sorted_events_orders_by_timestamp(self):
        tracer = Tracer(enabled=True)
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        assert [e.name for e in tracer.sorted_events()] == ["outer", "inner"]

    def test_threads_keep_independent_stacks(self):
        tracer = Tracer(enabled=True)
        barrier = threading.Barrier(2)

        def work(name):
            with tracer.span(name):
                barrier.wait()  # both spans open concurrently

        threads = [threading.Thread(target=work, args=(f"t{i}",))
                   for i in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert {e.name for e in tracer.events} == {"t0", "t1"}
        # Neither span is the other's parent: per-thread stacks.
        assert all(e.parent == 0 for e in tracer.events)
        assert len({e.tid for e in tracer.events}) == 2


class TestMerge:
    def test_merge_accepts_dict_payloads(self):
        worker = Tracer(enabled=True)
        with worker.span("worker_chunk", offset=0, length=10):
            pass
        worker.observe("worker.chunk_vertices", 10)

        parent = Tracer(enabled=True)
        parent.merge([e.to_dict() for e in worker.events],
                     worker.metrics.snapshot())
        (ev,) = parent.events
        assert isinstance(ev, TraceEvent)
        assert ev.name == "worker_chunk"
        snap = parent.metrics.snapshot()
        assert snap["histograms"]["worker.chunk_vertices"]["count"] == 1

    def test_merge_accepts_event_objects(self):
        src = Tracer(enabled=True)
        with src.span("x"):
            pass
        dst = Tracer(enabled=True)
        dst.merge(src.events)
        assert dst.events == src.events


class TestAmbient:
    def test_default_is_disabled(self):
        assert get_tracer().enabled is False

    def test_use_tracer_restores_previous(self):
        before = get_tracer()
        mine = Tracer(enabled=True)
        with use_tracer(mine):
            assert get_tracer() is mine
        assert get_tracer() is before

    def test_use_tracer_restores_on_exception(self):
        before = get_tracer()
        with pytest.raises(RuntimeError):
            with use_tracer(Tracer(enabled=True)):
                raise RuntimeError("boom")
        assert get_tracer() is before

    def test_set_tracer_returns_previous(self):
        before = get_tracer()
        mine = Tracer()
        try:
            assert set_tracer(mine) is before
            assert get_tracer() is mine
        finally:
            set_tracer(before)


class TestEnablement:
    def test_resolve_trace_explicit_overrides_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE", "1")
        assert resolve_trace(False) is False
        assert resolve_trace(True) is True

    def test_resolve_trace_none_defers_to_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE", "1")
        assert resolve_trace(None) is True
        monkeypatch.setenv("REPRO_TRACE", "0")
        assert resolve_trace(None) is False
        monkeypatch.delenv("REPRO_TRACE")
        assert resolve_trace(None) is False

    def test_trace_default_accepts_truthy_strings(self, monkeypatch):
        for value, expected in [("1", True), ("true", True), ("on", True),
                                ("0", False), ("", False), ("off", False)]:
            monkeypatch.setenv("REPRO_TRACE", value)
            assert trace_default() is expected


class TestStepTimerView:
    def test_view_shares_the_totals_dict(self):
        tracer = Tracer(enabled=False)
        timers = step_timer_view(tracer)
        assert isinstance(timers, StepTimer)
        with tracer.step("rebuild"):
            pass
        assert timers.totals is tracer.step_totals
        assert timers.totals["rebuild"] == tracer.step_totals["rebuild"]
