"""Prometheus rendering and the stdlib HTTP exposition endpoint."""

import json
import math
import urllib.error
import urllib.request

import pytest

from repro.obs.live import MetricsSnapshot, SnapshotStreamer
from repro.obs.metrics import Histogram
from repro.obs.serve import (
    PROMETHEUS_CONTENT_TYPE,
    ObsServer,
    RegistrySource,
    RingFileSource,
    render_prometheus,
    serve,
)
from repro.obs.trace import Tracer


def snapshot_with_everything():
    hist = Histogram(buckets=(1.0, 4.0, math.inf))
    for v in (0.5, 2.0, 100.0):
        hist.observe(v)
    return MetricsSnapshot(
        seq=3, ts=1.0, wall=2.0, pid=42,
        counters={"sweep.moves": 7},
        gauges={"worker.pool_alive": 2.0},
        histograms={"iteration.moves": hist.to_dict()},
    )


class TestRenderPrometheus:
    def test_no_snapshot_renders_comment(self):
        text = render_prometheus(None)
        assert text.startswith("# repro: no snapshot available yet")

    def test_counter_gauge_histogram_lines(self):
        text = render_prometheus(snapshot_with_everything())
        lines = text.splitlines()
        assert "# TYPE repro_sweep_moves_total counter" in lines
        assert "repro_sweep_moves_total 7" in lines
        assert "# TYPE repro_worker_pool_alive gauge" in lines
        assert "repro_worker_pool_alive 2.0" in lines
        assert "# TYPE repro_iteration_moves histogram" in lines
        # Buckets are cumulative and end at +Inf with the total count.
        assert 'repro_iteration_moves_bucket{le="1.0"} 1' in lines
        assert 'repro_iteration_moves_bucket{le="4.0"} 2' in lines
        assert 'repro_iteration_moves_bucket{le="+Inf"} 3' in lines
        assert "repro_iteration_moves_sum 102.5" in lines
        assert "repro_iteration_moves_count 3" in lines

    def test_every_sample_line_is_well_formed(self):
        for line in render_prometheus(snapshot_with_everything()).splitlines():
            if line.startswith("#") or not line:
                continue
            name, value = line.rsplit(" ", 1)
            assert name
            float(value)  # must parse as a number

    def test_dotted_names_never_leak(self):
        text = render_prometheus(snapshot_with_everything())
        for line in text.splitlines():
            if not line.startswith("#"):
                assert "." not in line.split(" ", 1)[0].split("{", 1)[0]


class TestSources:
    def test_registry_source_samples_live_tracer(self):
        tracer = Tracer(enabled=True)
        tracer.metrics.count("sweep.moves", 4)
        source = RegistrySource(tracer)
        snap = source.get()
        assert snap.counters["sweep.moves"] == 4
        tracer.metrics.count("sweep.moves", 1)
        assert source.get().counters["sweep.moves"] == 5

    def test_ring_file_source_reads_freshest(self, tmp_path):
        path = tmp_path / "ring.jsonl"
        source = RingFileSource(str(path))
        assert source.get() is None
        tracer = Tracer(enabled=True)
        streamer = SnapshotStreamer(tracer, path=str(path))
        tracer.metrics.count("c", 1)
        streamer.tick()
        tracer.metrics.count("c", 1)
        streamer.tick()
        assert source.get().counters["c"] == 2

    def test_ring_file_source_caches_by_mtime_and_size(self, tmp_path,
                                                       monkeypatch):
        """An unchanged ring file is parsed once, not per scrape."""
        import importlib

        # ``repro.obs`` re-exports the ``serve`` *function*, which shadows
        # the submodule under attribute access — go through importlib.
        serve_mod = importlib.import_module("repro.obs.serve")

        path = tmp_path / "ring.jsonl"
        tracer = Tracer(enabled=True)
        streamer = SnapshotStreamer(tracer, path=str(path))
        tracer.metrics.count("c", 1)
        streamer.tick()
        source = RingFileSource(str(path))
        calls = []
        real_load = serve_mod.load_ring
        monkeypatch.setattr(serve_mod, "load_ring",
                            lambda p: calls.append(p) or real_load(p))
        first = source.get()
        assert first.counters["c"] == 1
        # Hammering the endpoint must not re-parse the unchanged file.
        for _ in range(5):
            assert source.get() is first
        assert len(calls) == 1
        # A new line (size change) invalidates the cache.
        tracer.metrics.count("c", 1)
        streamer.tick()
        assert source.get().counters["c"] == 2
        assert len(calls) == 2

    def test_ring_file_source_tolerates_torn_trailing_line(self, tmp_path):
        """A scrape racing the writer/compactor sees the last good line."""
        import json as json_mod

        path = tmp_path / "ring.jsonl"
        good = MetricsSnapshot(seq=7, ts=1.0, wall=2.0, pid=1,
                               counters={"c": 3})
        torn = MetricsSnapshot(seq=8, ts=2.0, wall=3.0, pid=1,
                               counters={"c": 4})
        good_line = json_mod.dumps(good.to_dict(), sort_keys=True)
        torn_line = json_mod.dumps(torn.to_dict(), sort_keys=True)
        half = len(torn_line) // 2
        path.write_text(good_line + "\n" + torn_line[:half],
                        encoding="utf-8")
        source = RingFileSource(str(path))
        snap = source.get()
        assert snap is not None and snap.seq == 7
        assert snap.counters["c"] == 3
        # Once the writer completes the torn line, the cache refreshes
        # (the size changed) and the newest snapshot is served.
        with open(path, "a", encoding="utf-8") as fh:
            fh.write(torn_line[half:] + "\n")
        assert source.get().seq == 8

    def test_ring_file_source_recovers_after_file_vanishes(self, tmp_path):
        path = tmp_path / "ring.jsonl"
        tracer = Tracer(enabled=True)
        streamer = SnapshotStreamer(tracer, path=str(path))
        streamer.tick()
        source = RingFileSource(str(path))
        assert source.get() is not None
        path.unlink()
        assert source.get() is None
        streamer.tick()  # the ring is recreated; the source must re-read
        assert source.get() is not None


@pytest.fixture
def server():
    tracer = Tracer(enabled=True)
    tracer.metrics.count("sweep.moves", 11)
    srv = serve(tracer=tracer, port=0).start()
    yield srv
    srv.stop()


def fetch(srv: ObsServer, path: str):
    host, port = srv.address
    with urllib.request.urlopen(f"http://{host}:{port}{path}",
                                timeout=5) as resp:
        return resp.status, resp.headers.get("Content-Type"), resp.read()


class TestObsServer:
    def test_metrics_route(self, server):
        status, ctype, body = fetch(server, "/metrics")
        assert status == 200
        assert ctype == PROMETHEUS_CONTENT_TYPE
        assert b"repro_sweep_moves_total 11" in body

    def test_root_serves_metrics_too(self, server):
        status, _, body = fetch(server, "/")
        assert status == 200
        assert b"repro_sweep_moves_total" in body

    def test_healthz_route(self, server):
        status, ctype, body = fetch(server, "/healthz")
        assert status == 200
        assert ctype == "application/json"
        health = json.loads(body)
        assert health["status"] == "ok"
        assert health["source"] == "registry (in-process)"

    def test_snapshot_route(self, server):
        status, _, body = fetch(server, "/snapshot")
        assert status == 200
        snap = json.loads(body)
        assert snap["counters"]["sweep.moves"] == 11

    def test_unknown_path_is_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as exc:
            fetch(server, "/nope")
        exc.value.close()  # the error response carries a live socket
        assert exc.value.code == 404

    def test_snapshot_503_when_ring_empty(self, tmp_path):
        srv = serve(ring=str(tmp_path / "absent.jsonl"), port=0).start()
        try:
            with pytest.raises(urllib.error.HTTPError) as exc:
                fetch(srv, "/snapshot")
            exc.value.close()  # the error response carries a live socket
            assert exc.value.code == 503
            status, _, body = fetch(srv, "/healthz")
            assert status == 200
            assert json.loads(body)["status"] == "no-data"
            status, _, body = fetch(srv, "/metrics")
            assert status == 200
            assert body.startswith(b"# repro: no snapshot available yet")
        finally:
            srv.stop()

    def test_ring_file_serving_follows_writes(self, tmp_path):
        path = tmp_path / "ring.jsonl"
        tracer = Tracer(enabled=True)
        streamer = SnapshotStreamer(tracer, path=str(path))
        tracer.metrics.count("sweep.moves", 1)
        streamer.tick()
        srv = serve(ring=str(path), port=0).start()
        try:
            _, _, body = fetch(srv, "/metrics")
            assert b"repro_sweep_moves_total 1" in body
            tracer.metrics.count("sweep.moves", 1)
            streamer.tick()
            _, _, body = fetch(srv, "/metrics")
            assert b"repro_sweep_moves_total 2" in body
        finally:
            srv.stop()
