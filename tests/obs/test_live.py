"""Unit tests of the live plane: snapshots, streamer, ring file."""

import json
import threading

import pytest

from repro.obs.live import (
    DEFAULT_INTERVAL_S,
    MetricsSnapshot,
    SnapshotStreamer,
    capture_snapshot,
    load_ring,
    metrics_ring_default,
    obs_interval_default,
    stream_metrics,
)
from repro.obs.trace import Tracer


def make_tracer():
    tracer = Tracer(enabled=True)
    tracer.metrics.count("sweep.moves", 5)
    tracer.metrics.gauge("worker.pool_alive", 2.0)
    tracer.metrics.observe("iteration.moves", 3.0)
    return tracer


class TestMetricsSnapshot:
    def test_round_trip(self):
        snap = capture_snapshot(make_tracer(), seq=7)
        back = MetricsSnapshot.from_dict(
            json.loads(json.dumps(snap.to_dict()))
        )
        assert back == snap
        assert back.seq == 7
        assert back.counters["sweep.moves"] == 5

    def test_capture_copies_not_aliases(self):
        tracer = make_tracer()
        snap = capture_snapshot(tracer, seq=1)
        tracer.metrics.count("sweep.moves", 100)
        assert snap.counters["sweep.moves"] == 5

    def test_from_dict_tolerates_missing_keys(self):
        snap = MetricsSnapshot.from_dict({})
        assert snap.seq == 0
        assert snap.counters == {}


class TestEnvDefaults:
    def test_ring_default_unset_is_none(self, monkeypatch):
        monkeypatch.delenv("REPRO_OBS_RING", raising=False)
        assert metrics_ring_default() is None
        monkeypatch.setenv("REPRO_OBS_RING", "  ")
        assert metrics_ring_default() is None
        monkeypatch.setenv("REPRO_OBS_RING", "ring.jsonl")
        assert metrics_ring_default() == "ring.jsonl"

    def test_interval_default_parsing(self, monkeypatch):
        monkeypatch.delenv("REPRO_OBS_INTERVAL", raising=False)
        assert obs_interval_default() == DEFAULT_INTERVAL_S
        monkeypatch.setenv("REPRO_OBS_INTERVAL", "0.05")
        assert obs_interval_default() == 0.05
        monkeypatch.setenv("REPRO_OBS_INTERVAL", "garbage")
        assert obs_interval_default() == DEFAULT_INTERVAL_S
        monkeypatch.setenv("REPRO_OBS_INTERVAL", "-1")
        assert obs_interval_default() == DEFAULT_INTERVAL_S


class TestLoadRing:
    def test_missing_file_is_empty(self, tmp_path):
        assert load_ring(str(tmp_path / "absent.jsonl")) == []

    def test_bad_lines_are_skipped(self, tmp_path):
        path = tmp_path / "ring.jsonl"
        good = MetricsSnapshot(seq=1, ts=0.0, wall=0.0, pid=1,
                               counters={"c": 1}).to_dict()
        path.write_text(
            json.dumps(good) + "\n"
            + "{truncated\n"
            + "[1, 2, 3]\n"  # JSON but not a snapshot object
            + "\n"
            + json.dumps({**good, "seq": 2}) + "\n"
        )
        snaps = load_ring(str(path))
        assert [s.seq for s in snaps] == [1, 2]


class TestSnapshotStreamer:
    def test_tick_appends_to_ring_and_file(self, tmp_path):
        path = tmp_path / "ring.jsonl"
        s = SnapshotStreamer(make_tracer(), path=str(path))
        snap = s.tick()
        assert snap is not None and snap.seq == 1
        assert s.latest() is snap
        assert s.history() == [snap]
        on_disk = load_ring(str(path))
        assert len(on_disk) == 1
        assert on_disk[0].counters == snap.counters

    def test_ring_buffer_is_bounded(self):
        s = SnapshotStreamer(make_tracer(), keep=4)
        for _ in range(10):
            s.tick()
        assert len(s.history()) == 4
        assert s.latest().seq == 10

    def test_file_compaction_keeps_tail(self, tmp_path):
        path = tmp_path / "ring.jsonl"
        s = SnapshotStreamer(make_tracer(), path=str(path), keep=3)
        for _ in range(2 * 3):  # exactly hits the 2*keep compaction point
            s.tick()
        snaps = load_ring(str(path))
        assert len(snaps) == 3
        assert [snap.seq for snap in snaps] == [4, 5, 6]

    def test_vanished_directory_does_not_raise(self, tmp_path):
        missing = tmp_path / "gone" / "ring.jsonl"
        s = SnapshotStreamer(make_tracer(), path=str(missing))
        snap = s.tick()
        assert snap is not None  # in-memory ring still fills
        assert s.dropped == 1

    def test_background_thread_samples(self):
        s = SnapshotStreamer(make_tracer(), interval_s=0.005)
        s.start()
        try:
            deadline = threading.Event()
            for _ in range(200):
                if s.latest() is not None:
                    break
                deadline.wait(0.01)
        finally:
            s.stop()
        # stop() takes a final snapshot even if the thread never fired.
        assert s.latest() is not None
        assert s.latest().counters["sweep.moves"] == 5

    def test_start_is_idempotent(self):
        s = SnapshotStreamer(make_tracer(), interval_s=0.01)
        assert s.start() is s.start()
        first = s._thread
        s.start()
        assert s._thread is first
        s.stop()


class TestStreamMetricsContext:
    def test_scoped_stream_takes_final_snapshot(self, tmp_path):
        path = tmp_path / "ring.jsonl"
        tracer = Tracer(enabled=True)
        with stream_metrics(tracer, str(path), interval_s=60.0) as streamer:
            tracer.metrics.count("sweep.moves", 9)
        # interval far in the future: only the exit snapshot is guaranteed.
        assert streamer.latest() is not None
        assert streamer.latest().counters["sweep.moves"] == 9
        snaps = load_ring(str(path))
        assert snaps and snaps[-1].counters["sweep.moves"] == 9

    def test_registry_is_never_written(self):
        tracer = Tracer(enabled=True)
        tracer.metrics.count("sweep.moves", 2)
        before = tracer.metrics.snapshot()
        with stream_metrics(tracer, None, interval_s=0.001):
            for _ in range(50):
                pass
        assert tracer.metrics.snapshot() == before
