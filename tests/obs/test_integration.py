"""End-to-end observability guarantees across every pipeline.

The load-bearing property: the tracer *observes, never steers* — a traced
run returns bitwise-identical communities to an untraced run, on every
pipeline (parallel driver, serial reference, process backend,
distributed BSP), while its trace exports as valid Chrome trace-event
JSON.
"""

import multiprocessing as mp

import numpy as np
import pytest

from repro.core.driver import louvain
from repro.core.history import ConvergenceHistory
from repro.core.louvain_serial import louvain_serial
from repro.distributed.louvain_dist import distributed_louvain
from repro.graph.generators import planted_partition
from repro.obs.export import to_chrome_trace, validate_chrome_trace
from repro.obs.trace import get_tracer


@pytest.fixture(scope="module")
def planted():
    return planted_partition(24, 12, 0.7, 0.02, seed=5)


class TestBitwiseEquivalence:
    def test_driver_default_variant(self, planted):
        base = louvain(planted, trace=False)
        traced = louvain(planted, trace=True)
        np.testing.assert_array_equal(base.communities, traced.communities)
        assert base.modularity == traced.modularity
        assert base.trace is None
        assert traced.trace is not None

    def test_driver_vf_color_variant(self, planted):
        kwargs = dict(variant="baseline+VF+Color",
                      coloring_min_vertices=planted.num_vertices // 4)
        base = louvain(planted, trace=False, **kwargs)
        traced = louvain(planted, trace=True, **kwargs)
        np.testing.assert_array_equal(base.communities, traced.communities)
        assert base.modularity == traced.modularity

    def test_serial_reference(self, planted):
        base = louvain_serial(planted, trace=False)
        traced = louvain_serial(planted, trace=True)
        np.testing.assert_array_equal(base.communities, traced.communities)
        assert base.modularity == traced.modularity
        assert traced.trace is not None and base.trace is None

    def test_process_backend(self, planted):
        if "fork" not in mp.get_all_start_methods():
            pytest.skip("process backend requires fork")
        kwargs = dict(backend="processes", num_threads=2)
        base = louvain(planted, trace=False, **kwargs)
        traced = louvain(planted, trace=True, **kwargs)
        np.testing.assert_array_equal(base.communities, traced.communities)
        assert base.modularity == traced.modularity

    def test_distributed(self, planted):
        base = distributed_louvain(planted, 3, trace=False)
        traced = distributed_louvain(planted, 3, trace=True)
        np.testing.assert_array_equal(base.communities, traced.communities)
        assert base.modularity == traced.modularity


class TestLivePlaneBitwiseEquivalence:
    """Profiler and metrics streamer observe; they never steer."""

    def test_profile_on_off_driver(self, planted):
        base = louvain(planted, profile=False)
        profiled = louvain(planted, profile=True)
        np.testing.assert_array_equal(base.communities, profiled.communities)
        assert base.modularity == profiled.modularity
        assert base.profile is None
        assert profiled.profile is not None

    def test_profile_on_off_process_backend(self, planted):
        if "fork" not in mp.get_all_start_methods():
            pytest.skip("process backend requires fork")
        kwargs = dict(backend="processes", num_threads=2)
        base = louvain(planted, profile=False, **kwargs)
        profiled = louvain(planted, profile=True, **kwargs)
        np.testing.assert_array_equal(base.communities, profiled.communities)
        assert base.modularity == profiled.modularity

    def test_metrics_ring_on_off_driver(self, planted, tmp_path):
        ring = tmp_path / "ring.jsonl"
        base = louvain(planted)
        streamed = louvain(planted, trace=True, metrics_ring=str(ring))
        np.testing.assert_array_equal(base.communities, streamed.communities)
        assert base.modularity == streamed.modularity
        from repro.obs.live import load_ring

        snaps = load_ring(str(ring))
        assert snaps, "the exit snapshot must always be written"
        assert snaps[-1].counters.get("sweep.moves", 0) > 0

    def test_metrics_ring_on_off_threads(self, planted, tmp_path):
        ring = tmp_path / "ring.jsonl"
        kwargs = dict(backend="threads", num_threads=2)
        base = louvain(planted, **kwargs)
        streamed = louvain(planted, trace=True, metrics_ring=str(ring),
                           **kwargs)
        np.testing.assert_array_equal(base.communities, streamed.communities)
        assert base.modularity == streamed.modularity

    def test_everything_on_at_once_process_backend(self, planted, tmp_path):
        """The acceptance shape: budgeted process run, fully observed."""
        if "fork" not in mp.get_all_start_methods():
            pytest.skip("process backend requires fork")
        ring = tmp_path / "ring.jsonl"
        kwargs = dict(backend="processes", num_threads=2)
        base = louvain(planted, **kwargs)
        observed = louvain(planted, trace=True, profile=True,
                           metrics_ring=str(ring), **kwargs)
        np.testing.assert_array_equal(base.communities, observed.communities)
        assert base.modularity == observed.modularity
        assert observed.profile is not None
        from repro.obs.live import load_ring

        snaps = load_ring(str(ring))
        assert snaps and snaps[-1].counters.get("sweep.moves", 0) > 0


class TestWorkerHeartbeats:
    def test_process_backend_publishes_worker_gauges(self, planted):
        if "fork" not in mp.get_all_start_methods():
            pytest.skip("process backend requires fork")
        result = louvain(planted, trace=True, backend="processes",
                         num_threads=2)
        gauges = result.trace.metrics.snapshot()["gauges"]
        assert gauges.get("worker.pool_alive", 0) >= 1
        per_worker = [g for g in gauges if g.startswith("worker.0.")]
        assert "worker.0.last_heartbeat" in gauges
        assert "worker.0.chunks_done" in gauges
        assert "worker.0.alive" in gauges
        assert gauges["worker.0.alive"] == 1.0
        assert gauges["worker.0.chunks_done"] >= 0
        assert per_worker  # at least the three above

    def test_budget_gauges_published_under_budget(self, planted):
        from repro.robust.budget import RunBudget

        result = louvain(planted, trace=True,
                         budget=RunBudget(deadline=60.0))
        gauges = result.trace.metrics.snapshot()["gauges"]
        assert "budget.pressure" in gauges
        assert "budget.phases" in gauges
        assert "budget.remaining" in gauges


class TestEndpointUnderRunningJob:
    def test_endpoint_serves_prometheus_while_job_runs(self, tmp_path):
        """The cross-process shape: job streams a ring, endpoint follows it.

        The exit snapshot is guaranteed, so the final scrape always shows
        the run's counters even when the job outpaces the scraper.
        """
        import threading
        import urllib.request

        from repro.obs.serve import PROMETHEUS_CONTENT_TYPE, serve

        ring = str(tmp_path / "ring.jsonl")
        srv = serve(ring=ring, port=0).start()
        host, port = srv.address
        graph = planted_partition(40, 20, 0.4, 0.05, seed=3)

        def job():
            louvain(graph, trace=True, metrics_ring=ring)

        worker = threading.Thread(target=job)
        worker.start()
        bodies = []
        try:
            while worker.is_alive():
                with urllib.request.urlopen(
                        f"http://{host}:{port}/metrics", timeout=5) as resp:
                    assert resp.status == 200
                    assert resp.headers["Content-Type"] == \
                        PROMETHEUS_CONTENT_TYPE
                    bodies.append(resp.read().decode())
        finally:
            worker.join(timeout=30)
            # One guaranteed post-run scrape: the ring keeps the exit
            # snapshot after the job finishes.
            with urllib.request.urlopen(
                    f"http://{host}:{port}/metrics", timeout=5) as resp:
                bodies.append(resp.read().decode())
            srv.stop()
        final = bodies[-1]
        assert "repro_sweep_moves_total" in final
        for body in bodies:
            for line in body.splitlines():
                if line.startswith("#") or not line:
                    continue
                float(line.rsplit(" ", 1)[1])  # every sample parses


class TestTraceContents:
    def test_driver_trace_is_valid_chrome_json(self, planted):
        result = louvain(planted, trace=True)
        payload = to_chrome_trace(result.trace, history=result.history)
        assert validate_chrome_trace(payload) == []
        names = {e.name for e in result.trace.events}
        assert {"louvain", "clustering", "rebuild", "iteration",
                "sweep", "compute_targets", "phase_end"} <= names

    def test_timers_view_matches_step_spans(self, planted):
        result = louvain(planted, trace=True)
        from repro.obs.report import step_breakdown

        breakdown = step_breakdown(result.trace)
        for name, seconds in breakdown.totals.items():
            assert seconds == pytest.approx(result.timers.totals[name],
                                            abs=1e-12)

    def test_untraced_run_still_fills_timers(self, planted):
        result = louvain(planted, trace=False)
        assert result.timers.get("clustering") > 0.0
        assert result.timers.get("rebuild") > 0.0

    def test_counters_reflect_history(self, planted):
        result = louvain(planted, trace=True)
        counters = result.trace.metrics.snapshot()["counters"]
        moved = sum(r.vertices_moved for r in result.history.iterations)
        assert counters["sweep.moves"] == moved

    def test_process_backend_merges_worker_spans(self, planted):
        if "fork" not in mp.get_all_start_methods():
            pytest.skip("process backend requires fork")
        result = louvain(planted, trace=True, backend="processes",
                         num_threads=2)
        chunks = [e for e in result.trace.events if e.name == "worker_chunk"]
        assert chunks, "worker spans must be merged into the parent trace"
        # Workers are forked children: their spans carry foreign pids.
        assert all(e.pid != result.trace.pid for e in chunks)
        hists = result.trace.metrics.snapshot()["histograms"]
        assert hists["worker.chunk_vertices"]["count"] == len(chunks)
        payload = to_chrome_trace(result.trace)
        assert validate_chrome_trace(payload) == []

    def test_distributed_trace_records_supersteps(self, planted):
        result = distributed_louvain(planted, 3, trace=True)
        names = {e.name for e in result.trace.events}
        assert {"local_compute", "halo_exchange", "allreduce"} <= names
        assert validate_chrome_trace(to_chrome_trace(result.trace)) == []

    def test_ambient_tracer_restored_after_runs(self, planted):
        before = get_tracer()
        louvain(planted, trace=True)
        louvain_serial(planted, trace=True)
        distributed_louvain(planted, 2, trace=True)
        assert get_tracer() is before


class TestHistoryRoundTrip:
    """Property-style: to_json/from_json is the identity on real histories."""

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_round_trip_over_two_phase_runs(self, seed):
        graph = planted_partition(20, 10, 0.7, 0.03, seed=seed)
        result = louvain(graph, variant="baseline+VF+Color",
                         coloring_min_vertices=graph.num_vertices // 4)
        history = result.history
        assert history.num_phases >= 2  # the property is about multi-phase runs
        back = ConvergenceHistory.from_json(history.to_json())
        assert back == history
        assert back.iterations == history.iterations
        assert back.phases == history.phases
        np.testing.assert_array_equal(back.modularity_trajectory(),
                                      history.modularity_trajectory())
        assert back.phase_boundaries() == history.phase_boundaries()

    def test_round_trip_preserves_tuple_types(self):
        graph = planted_partition(20, 10, 0.7, 0.03, seed=9)
        history = louvain(graph).history
        back = ConvergenceHistory.from_json(history.to_json())
        for record in back.iterations:
            assert isinstance(record.color_set_vertices, tuple)
            assert isinstance(record.color_set_edges, tuple)
        for record in back.phases:
            assert isinstance(record.color_class_sizes, tuple)

    def test_empty_history_round_trips(self):
        empty = ConvergenceHistory()
        assert ConvergenceHistory.from_json(empty.to_json()) == empty
