"""Report tests: the Fig 8-style breakdown and the aggregated span tree."""

import pytest

from repro.core.driver import louvain
from repro.datasets.catalog import load_dataset
from repro.obs.export import TraceData
from repro.obs.report import (
    aggregate_span_tree,
    history_from_trace,
    render_breakdown,
    render_report,
    render_span_tree,
    step_breakdown,
)
from repro.obs.trace import Tracer


@pytest.fixture(scope="module")
def traced_result():
    graph = load_dataset("MG1", scale=0.4, seed=0)
    return louvain(graph, variant="baseline+VF+Color",
                   coloring_min_vertices=graph.num_vertices // 4,
                   trace=True)


class TestStepBreakdown:
    def test_totals_equal_result_timers_exactly(self, traced_result):
        breakdown = step_breakdown(traced_result.trace)
        timers = traced_result.timers.totals
        assert set(breakdown.totals) == set(timers)
        for name, seconds in breakdown.totals.items():
            # Same clock pairs feed both: equality to float precision.
            assert seconds == pytest.approx(timers[name], abs=1e-12)

    def test_rows_are_per_phase(self, traced_result):
        breakdown = step_breakdown(traced_result.trace)
        labels = [label for label, _ in breakdown.rows]
        # VF rebuild happens before phase 0 -> a "pre" row, then phases.
        assert "pre" in labels
        assert "0" in labels

    def test_step_names_keep_fig8_order(self, traced_result):
        names = step_breakdown(traced_result.trace).step_names()
        known = [n for n in names if n in ("coloring", "clustering", "rebuild")]
        assert known == [n for n in ("coloring", "clustering", "rebuild")
                         if n in names]

    def test_fallback_to_step_totals_without_step_events(self):
        data = TraceData(step_totals={"clustering": 1.5, "rebuild": 0.5})
        breakdown = step_breakdown(data)
        assert breakdown.rows == [("all", {"clustering": 1.5, "rebuild": 0.5})]
        assert breakdown.grand_total == 2.0

    def test_empty_trace(self):
        breakdown = step_breakdown(TraceData())
        assert breakdown.rows == []
        assert breakdown.grand_total == 0.0


class TestRendering:
    def test_breakdown_table_shape(self, traced_result):
        text = render_breakdown(traced_result.trace)
        assert "phase" in text and "TOTAL" in text and "share" in text
        assert "100.0%" in text

    def test_breakdown_without_steps(self):
        assert render_breakdown(TraceData()) == "(no step events in trace)\n"

    def test_span_tree_aggregates_by_path(self, traced_result):
        root = aggregate_span_tree(traced_result.trace)
        assert "louvain" in root.children
        pipeline = root.children["louvain"]
        # Iterations nest under the clustering step span.
        assert "iteration" in pipeline.children["clustering"].children
        iteration = pipeline.children["clustering"].children["iteration"]
        assert iteration.count >= 2  # several iterations fold into one node
        assert iteration.total > 0.0

    def test_span_tree_render(self, traced_result):
        text = render_span_tree(traced_result.trace)
        assert "louvain" in text and "×" in text and "%" in text

    def test_max_depth_truncates(self, traced_result):
        shallow = render_span_tree(traced_result.trace, max_depth=1)
        assert "iteration" not in shallow

    def test_empty_tree(self):
        assert render_span_tree(TraceData()) == "(no span events in trace)\n"

    def test_full_report_sections(self, traced_result):
        text = render_report(traced_result.trace)
        assert "== Runtime breakdown (Fig. 8 buckets) ==" in text
        assert "== Span tree ==" in text
        assert "== Counters ==" in text
        assert "sweep.moves" in text

    def test_report_includes_convergence_when_history_present(self, traced_result):
        data = TraceData(
            events=list(traced_result.trace.events),
            step_totals=dict(traced_result.trace.step_totals),
            metrics=traced_result.trace.metrics.snapshot(),
            history=traced_result.history.to_json_dict(),
        )
        text = render_report(data)
        assert "== Convergence ==" in text
        history = history_from_trace(data)
        assert history == traced_result.history
        assert f"final Q {history.final_modularity:.6f}" in text


class TestHistoryFromTrace:
    def test_none_without_embedded_history(self):
        assert history_from_trace(Tracer(enabled=True)) is None
