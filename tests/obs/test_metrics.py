"""Unit tests of the metrics registry: histograms, merging, snapshots."""

import math

import pytest

from repro.obs.metrics import DEFAULT_BUCKETS, Histogram, MetricsRegistry
from repro.utils.errors import ValidationError


class TestHistogram:
    def test_observe_places_values_in_buckets(self):
        h = Histogram(buckets=(1.0, 2.0, 4.0, math.inf))
        for v in (0.5, 1.0, 1.5, 3.0, 100.0):
            h.observe(v)
        # Upper bounds are inclusive: 1.0 lands in the first bucket.
        assert h.counts == [2, 1, 1, 1]
        assert h.count == 5
        assert h.sum == pytest.approx(106.0)
        assert h.min == 0.5
        assert h.max == 100.0
        assert h.mean == pytest.approx(106.0 / 5)

    def test_default_buckets_are_powers_of_two_plus_inf(self):
        assert DEFAULT_BUCKETS[0] == 1.0
        assert DEFAULT_BUCKETS[-1] == math.inf
        assert all(b == 2 * a for a, b in zip(DEFAULT_BUCKETS[:-2],
                                              DEFAULT_BUCKETS[1:-1]))

    def test_buckets_must_end_with_inf(self):
        with pytest.raises(ValidationError):
            Histogram(buckets=(1.0, 2.0))

    def test_buckets_must_strictly_increase(self):
        with pytest.raises(ValidationError):
            Histogram(buckets=(2.0, 1.0, math.inf))

    def test_merge_adds_counts_exactly(self):
        a = Histogram(buckets=(1.0, math.inf))
        b = Histogram(buckets=(1.0, math.inf))
        for v in (0.5, 3.0):
            a.observe(v)
        for v in (0.25, 9.0):
            b.observe(v)
        a.merge(b)
        assert a.counts == [2, 2]
        assert a.count == 4
        assert a.sum == pytest.approx(12.75)
        assert a.min == 0.25
        assert a.max == 9.0

    def test_merge_rejects_different_buckets(self):
        a = Histogram(buckets=(1.0, math.inf))
        b = Histogram(buckets=(2.0, math.inf))
        with pytest.raises(ValidationError):
            a.merge(b)

    def test_dict_round_trip_encodes_inf(self):
        h = Histogram(buckets=(1.0, math.inf))
        h.observe(0.5)
        h.observe(7.0)
        data = h.to_dict()
        assert data["buckets"] == [1.0, "inf"]  # JSON-safe
        back = Histogram.from_dict(data)
        assert back == h

    def test_empty_histogram_round_trip(self):
        h = Histogram(buckets=(1.0, math.inf))
        data = h.to_dict()
        assert data["min"] is None and data["max"] is None
        back = Histogram.from_dict(data)
        assert back.count == 0
        assert back.mean == 0.0


class TestMetricsRegistry:
    def test_counters_accumulate(self):
        reg = MetricsRegistry()
        reg.count("sweep.moves", 3)
        reg.count("sweep.moves")
        assert reg.counters["sweep.moves"] == 4.0

    def test_gauges_last_write_wins(self):
        reg = MetricsRegistry()
        reg.gauge("imbalance", 1.5)
        reg.gauge("imbalance", 1.1)
        assert reg.gauges["imbalance"] == 1.1

    def test_merge_combines_all_kinds(self):
        a = MetricsRegistry()
        b = MetricsRegistry()
        a.count("moves", 2)
        b.count("moves", 3)
        b.count("only_b", 1)
        a.gauge("g", 1.0)
        b.gauge("g", 2.0)
        a.observe("h", 1.0)
        b.observe("h", 100.0)
        b.observe("h2", 5.0)
        a.merge(b)
        assert a.counters == {"moves": 5.0, "only_b": 1.0}
        assert a.gauges["g"] == 2.0  # merged-in gauge wins
        assert a.histograms["h"].count == 2
        assert a.histograms["h"].max == 100.0
        assert a.histograms["h2"].count == 1

    def test_merge_snapshot_round_trips_worker_payload(self):
        worker = MetricsRegistry()
        worker.count("sweep.moves", 7)
        worker.gauge("imbalance", 1.25)
        worker.observe("chunk", 64.0)
        parent = MetricsRegistry()
        parent.count("sweep.moves", 1)
        parent.merge_snapshot(worker.snapshot())
        snap = parent.snapshot()
        assert snap["counters"]["sweep.moves"] == 8.0
        assert snap["gauges"]["imbalance"] == 1.25
        assert snap["histograms"]["chunk"]["count"] == 1

    def test_merge_empty_registry_is_identity(self):
        reg = MetricsRegistry()
        reg.count("moves", 3)
        reg.gauge("g", 1.5)
        reg.observe("h", 2.0)
        before = reg.snapshot()
        reg.merge(MetricsRegistry())
        assert reg.snapshot() == before

    def test_merge_into_empty_registry_copies_everything(self):
        src = MetricsRegistry()
        src.count("moves", 3)
        src.gauge("g", 1.5)
        src.observe("h", 2.0)
        dst = MetricsRegistry()
        dst.merge(src)
        assert dst.snapshot() == src.snapshot()
        # The histogram must be a copy, not an alias of the source's.
        src.observe("h", 9.0)
        assert dst.histograms["h"].count == 1

    def test_merge_empty_snapshot_payload(self):
        reg = MetricsRegistry()
        reg.count("moves", 1)
        reg.merge_snapshot(MetricsRegistry().snapshot())
        reg.merge_snapshot({})  # degenerate payload: every key optional
        assert reg.counters == {"moves": 1}

    def test_snapshot_is_isolated_from_later_mutation(self):
        reg = MetricsRegistry()
        reg.count("moves", 1)
        reg.gauge("g", 1.0)
        reg.observe("h", 2.0)
        snap = reg.snapshot()
        reg.count("moves", 10)
        reg.gauge("g", 9.0)
        reg.observe("h", 50.0)
        assert snap["counters"]["moves"] == 1
        assert snap["gauges"]["g"] == 1.0
        assert snap["histograms"]["h"]["count"] == 1
        # ...and merging the stale snapshot folds in the *old* values.
        other = MetricsRegistry()
        other.merge_snapshot(snap)
        assert other.counters["moves"] == 1

    def test_integral_counters_stay_exact_past_float_precision(self):
        # 2**53 is where float spacing exceeds 1: +1 would be silently
        # dropped under float accumulation.
        big = 2**53
        reg = MetricsRegistry()
        reg.count("moves", big)
        reg.count("moves")
        reg.count("moves")
        assert reg.counters["moves"] == big + 2
        assert isinstance(reg.counters["moves"], int)

    def test_integral_float_increments_normalize_to_int(self):
        reg = MetricsRegistry()
        reg.count("moves", 3.0)  # numpy sums often arrive as floats
        assert reg.counters["moves"] == 3
        assert isinstance(reg.counters["moves"], int)

    def test_fractional_increments_degrade_to_float(self):
        reg = MetricsRegistry()
        reg.count("work", 1.5)
        reg.count("work", 1)
        assert reg.counters["work"] == pytest.approx(2.5)

    def test_merge_snapshot_preserves_counter_exactness(self):
        big = 2**53
        worker = MetricsRegistry()
        worker.count("moves", big)
        parent = MetricsRegistry()
        parent.count("moves", 1)
        parent.merge_snapshot(worker.snapshot())
        assert parent.counters["moves"] == big + 1
        assert isinstance(parent.counters["moves"], int)

    def test_snapshot_is_json_serializable(self):
        import json

        reg = MetricsRegistry()
        reg.observe("h", 3.0)
        reg.count("c", 1)
        reg.gauge("g", 0.5)
        parsed = json.loads(json.dumps(reg.snapshot()))
        assert parsed["histograms"]["h"]["buckets"][-1] == "inf"
