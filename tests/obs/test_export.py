"""Exporter tests: JSONL/Chrome round-trips and schema validation."""

import json

import pytest

from repro.core.history import ConvergenceHistory, IterationRecord
from repro.obs.export import (
    TraceData,
    load_chrome_trace,
    load_jsonl,
    load_trace,
    to_chrome_trace,
    to_flat_text,
    validate_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.trace import Tracer
from repro.utils.errors import ValidationError


def make_tracer() -> Tracer:
    """A small hand-rolled trace: nested spans, a step, an instant."""
    tracer = Tracer(enabled=True)
    with tracer.span("louvain", cat="pipeline", n=10):
        with tracer.step("clustering", phase=0):
            with tracer.span("iteration", phase=0, iteration=0):
                pass
        tracer.instant("phase_end", phase=0, Q=0.5)
    tracer.count("sweep.moves", 4)
    tracer.gauge("worker.chunk_imbalance", 1.0)
    tracer.observe("iteration.moves", 4)
    return tracer


def make_history() -> ConvergenceHistory:
    h = ConvergenceHistory()
    h.iterations.append(IterationRecord(
        phase=0, iteration=0, modularity=0.5, vertices_moved=4,
        num_communities=3, color_set_vertices=(10,), color_set_edges=(40,),
    ))
    return h


class TestJsonl:
    def test_round_trip(self, tmp_path):
        tracer = make_tracer()
        path = tmp_path / "trace.jsonl"
        write_jsonl(tracer, path, history=make_history())
        data = load_jsonl(path)
        assert isinstance(data, TraceData)
        assert [e.name for e in data.sorted_events()] == [
            "louvain", "clustering", "iteration", "phase_end",
        ]
        assert data.events == sorted(tracer.events, key=lambda e: (e.ts, e.id))
        assert data.step_totals == tracer.step_totals
        assert data.metrics == tracer.metrics.snapshot()
        assert ConvergenceHistory.from_json_dict(data.history) == make_history()

    def test_lines_are_individually_valid_json(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        write_jsonl(make_tracer(), path)
        kinds = [json.loads(line)["type"] for line in path.read_text().splitlines()]
        assert kinds[0] == "meta"
        assert "span" in kinds and "steps" in kinds and "metrics" in kinds


class TestChromeTrace:
    def test_structure(self):
        payload = to_chrome_trace(make_tracer(), history=make_history())
        assert validate_chrome_trace(payload) == []
        phs = [e["ph"] for e in payload["traceEvents"]]
        assert phs.count("B") == phs.count("E") == 3  # three spans
        assert phs.count("i") == 1
        assert payload["reproSteps"]["clustering"] > 0
        assert payload["reproMetrics"]["counters"]["sweep.moves"] == 4.0
        assert payload["reproHistory"]["iterations"][0]["modularity"] == 0.5
        # Timestamps rebased: earliest event starts at 0 µs.
        assert min(e["ts"] for e in payload["traceEvents"]) == 0.0

    def test_be_pairs_nest_properly(self):
        payload = to_chrome_trace(make_tracer())
        names = [(e["ph"], e["name"]) for e in payload["traceEvents"]
                 if e["ph"] in ("B", "E")]
        assert names == [
            ("B", "louvain"), ("B", "clustering"), ("B", "iteration"),
            ("E", "iteration"), ("E", "clustering"), ("E", "louvain"),
        ]

    def test_file_round_trip(self, tmp_path):
        tracer = make_tracer()
        path = tmp_path / "trace.json"
        write_chrome_trace(tracer, path, history=make_history())
        data = load_chrome_trace(path)
        assert [e.name for e in data.sorted_events()] == [
            "louvain", "clustering", "iteration", "phase_end",
        ]
        by_name = {e.name: e for e in data.events}
        assert by_name["iteration"].parent == by_name["clustering"].id
        assert by_name["clustering"].parent == by_name["louvain"].id
        assert by_name["iteration"].args == {"phase": 0, "iteration": 0}
        assert data.step_totals == tracer.step_totals
        assert ConvergenceHistory.from_json_dict(data.history) == make_history()

    def test_load_rejects_invalid_file(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"traceEvents": [
            {"name": "a", "ph": "B", "ts": 0, "pid": 1, "tid": 1},
        ]}))
        with pytest.raises(ValidationError):
            load_chrome_trace(path)


class TestValidateChromeTrace:
    def test_accepts_plain_event_array(self):
        assert validate_chrome_trace([
            {"name": "a", "ph": "B", "ts": 0, "pid": 1, "tid": 1},
            {"name": "a", "ph": "E", "ts": 5, "pid": 1, "tid": 1},
        ]) == []

    def test_flags_missing_ph(self):
        problems = validate_chrome_trace([{"name": "a", "ts": 0}])
        assert any("no 'ph'" in p for p in problems)

    def test_flags_unclosed_b(self):
        problems = validate_chrome_trace([
            {"name": "a", "ph": "B", "ts": 0, "pid": 1, "tid": 1},
        ])
        assert any("unclosed" in p for p in problems)

    def test_flags_e_without_b(self):
        problems = validate_chrome_trace([
            {"name": "a", "ph": "E", "ts": 0, "pid": 1, "tid": 1},
        ])
        assert any("without open B" in p for p in problems)

    def test_flags_improper_nesting(self):
        problems = validate_chrome_trace([
            {"name": "a", "ph": "B", "ts": 0, "pid": 1, "tid": 1},
            {"name": "b", "ph": "B", "ts": 1, "pid": 1, "tid": 1},
            {"name": "a", "ph": "E", "ts": 2, "pid": 1, "tid": 1},
            {"name": "b", "ph": "E", "ts": 3, "pid": 1, "tid": 1},
        ])
        assert any("improper nesting" in p for p in problems)

    def test_flags_bad_pid_and_ts(self):
        problems = validate_chrome_trace([
            {"name": "a", "ph": "i", "ts": -1, "pid": "x", "tid": 1},
        ])
        assert any("non-integer 'pid'" in p for p in problems)
        assert any("invalid ts" in p for p in problems)

    def test_flags_non_object_inputs(self):
        assert validate_chrome_trace("nope") == [
            "trace must be a JSON object or array",
        ]
        assert validate_chrome_trace({}) == [
            "top-level 'traceEvents' list missing",
        ]

    def test_separate_threads_validate_independently(self):
        assert validate_chrome_trace([
            {"name": "a", "ph": "B", "ts": 0, "pid": 1, "tid": 1},
            {"name": "b", "ph": "B", "ts": 1, "pid": 1, "tid": 2},
            {"name": "b", "ph": "E", "ts": 2, "pid": 1, "tid": 2},
            {"name": "a", "ph": "E", "ts": 3, "pid": 1, "tid": 1},
        ]) == []


class TestLoadTrace:
    def test_sniffs_jsonl(self, tmp_path):
        path = tmp_path / "t.jsonl"
        write_jsonl(make_tracer(), path)
        assert len(load_trace(path).events) == 4

    def test_sniffs_chrome(self, tmp_path):
        path = tmp_path / "t.json"
        write_chrome_trace(make_tracer(), path)
        assert len(load_trace(path).events) == 4


class TestFlatText:
    def test_contains_steps_spans_and_metrics(self):
        text = to_flat_text(make_tracer())
        assert "step.clustering.seconds" in text
        assert "span.iteration.count 1" in text
        assert "counter.sweep.moves 4" in text
        assert "gauge.worker.chunk_imbalance 1" in text
        assert "hist.iteration.moves.count 1" in text

    def test_empty_trace_is_empty_string(self):
        assert to_flat_text(Tracer(enabled=True)) == ""
