"""Perf-regression gate: comparison semantics and recipe cross-checks."""

import importlib.util
import json
import pathlib

import pytest

from repro.obs.regress import (
    DEFAULT_Q_TOL,
    DEFAULT_TOL_RATIO,
    DEFAULT_TOL_SECONDS,
    BATCH_GRAPH_SPEC,
    BATCH_NUM_GRAPHS,
    PHASE_GRAPHS,
    PHASE_THRESHOLD,
    compare_records,
    load_records,
    record_key,
    render_comparisons,
    rerun_batch_records,
    run_regression,
)

REPO = pathlib.Path(__file__).resolve().parents[2]


def kernel_record(graph="planted-50k", kernel="optimized", seconds=1.0,
                  q=0.9, **extra):
    return {"graph": graph, "kernel": kernel, "seconds": seconds, "Q": q,
            "commit": "aaaa", "date": "2026-01-01", "backend": "numpy",
            **extra}


def batch_record(mode="batched", seconds=0.1, q_mean=0.5, **extra):
    return {"mode": mode, "seconds": seconds, "Q_mean": q_mean,
            "commit": "aaaa", "date": "2026-01-01", "backend": "numpy",
            **extra}


class TestRecordKey:
    def test_kernel_and_batch_keys(self):
        assert record_key(kernel_record()) == "kernels:planted-50k/optimized"
        assert record_key(batch_record()) == "batch:batched"
        assert record_key({"whatever": 1}) is None


class TestLoadRecords:
    def test_loads_committed_bench_files(self):
        kernels = load_records(REPO / "BENCH_kernels.json")
        batch = load_records(REPO / "BENCH_batch.json")
        assert kernels and batch
        assert all(record_key(r) for r in kernels + batch)

    def test_rejects_non_list(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"not": "a list"}')
        with pytest.raises(ValueError):
            load_records(path)
        path.write_text("[1, 2]")
        with pytest.raises(ValueError):
            load_records(path)


class TestCompareRecords:
    def test_identical_records_pass(self):
        committed = [kernel_record(), batch_record()]
        comparisons, notes = compare_records(committed,
                                             json.loads(json.dumps(committed)))
        assert comparisons and all(c.ok for c in comparisons)
        assert notes == []

    def test_synthetically_slowed_record_fails(self):
        committed = [kernel_record(seconds=1.0)]
        slowed = [kernel_record(seconds=10.0)]
        comparisons, _ = compare_records(committed, slowed)
        seconds = [c for c in comparisons if c.metric == "seconds"]
        assert seconds and not seconds[0].ok

    def test_within_tolerance_passes(self):
        committed = [kernel_record(seconds=1.0)]
        # limit = 1.0 + max(1.0*0.25, 0.25) = 1.25
        ok_fresh = [kernel_record(seconds=1.2)]
        comparisons, _ = compare_records(committed, ok_fresh)
        assert all(c.ok for c in comparisons)

    def test_absolute_floor_protects_tiny_records(self):
        # 10ms -> 3x slower but inside the 0.25s shared-runner floor.
        committed = [batch_record(seconds=0.010)]
        fresh = [batch_record(seconds=0.030)]
        comparisons, _ = compare_records(committed, fresh)
        assert all(c.ok for c in comparisons)

    def test_quality_drop_fails(self):
        committed = [kernel_record(q=0.90)]
        fresh = [kernel_record(q=0.90 - 2 * DEFAULT_Q_TOL)]
        comparisons, _ = compare_records(committed, fresh)
        q = [c for c in comparisons if c.metric == "Q"]
        assert q and not q[0].ok

    def test_quality_gain_passes(self):
        committed = [kernel_record(q=0.90)]
        fresh = [kernel_record(q=0.95)]
        comparisons, _ = compare_records(committed, fresh)
        assert all(c.ok for c in comparisons)

    def test_backend_mismatch_is_skipped_with_note(self):
        committed = [kernel_record(backend="numpy", seconds=1.0)]
        fresh = [kernel_record(backend="cupy", seconds=50.0)]
        comparisons, notes = compare_records(committed, fresh)
        assert comparisons == []
        assert any("backend mismatch" in n for n in notes)

    def test_commit_mismatch_is_note_not_failure(self):
        committed = [kernel_record(commit="aaaa")]
        fresh = [kernel_record(commit="bbbb")]
        comparisons, notes = compare_records(committed, fresh)
        assert all(c.ok for c in comparisons)
        assert any("provenance" in n for n in notes)

    def test_unmatched_records_are_notes(self):
        committed = [kernel_record(kernel="seed"),
                     kernel_record(kernel="optimized")]
        fresh = [kernel_record(kernel="optimized"),
                 batch_record()]
        comparisons, notes = compare_records(committed, fresh)
        assert all(c.ok for c in comparisons)
        assert any("no fresh record" in n for n in notes)
        assert any("no committed baseline" in n for n in notes)

    def test_custom_tolerances(self):
        committed = [kernel_record(seconds=1.0)]
        fresh = [kernel_record(seconds=1.5)]
        strict, _ = compare_records(committed, fresh, tol_ratio=0.1,
                                    tol_seconds=0.0)
        lax, _ = compare_records(committed, fresh, tol_ratio=1.0,
                                 tol_seconds=0.0)
        assert not all(c.ok for c in strict)
        assert all(c.ok for c in lax)


class TestGate:
    def test_run_regression_pass_and_fail(self):
        committed = [kernel_record(), batch_record()]
        ok, report = run_regression(committed,
                                    json.loads(json.dumps(committed)))
        assert ok
        assert report.splitlines()[-1].startswith("PASS")
        bad = json.loads(json.dumps(committed))
        bad[0]["seconds"] = 99.0
        ok, report = run_regression(committed, bad)
        assert not ok
        assert report.splitlines()[-1].startswith("REGRESSION")
        assert "FAIL" in report

    def test_committed_bench_files_pass_against_themselves(self):
        committed = (load_records(REPO / "BENCH_kernels.json")
                     + load_records(REPO / "BENCH_batch.json"))
        ok, report = run_regression(committed,
                                    json.loads(json.dumps(committed)))
        assert ok, report


class TestRecipeCrossCheck:
    """The graph recipes duplicated from benchmarks/ must never drift."""

    @staticmethod
    def _load_bench(name):
        # benchmarks/ is a script directory, not a package; bench_batch
        # imports bench_kernels as a sibling, so put the dir on the path.
        import sys

        bench_dir = str(REPO / "benchmarks")
        sys.path.insert(0, bench_dir)
        try:
            path = REPO / "benchmarks" / f"{name}.py"
            spec = importlib.util.spec_from_file_location(name, path)
            module = importlib.util.module_from_spec(spec)
            spec.loader.exec_module(module)
            return module
        finally:
            sys.path.remove(bench_dir)

    def test_phase_graphs_match_bench_kernels(self):
        bench = self._load_bench("bench_kernels")
        assert PHASE_GRAPHS == bench.PHASE_GRAPHS
        assert PHASE_THRESHOLD == bench.PHASE_THRESHOLD

    def test_batch_recipe_matches_bench_batch(self):
        import numpy as np

        from repro.graph.generators import planted_partition

        bench = self._load_bench("bench_batch")
        assert BATCH_NUM_GRAPHS == bench.DEFAULT_NUM_GRAPHS
        # bench_batch hard-codes its fleet recipe inside build_graphs;
        # byte-compare the graphs it builds against BATCH_GRAPH_SPEC.
        theirs = bench.build_graphs(2, seed=5)
        blocks, block_size, p_in, p_out = BATCH_GRAPH_SPEC
        ours = [planted_partition(blocks, block_size, p_in, p_out,
                                  seed=5 + i) for i in range(2)]
        for a, b in zip(theirs, ours):
            assert a.num_vertices == b.num_vertices
            assert a.num_edges == b.num_edges
            np.testing.assert_array_equal(a.indptr, b.indptr)
            np.testing.assert_array_equal(a.indices, b.indices)


class TestRerun:
    def test_rerun_batch_records_have_bench_shape(self):
        records = rerun_batch_records(num_graphs=3, repeats=1,
                                      log=lambda *_: None)
        assert [r["mode"] for r in records] == ["per-graph-loop", "batched"]
        for record in records:
            assert record_key(record) is not None
            assert {"seconds", "Q_mean", "commit", "date",
                    "backend"} <= set(record)
        assert records[1]["speedup"] == pytest.approx(
            records[0]["seconds"] / records[1]["seconds"])


class TestRender:
    def test_render_marks_failures(self):
        committed = [kernel_record(seconds=1.0)]
        fresh = [kernel_record(seconds=50.0)]
        comparisons, notes = compare_records(committed, fresh)
        text = render_comparisons(comparisons, notes)
        assert "FAIL kernels:planted-50k/optimized seconds" in text
        assert text.splitlines()[-1].startswith("REGRESSION")
