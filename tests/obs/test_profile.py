"""Sampling profiler: collapsed stacks, attribution, export round trip."""

import threading

import pytest

from repro.graph.generators import planted_partition
from repro.obs.export import (
    TraceData,
    load_trace,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.profile import (
    DEFAULT_HZ,
    ProfileData,
    SamplingProfiler,
    profile_default,
    profile_hz_default,
    profile_run,
    resolve_profile,
)


class TestEnvDefaults:
    def test_profile_default_parsing(self, monkeypatch):
        monkeypatch.delenv("REPRO_PROFILE", raising=False)
        assert profile_default() is False
        for off in ("0", "false", "OFF", ""):
            monkeypatch.setenv("REPRO_PROFILE", off)
            assert profile_default() is False
        monkeypatch.setenv("REPRO_PROFILE", "1")
        assert profile_default() is True
        assert resolve_profile(None) is True
        assert resolve_profile(False) is False

    def test_hz_default_parsing(self, monkeypatch):
        monkeypatch.delenv("REPRO_PROFILE_HZ", raising=False)
        assert profile_hz_default() == DEFAULT_HZ
        monkeypatch.setenv("REPRO_PROFILE_HZ", "250")
        assert profile_hz_default() == 250.0
        monkeypatch.setenv("REPRO_PROFILE_HZ", "-3")
        assert profile_hz_default() == DEFAULT_HZ
        monkeypatch.setenv("REPRO_PROFILE_HZ", "nope")
        assert profile_hz_default() == DEFAULT_HZ


class TestProfileData:
    def test_record_and_collapsed_lines(self):
        data = ProfileData()
        data.record(["mod.a", "mod.b"])
        data.record(["mod.a", "mod.b"])
        data.record(["mod.a", "mod.c"])
        assert data.samples == 3
        assert data.collapsed_lines() == ["mod.a;mod.b 2", "mod.a;mod.c 1"]

    def test_empty_frames_are_ignored(self):
        data = ProfileData()
        data.record([])
        assert data.samples == 0

    def test_merge_adds_counts(self):
        a = ProfileData(samples=0)
        b = ProfileData(samples=0)
        a.record(["x.f"])
        b.record(["x.f"])
        b.record(["y.g"])
        b.duration_s = 1.5
        a.merge(b)
        assert a.stacks == {"x.f": 2, "y.g": 1}
        assert a.samples == 3
        assert a.duration_s == 1.5

    def test_attribution_fraction(self):
        data = ProfileData()
        data.record(["threading.run", "repro.core.sweep.sweep"])
        data.record(["threading.run", "select.select"])
        assert data.attribution() == pytest.approx(0.5)
        assert ProfileData().attribution() == 0.0

    def test_top_frames_by_leaf(self):
        data = ProfileData()
        data.record(["a.f", "b.g"])
        data.record(["c.h", "b.g"])
        data.record(["a.f"])
        assert data.top_frames(1) == [("b.g", 2)]

    def test_write_collapsed(self, tmp_path):
        data = ProfileData()
        data.record(["mod.a", "mod.b"])
        path = tmp_path / "run.collapsed"
        data.write_collapsed(path)
        assert path.read_text() == "mod.a;mod.b 1\n"

    def test_dict_round_trip(self):
        data = ProfileData(hz=50.0)
        data.record(["m.f"])
        data.duration_s = 0.25
        back = ProfileData.from_dict(data.to_dict())
        assert back == data


class TestSamplingProfiler:
    def test_sample_once_targets_creating_thread(self):
        profiler = SamplingProfiler(hz=10.0)
        profiler.sample_once()
        assert profiler.data.samples == 1
        (stack,) = profiler.data.stacks
        assert "sample_once" in stack  # our own call site is the leaf side

    def test_profiled_busy_loop_collects_samples(self):
        with profile_run(hz=1000.0) as prof:
            acc = 0
            while prof.samples < 3 and acc < 10**9:
                acc += 1
        assert prof.samples >= 3
        assert prof.duration_s > 0.0
        assert prof.hz == 1000.0

    def test_all_threads_mode_skips_obs_threads(self):
        ready = threading.Event()
        release = threading.Event()

        def obs_like():
            ready.set()
            release.wait(10.0)

        thread = threading.Thread(target=obs_like, name="repro-obs-fake",
                                  daemon=True)
        thread.start()
        ready.wait(5.0)
        try:
            profiler = SamplingProfiler(hz=10.0, all_threads=True)
            profiler.sample_once()
            assert profiler.data.samples >= 1
            for stack in profiler.data.stacks:
                assert "obs_like" not in stack
        finally:
            release.set()
            thread.join(timeout=5.0)

    def test_invalid_hz_falls_back(self):
        assert SamplingProfiler(hz=0).hz == DEFAULT_HZ

    def test_stop_without_start_returns_data(self):
        profiler = SamplingProfiler(hz=10.0)
        assert profiler.stop() is profiler.data


class TestPipelineAttribution:
    def test_profiled_run_attributes_to_repro_frames(self):
        # The acceptance bar: >=80% of samples land in known pipeline
        # frames.  The driver thread is the only sampled thread, so its
        # stack bottoms out in repro.* whenever the run is active.
        from repro.core.driver import louvain

        graph = planted_partition(60, 25, 0.4, 0.05, seed=11)
        prof = None
        for _ in range(5):  # fast machines may finish between samples
            with profile_run(hz=2000.0) as prof:
                louvain(graph)
            if prof.samples >= 5:
                break
        assert prof.samples > 0, "no samples collected over five runs"
        assert prof.attribution("repro.") >= 0.8
        assert any(line for line in prof.collapsed_lines())


class TestProfileExport:
    def test_jsonl_round_trip_carries_profile(self, tmp_path):
        data = ProfileData(hz=99.0)
        data.record(["repro.core.driver.louvain"])
        trace = TraceData()
        path = tmp_path / "trace.jsonl"
        write_jsonl(trace, path, profile=data)
        back = load_trace(path)
        assert back.profile is not None
        assert back.profile["hz"] == 99.0
        assert ProfileData.from_dict(back.profile) == data

    def test_chrome_round_trip_carries_profile(self, tmp_path):
        data = ProfileData(hz=42.0)
        data.record(["repro.core.sweep.sweep"])
        trace = TraceData()
        path = tmp_path / "trace.json"
        write_chrome_trace(trace, path, profile=data)
        back = load_trace(path)
        assert back.profile is not None
        assert ProfileData.from_dict(back.profile) == data
