"""Engine mechanics: noqa suppression, fingerprints, and the baseline."""

from __future__ import annotations

from repro.lint.engine import Baseline, Finding, lint_source

BAD_ASSERT = "def f(x):\n    assert x > 0\n"
PATH = "src/repro/core/fixture.py"


class TestNoqa:
    def test_bare_noqa_suppresses_everything(self):
        source = "def f(x):\n    assert x > 0  # noqa\n"
        assert lint_source(source, PATH) == []

    def test_targeted_noqa_suppresses_named_code(self):
        source = "def f(x):\n    assert x > 0  # noqa: ASSERT001\n"
        assert lint_source(source, PATH) == []

    def test_targeted_noqa_keeps_other_codes(self):
        source = "def f(x):\n    assert x > 0  # noqa: DTYPE001\n"
        assert [f.code for f in lint_source(source, PATH)] == ["ASSERT001"]

    def test_multiple_codes(self):
        source = (
            "import numpy as np\n"
            "def f(n):\n"
            "    assert n > 0\n"
            "    return np.zeros(n)  # noqa: DTYPE001, ASSERT001\n"
        )
        assert [f.code for f in lint_source(source, PATH)] == ["ASSERT001"]


class TestFindings:
    def test_syntax_error_reported_not_raised(self):
        findings = lint_source("def f(:\n", PATH)
        assert [f.code for f in findings] == ["PARSE001"]

    def test_sorted_by_position(self):
        source = (
            "import numpy as np\n"
            "def f(n, acc=[]):\n"
            "    assert n > 0\n"
            "    return np.zeros(n)\n"
        )
        findings = lint_source(source, PATH)
        assert [f.line for f in findings] == sorted(f.line for f in findings)
        assert {f.code for f in findings} == {"MUT001", "ASSERT001", "DTYPE001"}

    def test_render_is_editor_clickable(self):
        (finding,) = lint_source(BAD_ASSERT, PATH)
        assert finding.render().startswith(f"{PATH}:2:")
        assert "ASSERT001" in finding.render()

    def test_select_and_ignore(self):
        source = "def f(n, acc=[]):\n    assert n > 0\n"
        only = lint_source(source, PATH, select=["MUT001"])
        assert [f.code for f in only] == ["MUT001"]
        rest = lint_source(source, PATH, ignore=["MUT001"])
        assert [f.code for f in rest] == ["ASSERT001"]


class TestFingerprints:
    def test_line_number_free(self):
        (a,) = lint_source(BAD_ASSERT, PATH)
        shifted = "# a comment\n\n\n" + BAD_ASSERT
        (b,) = lint_source(shifted, PATH)
        assert a.line != b.line
        assert a.fingerprint() == b.fingerprint()

    def test_distinguishes_path_code_and_text(self):
        base = Finding(PATH, 1, 0, "ASSERT001", "m", "assert x")
        assert base.fingerprint() != Finding(
            "src/repro/core/other.py", 1, 0, "ASSERT001", "m", "assert x"
        ).fingerprint()
        assert base.fingerprint() != Finding(
            PATH, 1, 0, "DTYPE001", "m", "assert x"
        ).fingerprint()
        assert base.fingerprint() != Finding(
            PATH, 1, 0, "ASSERT001", "m", "assert y"
        ).fingerprint()


class TestBaseline:
    def test_round_trip(self, tmp_path):
        findings = lint_source(BAD_ASSERT, PATH)
        path = tmp_path / "baseline.json"
        Baseline.from_findings(findings).save(path)
        loaded = Baseline.load(path)
        new, baselined = loaded.filter_new(findings)
        assert new == []
        assert baselined == len(findings)

    def test_missing_file_is_empty(self, tmp_path):
        baseline = Baseline.load(tmp_path / "nope.json")
        findings = lint_source(BAD_ASSERT, PATH)
        new, baselined = baseline.filter_new(findings)
        assert new == findings
        assert baselined == 0

    def test_count_budget(self):
        # Two identical lines share a fingerprint; baselining one of them
        # budgets exactly one occurrence, so the second is still new.
        twice = "def f(x):\n    assert x > 0\n    assert x > 0\n"
        both = lint_source(twice, PATH)
        assert len(both) == 2
        assert both[0].fingerprint() == both[1].fingerprint()

        baseline = Baseline.from_findings(both[:1])
        new, baselined = baseline.filter_new(both)
        assert baselined == 1
        assert len(new) == 1

    def test_new_findings_not_covered(self, tmp_path):
        baseline = Baseline.from_findings(lint_source(BAD_ASSERT, PATH))
        grown = BAD_ASSERT + "def g(y, acc=[]):\n    return acc\n"
        new, baselined = baseline.filter_new(lint_source(grown, PATH))
        assert baselined == 1
        assert [f.code for f in new] == ["MUT001"]
