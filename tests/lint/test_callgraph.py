"""Call-graph builder coverage for the tricky Python shapes it resolves:
decorated functions (``@snapshot_kernel``), ``functools.partial``,
methods reached through ``self``, and module-level dispatch dicts.
"""

from __future__ import annotations

import ast
import textwrap

from repro.lint.callgraph import build_callgraph, module_name_for_path


def graph_of(**sources: str):
    """Build a call graph from ``{filename_stem: source}`` fixtures."""
    trees = {
        f"repro/parallel/{name}.py": ast.parse(textwrap.dedent(src))
        for name, src in sources.items()
    }
    return build_callgraph(trees)


class TestModuleNames:
    def test_src_prefix_is_stripped(self):
        assert module_name_for_path("src/repro/core/sweep.py") == \
            "repro.core.sweep"

    def test_fixture_paths_resolve_identically(self):
        assert module_name_for_path("repro/parallel/bad.py") == \
            "repro.parallel.bad"

    def test_init_maps_to_package(self):
        assert module_name_for_path("src/repro/parallel/__init__.py") == \
            "repro.parallel"

    def test_non_repro_path_falls_back_to_stem(self):
        assert module_name_for_path("scratch/standalone.py") == "standalone"


class TestDirectCalls:
    def test_same_module_call_edge(self):
        g = graph_of(mod="""
            def helper(x):
                return x

            def entry(x):
                return helper(x)
        """)
        sites = g.calls_from("repro.parallel.mod.entry")
        assert [s.callee for s in sites] == ["repro.parallel.mod.helper"]
        assert sites[0].kind == "call"

    def test_cross_module_from_import(self):
        g = graph_of(
            util="""
                def shared(x):
                    return x
            """,
            mod="""
                from repro.parallel.util import shared

                def entry(x):
                    return shared(x)
            """,
        )
        assert [s.callee for s in g.calls_from("repro.parallel.mod.entry")] \
            == ["repro.parallel.util.shared"]

    def test_module_attribute_call(self):
        g = graph_of(
            util="""
                def shared(x):
                    return x
            """,
            mod="""
                import repro.parallel.util as util

                def entry(x):
                    return util.shared(x)
            """,
        )
        assert [s.callee for s in g.calls_from("repro.parallel.mod.entry")] \
            == ["repro.parallel.util.shared"]

    def test_unresolvable_names_produce_no_edges(self):
        g = graph_of(mod="""
            import os

            def entry(x):
                return os.getpid() + len(x)
        """)
        assert g.calls_from("repro.parallel.mod.entry") == []


class TestDecorators:
    def test_snapshot_kernel_decorator_is_recorded(self):
        g = graph_of(mod="""
            from repro.lint.sanitizer import snapshot_kernel

            @snapshot_kernel("graph", "state")
            def kernel(graph, state, out):
                out[0] = 1
        """)
        fn = g.functions["repro.parallel.mod.kernel"]
        assert "snapshot_kernel" in fn.decorators
        assert fn.snapshot_param_names() == {"graph", "state"}

    def test_bare_decorator_marks_every_param(self):
        g = graph_of(mod="""
            @snapshot_kernel
            def kernel(graph, state):
                return state
        """)
        fn = g.functions["repro.parallel.mod.kernel"]
        assert fn.snapshot_param_names() == {"graph", "state"}

    def test_unmarked_function_has_no_snapshot_params(self):
        g = graph_of(mod="""
            def plain(graph, state):
                return state
        """)
        fn = g.functions["repro.parallel.mod.plain"]
        assert fn.snapshot_params is None
        assert fn.snapshot_param_names() == frozenset()

    def test_decorated_function_still_gets_call_edges(self):
        g = graph_of(mod="""
            def helper(state):
                return state

            @snapshot_kernel("state")
            def kernel(graph, state):
                return helper(state)
        """)
        assert [s.callee for s in g.calls_from("repro.parallel.mod.kernel")] \
            == ["repro.parallel.mod.helper"]


class TestFunctoolsPartial:
    def test_partial_produces_a_partial_edge(self):
        g = graph_of(mod="""
            import functools

            def work(a, b):
                return a + b

            def entry():
                bound = functools.partial(work, 1)
                return bound(2)
        """)
        kinds = {
            (s.callee, s.kind)
            for s in g.calls_from("repro.parallel.mod.entry")
        }
        assert ("repro.parallel.mod.work", "partial") in kinds

    def test_bare_partial_import(self):
        g = graph_of(mod="""
            from functools import partial

            def work(a):
                return a

            def entry():
                return partial(work)
        """)
        sites = g.calls_from("repro.parallel.mod.entry")
        assert [(s.callee, s.kind) for s in sites] == \
            [("repro.parallel.mod.work", "partial")]

    def test_reachability_flows_through_partial(self):
        g = graph_of(mod="""
            from functools import partial

            def work(a):
                return a

            def entry():
                return partial(work)
        """)
        assert "repro.parallel.mod.work" in g.reachable(
            ["repro.parallel.mod.entry"]
        )


class TestSelfMethods:
    SOURCE = """
        class Executor:
            def __init__(self, n):
                self.n = n

            def _step(self, i):
                return i + self.n

            def run(self):
                return self._step(0)

        def entry():
            ex = Executor(3)
            return ex.run()
    """

    def test_self_call_resolves_to_method(self):
        g = graph_of(mod=self.SOURCE)
        sites = g.calls_from("repro.parallel.mod.Executor.run")
        assert [s.callee for s in sites] == \
            ["repro.parallel.mod.Executor._step"]
        assert sites[0].bound is True

    def test_constructor_call_resolves_to_init(self):
        g = graph_of(mod=self.SOURCE)
        callees = [
            s.callee for s in g.calls_from("repro.parallel.mod.entry")
        ]
        assert "repro.parallel.mod.Executor.__init__" in callees

    def test_inherited_method_resolves_through_base(self):
        g = graph_of(mod="""
            class Base:
                def step(self):
                    return 1

            class Child(Base):
                def run(self):
                    return self.step()
        """)
        sites = g.calls_from("repro.parallel.mod.Child.run")
        assert [s.callee for s in sites] == \
            ["repro.parallel.mod.Base.step"]


class TestDispatchDicts:
    def test_subscript_call_fans_out_to_all_values(self):
        g = graph_of(mod="""
            def serial(g):
                return g

            def threads(g):
                return g

            BACKENDS = {"serial": serial, "threads": threads}

            def entry(name, g):
                return BACKENDS[name](g)
        """)
        callees = sorted(
            s.callee for s in g.calls_from("repro.parallel.mod.entry")
        )
        assert callees == [
            "repro.parallel.mod.serial",
            "repro.parallel.mod.threads",
        ]

    def test_mixed_value_dict_is_not_a_dispatch_table(self):
        g = graph_of(mod="""
            def serial(g):
                return g

            CONFIG = {"backend": serial, "threads": 4}

            def entry(name, g):
                return CONFIG[name](g)
        """)
        assert g.calls_from("repro.parallel.mod.entry") == []


class TestNestedAndWorkers:
    def test_nested_function_gets_locals_qname(self):
        g = graph_of(mod="""
            def outer():
                def inner():
                    return 1
                return inner()
        """)
        assert "repro.parallel.mod.outer.<locals>.inner" in g.functions
        assert [s.callee for s in g.calls_from("repro.parallel.mod.outer")] \
            == ["repro.parallel.mod.outer.<locals>.inner"]

    def test_process_target_is_a_worker_entry(self):
        g = graph_of(mod="""
            import multiprocessing as mp

            def _child_loop(q):
                q.put(1)

            def spawn(ctx):
                return ctx.Process(target=_child_loop, args=())
        """)
        entries = g.worker_entries()
        assert "repro.parallel.mod._child_loop" in entries

    def test_worker_naming_convention_is_an_entry(self):
        g = graph_of(mod="""
            def _worker_main(n):
                return n
        """)
        assert "repro.parallel.mod._worker_main" in g.worker_entries()

    def test_path_between_finds_shortest_route(self):
        g = graph_of(mod="""
            def c():
                return 1

            def b():
                return c()

            def a():
                return b()
        """)
        assert g.path_between(
            "repro.parallel.mod.a", "repro.parallel.mod.c"
        ) == [
            "repro.parallel.mod.a",
            "repro.parallel.mod.b",
            "repro.parallel.mod.c",
        ]
