"""Pinned regressions: the analyzer guards the real backends' invariants.

PRs 4-6 already fixed the shm-escape / queue-protocol / snapshot bug
classes in ``parallel/process_backend.py`` and
``distributed/louvain_dist.py``, so the interprocedural analyzer finds
no true positives there today (the zero-finding state is itself pinned
below).  To keep it that way, each test *plants* the historical bug back
into the real source in memory and asserts the analyzer convicts it —
if a refactor ever removes one of the load-bearing lines, the gate
fires before the race does.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.lint.config import LintConfig
from repro.lint.engine import lint_sources

REPO_ROOT = Path(__file__).resolve().parents[2]
IP_CODES = ("SNAP101", "SHM001", "LOCK001", "QPROTO001", "XPA101")


@pytest.fixture(scope="module")
def real_sources() -> dict[str, str]:
    files = {}
    for rel in ("src/repro/parallel", "src/repro/distributed",
                "src/repro/core", "src/repro/utils", "src/repro/graph"):
        for p in sorted((REPO_ROOT / rel).rglob("*.py")):
            files[p.relative_to(REPO_ROOT).as_posix()] = p.read_text(
                encoding="utf-8"
            )
    return files


def ip_findings(files, config=None):
    config = config or LintConfig(
        # Mirror the committed pyproject seams so only genuine
        # regressions surface (tested separately in test_config.py).
        xpa101_allow=(
            "repro.graph.csr",
            "repro.utils.arrays.renumber_labels",
            "repro.parallel.chunking",
        ),
    )
    return [
        f for f in lint_sources(files, config=config) if f.code in IP_CODES
    ]


def mutate(files: dict, path: str, old: str, new: str) -> dict:
    src = files[path]
    assert old in src, (
        f"pinned source line moved in {path}: {old!r} not found — update "
        "this regression test alongside the refactor"
    )
    out = dict(files)
    out[path] = src.replace(old, new, 1)
    return out


class TestCurrentTreeIsClean:
    def test_no_interprocedural_findings(self, real_sources):
        findings = ip_findings(real_sources)
        assert findings == [], [f.render() for f in findings]


class TestProcessBackendGuards:
    PATH = "src/repro/parallel/process_backend.py"

    def test_dropping_result_copy_is_caught(self, real_sources):
        # The .copy() on the targets view is load-bearing: without it the
        # worker would hand out a live shm view whose segment it may
        # close/unlink while the parent still holds the array.
        mutated = mutate(
            real_sources, self.PATH,
            'self._views["targets"][:count].copy()',
            'self._views["targets"][:count]',
        )
        findings = ip_findings(mutated)
        assert any(
            f.code == "SHM001" and f.path.endswith("process_backend.py")
            for f in findings
        ), [f.render() for f in findings]

    def test_untimed_worker_get_is_caught(self, real_sources):
        # The timed get is the PR-4 hang fix; QUEUE001 pins the
        # queue-named shape (same gate, per-function tier).
        mutated = mutate(
            real_sources, self.PATH,
            "task_q.get(timeout=_WORKER_POLL_S)",
            "task_q.get()",
        )
        findings = lint_sources(mutated)
        assert any(
            f.code == "QUEUE001" and f.path.endswith("process_backend.py")
            for f in findings
        )

    def test_hidden_untimed_get_is_caught_by_dataflow(self, real_sources):
        # Hide an untimed get behind a helper whose parameter name gives
        # QUEUE001's heuristic nothing to match: QPROTO001 must convict
        # via taint (self._done_q is queue-tainted through the ctor).
        mutated = mutate(
            real_sources, self.PATH,
            "msg = self._done_q.get(timeout=self.policy.liveness_poll)",
            "msg = _next_message(self._done_q)",
        )
        mutated = mutate(
            mutated, self.PATH,
            "def _worker_main(",
            "def _next_message(ch):\n"
            "    return ch.get()\n\n"
            "def _worker_main(",
        )
        findings = ip_findings(mutated)
        assert any(
            f.code == "QPROTO001" and f.path.endswith("process_backend.py")
            for f in findings
        ), [f.render() for f in findings]
        # ...and the per-function tier alone stays blind to it.
        assert not any(
            f.code == "QUEUE001" and f.path.endswith("process_backend.py")
            for f in lint_sources(mutated)
        )

    def test_fork_shared_global_is_caught(self, real_sources):
        # Plant the classic fork-divergence bug: workers "report" progress
        # into a module dict the parent then reads.
        src = real_sources[self.PATH]
        planted = src + (
            "\n\n_PROGRESS = {}\n\n"
            "def _note_progress(worker_id, count):\n"
            "    _PROGRESS[worker_id] = count\n\n"
            "def read_progress():\n"
            "    return dict(_PROGRESS)\n"
        )
        # Wire the write into the worker loop.
        planted = planted.replace(
            "def _worker_main(",
            "def _worker_helper_for_test(worker_id, count):\n"
            "    _note_progress(worker_id, count)\n\n"
            "def _worker_main(",
            1,
        )
        mutated = dict(real_sources)
        mutated[self.PATH] = planted
        findings = ip_findings(mutated)
        assert any(f.code == "LOCK001" for f in findings), \
            [f.render() for f in findings]


class TestDistributedGuards:
    PATH = "src/repro/distributed/louvain_dist.py"

    def test_snapshot_write_in_kernel_helper_is_caught(self, real_sources):
        # _rank_local_targets is @snapshot_kernel("graph", "state"): give
        # it a helper that commits moves in place — the historical
        # Gauss-Seidel leak the BSP discipline exists to prevent.
        mutated = mutate(
            real_sources, self.PATH,
            '@snapshot_kernel("graph", "state")',
            "def _eager_commit(state, active):\n"
            "    state.comm[active] = 0\n\n\n"
            '@snapshot_kernel("graph", "state")',
        )
        mutated = mutate(
            mutated, self.PATH,
            "    return compute_targets_vectorized(",
            "    _eager_commit(state, active)\n"
            "    return compute_targets_vectorized(",
        )
        findings = ip_findings(mutated)
        assert any(
            f.code == "SNAP101" and f.path.endswith("louvain_dist.py")
            for f in findings
        ), [f.render() for f in findings]
