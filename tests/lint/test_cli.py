"""CLI gate: exit statuses, the baseline workflow, and the real tree."""

from __future__ import annotations

import io
import json
from pathlib import Path

from repro.lint.cli import main

REPO_ROOT = Path(__file__).resolve().parents[2]

#: A fixture file violating each of the race rules at once: a snapshot
#: write in a marked kernel, module-level np.random, a set feeding an
#: array, and a worker scattering past the accumulator.
BAD_SOURCE = '''\
import numpy as np


@snapshot_kernel("state")
def kernel(graph, state, vertices):
    state.comm[vertices] = 0
    return state.comm[vertices]


def shuffle(order):
    np.random.shuffle(order)


def labels(values):
    return np.array(list(set(values)))


def _worker_main(shared, idx, vals):
    np.add.at(shared, idx, vals)
'''


def write_bad_fixture(tmp_path: Path) -> Path:
    # The synthetic path lives under repro/parallel/ so every scoped rule
    # (SNAP001/RNG001/DET001/ATOM001) applies to it.
    pkg = tmp_path / "repro" / "parallel"
    pkg.mkdir(parents=True)
    target = pkg / "bad.py"
    target.write_text(BAD_SOURCE, encoding="utf-8")
    return target


class TestExitStatus:
    def test_bad_fixture_fails(self, tmp_path):
        target = write_bad_fixture(tmp_path)
        out = io.StringIO()
        assert main([str(target), "--no-baseline"], out=out) == 1
        text = out.getvalue()
        for code in ("SNAP001", "RNG001", "DET001", "ATOM001"):
            assert code in text

    def test_clean_fixture_passes(self, tmp_path):
        clean = tmp_path / "clean.py"
        clean.write_text("def f(x):\n    return x + 1\n", encoding="utf-8")
        assert main([str(clean), "--no-baseline"], out=io.StringIO()) == 0

    def test_select_narrows_the_gate(self, tmp_path):
        target = write_bad_fixture(tmp_path)
        out = io.StringIO()
        assert main(
            [str(target), "--no-baseline", "--select", "SNAP001"], out=out
        ) == 1
        assert "SNAP001" in out.getvalue()
        assert "RNG001" not in out.getvalue()

    def test_ignore_all_codes_passes(self, tmp_path):
        target = write_bad_fixture(tmp_path)
        code = main(
            [str(target), "--no-baseline",
             "--ignore", "SNAP001,RNG001,DET001,ATOM001"],
            out=io.StringIO(),
        )
        assert code == 0


class TestBaselineWorkflow:
    def test_write_then_rerun_passes(self, tmp_path):
        target = write_bad_fixture(tmp_path)
        baseline = tmp_path / "baseline.json"

        out = io.StringIO()
        assert main(
            [str(target), "--baseline", str(baseline), "--write-baseline"],
            out=out,
        ) == 0
        assert baseline.exists()

        # Accepted findings no longer fail the gate...
        assert main(
            [str(target), "--baseline", str(baseline)], out=io.StringIO()
        ) == 0

        # ...but a fresh violation does.
        target.write_text(
            BAD_SOURCE + "\n\ndef g(x, acc=[]):\n    return acc\n",
            encoding="utf-8",
        )
        out = io.StringIO()
        assert main(
            [str(target), "--baseline", str(baseline)], out=out
        ) == 1
        assert "MUT001" in out.getvalue()

    def test_no_baseline_overrides_file(self, tmp_path):
        target = write_bad_fixture(tmp_path)
        baseline = tmp_path / "baseline.json"
        main(
            [str(target), "--baseline", str(baseline), "--write-baseline"],
            out=io.StringIO(),
        )
        assert main(
            [str(target), "--baseline", str(baseline), "--no-baseline"],
            out=io.StringIO(),
        ) == 1


class TestOutputFormats:
    def test_json_format(self, tmp_path):
        target = write_bad_fixture(tmp_path)
        out = io.StringIO()
        assert main(
            [str(target), "--no-baseline", "--format", "json"], out=out
        ) == 1
        payload = json.loads(out.getvalue())
        assert payload["ok"] is False
        assert payload["num_findings"] == len(payload["new"]) > 0
        codes = {f["code"] for f in payload["new"]}
        assert {"SNAP001", "RNG001", "DET001", "ATOM001"} <= codes

    def test_list_rules(self):
        out = io.StringIO()
        assert main(["--list-rules"], out=out) == 0
        text = out.getvalue()
        for code in ("SNAP001", "RNG001", "DET001", "ATOM001",
                     "MUT001", "ASSERT001", "DTYPE001"):
            assert code in text

    def test_quiet_prints_summary_only(self, tmp_path):
        target = write_bad_fixture(tmp_path)
        out = io.StringIO()
        assert main([str(target), "--no-baseline", "-q"], out=out) == 1
        text = out.getvalue()
        assert "new finding(s)" in text
        assert "bad.py:" not in text


class TestRealTree:
    """The shipped tree must be clean against its committed baseline."""

    def test_src_is_clean(self, monkeypatch):
        monkeypatch.chdir(REPO_ROOT)
        assert (REPO_ROOT / ".lint-baseline.json").exists()
        assert main(["src", "-q"], out=io.StringIO()) == 0
