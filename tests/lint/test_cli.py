"""CLI gate: exit statuses, the baseline workflow, and the real tree."""

from __future__ import annotations

import io
import json
import textwrap
import time
from collections import Counter
from pathlib import Path

from repro.lint.cli import main
from repro.lint.engine import lint_sources

REPO_ROOT = Path(__file__).resolve().parents[2]

#: A fixture file violating each of the race rules at once: a snapshot
#: write in a marked kernel, module-level np.random, a set feeding an
#: array, and a worker scattering past the accumulator.
BAD_SOURCE = '''\
import numpy as np


@snapshot_kernel("state")
def kernel(graph, state, vertices):
    state.comm[vertices] = 0
    return state.comm[vertices]


def shuffle(order):
    np.random.shuffle(order)


def labels(values):
    return np.array(list(set(values)))


def _worker_main(shared, idx, vals):
    np.add.at(shared, idx, vals)
'''


def write_bad_fixture(tmp_path: Path) -> Path:
    # The synthetic path lives under repro/parallel/ so every scoped rule
    # (SNAP001/RNG001/DET001/ATOM001) applies to it.
    pkg = tmp_path / "repro" / "parallel"
    pkg.mkdir(parents=True)
    target = pkg / "bad.py"
    target.write_text(BAD_SOURCE, encoding="utf-8")
    return target


class TestExitStatus:
    def test_bad_fixture_fails(self, tmp_path):
        target = write_bad_fixture(tmp_path)
        out = io.StringIO()
        assert main([str(target), "--no-baseline"], out=out) == 1
        text = out.getvalue()
        for code in ("SNAP001", "RNG001", "DET001", "ATOM001"):
            assert code in text

    def test_clean_fixture_passes(self, tmp_path):
        clean = tmp_path / "clean.py"
        clean.write_text("def f(x):\n    return x + 1\n", encoding="utf-8")
        assert main([str(clean), "--no-baseline"], out=io.StringIO()) == 0

    def test_select_narrows_the_gate(self, tmp_path):
        target = write_bad_fixture(tmp_path)
        out = io.StringIO()
        assert main(
            [str(target), "--no-baseline", "--select", "SNAP001"], out=out
        ) == 1
        assert "SNAP001" in out.getvalue()
        assert "RNG001" not in out.getvalue()

    def test_ignore_all_codes_passes(self, tmp_path):
        target = write_bad_fixture(tmp_path)
        code = main(
            [str(target), "--no-baseline",
             "--ignore", "SNAP001,RNG001,DET001,ATOM001"],
            out=io.StringIO(),
        )
        assert code == 0

    def test_empty_directory_is_a_usage_error(self, tmp_path):
        # A typo'd path silently linting zero files would let the gate
        # pass vacuously; it must fail loudly with status 2 instead.
        empty = tmp_path / "nothing_here"
        empty.mkdir()
        out = io.StringIO()
        assert main([str(empty), "--no-baseline"], out=out) == 2
        assert "no Python files found" in out.getvalue()
        assert str(empty) in out.getvalue()

    def test_directory_without_python_files_is_a_usage_error(self, tmp_path):
        (tmp_path / "notes.txt").write_text("hi\n", encoding="utf-8")
        assert main([str(tmp_path), "--no-baseline"],
                    out=io.StringIO()) == 2


class TestBaselineWorkflow:
    def test_write_then_rerun_passes(self, tmp_path):
        target = write_bad_fixture(tmp_path)
        baseline = tmp_path / "baseline.json"

        out = io.StringIO()
        assert main(
            [str(target), "--baseline", str(baseline), "--write-baseline"],
            out=out,
        ) == 0
        assert baseline.exists()

        # Accepted findings no longer fail the gate...
        assert main(
            [str(target), "--baseline", str(baseline)], out=io.StringIO()
        ) == 0

        # ...but a fresh violation does.
        target.write_text(
            BAD_SOURCE + "\n\ndef g(x, acc=[]):\n    return acc\n",
            encoding="utf-8",
        )
        out = io.StringIO()
        assert main(
            [str(target), "--baseline", str(baseline)], out=out
        ) == 1
        assert "MUT001" in out.getvalue()

    def test_no_baseline_overrides_file(self, tmp_path):
        target = write_bad_fixture(tmp_path)
        baseline = tmp_path / "baseline.json"
        main(
            [str(target), "--baseline", str(baseline), "--write-baseline"],
            out=io.StringIO(),
        )
        assert main(
            [str(target), "--baseline", str(baseline), "--no-baseline"],
            out=io.StringIO(),
        ) == 1


class TestOutputFormats:
    def test_json_format(self, tmp_path):
        target = write_bad_fixture(tmp_path)
        out = io.StringIO()
        assert main(
            [str(target), "--no-baseline", "--format", "json"], out=out
        ) == 1
        payload = json.loads(out.getvalue())
        assert payload["ok"] is False
        assert payload["num_findings"] == len(payload["new"]) > 0
        codes = {f["code"] for f in payload["new"]}
        assert {"SNAP001", "RNG001", "DET001", "ATOM001"} <= codes

    def test_list_rules(self):
        out = io.StringIO()
        assert main(["--list-rules"], out=out) == 0
        text = out.getvalue()
        for code in ("SNAP001", "RNG001", "DET001", "ATOM001",
                     "MUT001", "ASSERT001", "DTYPE001"):
            assert code in text

    def test_quiet_prints_summary_only(self, tmp_path):
        target = write_bad_fixture(tmp_path)
        out = io.StringIO()
        assert main([str(target), "--no-baseline", "-q"], out=out) == 1
        text = out.getvalue()
        assert "new finding(s)" in text
        assert "bad.py:" not in text


class TestMigrateBaseline:
    def write_v1_baseline(self, target: Path, baseline: Path) -> None:
        # Reconstruct what a PR-5-era run would have committed: the same
        # findings keyed under the legacy (pre-call-path) fingerprints.
        findings = lint_sources({
            str(target): target.read_text(encoding="utf-8")
        })
        assert findings
        counts = Counter(f.fingerprint_v1() for f in findings)
        baseline.write_text(json.dumps({
            "version": 1,
            "tool": "repro.lint",
            "findings": {fp: {"count": n} for fp, n in counts.items()},
        }), encoding="utf-8")

    def test_v1_fingerprints_still_suppress_before_migration(
            self, tmp_path):
        target = write_bad_fixture(tmp_path)
        baseline = tmp_path / "baseline.json"
        self.write_v1_baseline(target, baseline)
        assert main(
            [str(target), "--baseline", str(baseline)], out=io.StringIO()
        ) == 0

    def test_migration_carries_suppressions_and_drops_stale(
            self, tmp_path):
        target = write_bad_fixture(tmp_path)
        baseline = tmp_path / "baseline.json"
        self.write_v1_baseline(target, baseline)
        # Plant a stale entry for a finding that no longer exists.
        data = json.loads(baseline.read_text(encoding="utf-8"))
        data["findings"]["f" * 16] = {"count": 1}
        baseline.write_text(json.dumps(data), encoding="utf-8")

        out = io.StringIO()
        assert main(
            ["migrate-baseline", str(target), "--baseline", str(baseline)],
            out=out,
        ) == 0
        assert "carried over" in out.getvalue()
        assert "1 stale entry dropped" in out.getvalue()

        migrated = json.loads(baseline.read_text(encoding="utf-8"))
        assert migrated["version"] == 2
        findings = lint_sources({
            str(target): target.read_text(encoding="utf-8")
        })
        assert set(migrated["findings"]) == {
            f.fingerprint() for f in findings
        }
        # The migrated baseline still suppresses the gate.
        assert main(
            [str(target), "--baseline", str(baseline)], out=io.StringIO()
        ) == 0

    def test_migrating_current_schema_is_a_noop(self, tmp_path):
        target = write_bad_fixture(tmp_path)
        baseline = tmp_path / "baseline.json"
        main([str(target), "--baseline", str(baseline), "--write-baseline"],
             out=io.StringIO())
        out = io.StringIO()
        assert main(
            ["migrate-baseline", str(target), "--baseline", str(baseline)],
            out=out,
        ) == 0
        assert "nothing to migrate" in out.getvalue()

    def test_missing_baseline_is_a_usage_error(self, tmp_path):
        out = io.StringIO()
        assert main(
            ["migrate-baseline", "--baseline",
             str(tmp_path / "absent.json")],
            out=out,
        ) == 2
        assert "no baseline file" in out.getvalue()


class TestSarifOutput:
    def test_sarif_side_file(self, tmp_path):
        target = write_bad_fixture(tmp_path)
        sarif = tmp_path / "lint.sarif"
        assert main(
            [str(target), "--no-baseline", "--sarif", str(sarif), "-q"],
            out=io.StringIO(),
        ) == 1
        data = json.loads(sarif.read_text(encoding="utf-8"))
        assert data["version"] == "2.1.0"
        ids = {r["ruleId"] for r in data["runs"][0]["results"]}
        assert "SNAP001" in ids

    def test_sarif_format_on_stdout(self, tmp_path):
        target = write_bad_fixture(tmp_path)
        out = io.StringIO()
        assert main(
            [str(target), "--no-baseline", "--format", "sarif"], out=out
        ) == 1
        data = json.loads(out.getvalue())
        assert data["runs"][0]["tool"]["driver"]["name"] == "repro-lint"


class TestConfigFlags:
    def test_warning_severity_reports_without_failing(self, tmp_path):
        target = write_bad_fixture(tmp_path)
        config = tmp_path / "pyproject.toml"
        config.write_text(textwrap.dedent("""
            [tool.repro-lint.severity]
            SNAP001 = "warning"
            RNG001 = "warning"
            DET001 = "warning"
            ATOM001 = "warning"
        """), encoding="utf-8")
        out = io.StringIO()
        assert main(
            [str(target), "--no-baseline", "--config", str(config)],
            out=out,
        ) == 0
        assert "4 warning(s)" in out.getvalue()

    def test_invalid_config_is_a_usage_error(self, tmp_path):
        target = write_bad_fixture(tmp_path)
        config = tmp_path / "pyproject.toml"
        config.write_text(
            "[tool.repro-lint.severity]\nNOPE999 = 'warning'\n",
            encoding="utf-8",
        )
        out = io.StringIO()
        assert main(
            [str(target), "--config", str(config)], out=out
        ) == 2
        assert "error:" in out.getvalue()

    def test_no_config_ignores_pyproject(self, tmp_path, monkeypatch):
        target = write_bad_fixture(tmp_path)
        (tmp_path / "pyproject.toml").write_text(textwrap.dedent("""
            [tool.repro-lint.severity]
            SNAP001 = "off"
        """), encoding="utf-8")
        monkeypatch.chdir(tmp_path)
        out = io.StringIO()
        assert main([str(target), "--no-baseline", "--no-config"],
                    out=out) == 1
        assert "SNAP001" in out.getvalue()


class TestReproCliDelegation:
    def test_repro_lint_subcommand_forwards(self, tmp_path, capsys):
        from repro.cli import main as repro_main

        clean = tmp_path / "clean.py"
        clean.write_text("def f(x):\n    return x + 1\n", encoding="utf-8")
        assert repro_main(["lint", str(clean), "--no-baseline"]) == 0
        bad = write_bad_fixture(tmp_path)
        assert repro_main(["lint", str(bad), "--no-baseline"]) == 1
        assert "SNAP001" in capsys.readouterr().out


class TestRealTree:
    """The shipped tree must be clean against its committed baseline."""

    def test_src_is_clean(self, monkeypatch):
        monkeypatch.chdir(REPO_ROOT)
        assert (REPO_ROOT / ".lint-baseline.json").exists()
        assert main(["src", "-q"], out=io.StringIO()) == 0

    def test_linter_tree_is_self_clean(self, monkeypatch):
        # The analyzer must hold itself to its own rules (mirrored by the
        # lint-self-check CI job).
        monkeypatch.chdir(REPO_ROOT)
        assert main(["src/repro/lint", "-q", "--no-baseline"],
                    out=io.StringIO()) == 0

    def test_full_tree_fits_the_timing_budget(self, monkeypatch):
        # CI budget: the whole gate (parse + call graph + fixpoint +
        # rules over src/ and tests/) must stay under 30 seconds.
        monkeypatch.chdir(REPO_ROOT)
        start = time.monotonic()
        main(["src", "-q"], out=io.StringIO())
        elapsed = time.monotonic() - start
        assert elapsed < 30.0, f"lint gate took {elapsed:.1f}s (budget 30s)"
