"""[tool.repro-lint] configuration: parsing, validation, discovery."""

from __future__ import annotations

import textwrap

import pytest

from repro.lint.config import (
    ConfigError,
    LintConfig,
    load_config,
    parse_config,
)

KNOWN = frozenset({"SNAP101", "XPA101", "DTYPE001"})


def parse(toml: str) -> LintConfig:
    return parse_config(
        textwrap.dedent(toml).encode("utf-8"), known_codes=KNOWN
    )


class TestParsing:
    def test_empty_pyproject_gives_defaults(self):
        config = parse("[project]\nname = 'x'\n")
        assert config.severity_of("SNAP101") == "error"
        assert config.xpa101_allow == ()

    def test_severity_overrides(self):
        config = parse("""
            [tool.repro-lint.severity]
            DTYPE001 = "warning"
            SNAP101 = "off"
        """)
        assert config.severity_of("DTYPE001") == "warning"
        assert not config.enabled("SNAP101")
        assert config.severity_of("XPA101") == "error"

    def test_lowercase_code_is_normalized(self):
        config = parse("""
            [tool.repro-lint.severity]
            dtype001 = "warning"
        """)
        assert config.severity_of("DTYPE001") == "warning"

    def test_xpa_allowlist(self):
        config = parse("""
            [tool.repro-lint.xpa101]
            allow = ["repro.graph.csr", "repro.utils.arrays.renumber_labels"]
        """)
        assert config.xpa101_allow == (
            "repro.graph.csr", "repro.utils.arrays.renumber_labels",
        )

    def test_unknown_code_is_rejected(self):
        with pytest.raises(ConfigError, match="unknown rule code"):
            parse("""
                [tool.repro-lint.severity]
                NOPE999 = "warning"
            """)

    def test_bad_severity_is_rejected(self):
        with pytest.raises(ConfigError, match="severity must be one of"):
            parse("""
                [tool.repro-lint.severity]
                SNAP101 = "loud"
            """)

    def test_bad_allow_entry_is_rejected(self):
        with pytest.raises(ConfigError, match="dotted-name"):
            parse("""
                [tool.repro-lint.xpa101]
                allow = [3]
            """)


class TestDiscovery:
    def test_load_walks_up_to_pyproject(self, tmp_path):
        (tmp_path / "pyproject.toml").write_text(textwrap.dedent("""
            [tool.repro-lint.severity]
            DTYPE001 = "warning"
        """), encoding="utf-8")
        nested = tmp_path / "src" / "repro"
        nested.mkdir(parents=True)
        config = load_config(nested, known_codes=KNOWN)
        assert config.severity_of("DTYPE001") == "warning"

    def test_missing_pyproject_gives_defaults(self, tmp_path):
        config = load_config(tmp_path, known_codes=KNOWN)
        assert config == LintConfig()

    def test_direct_file_path(self, tmp_path):
        target = tmp_path / "pyproject.toml"
        target.write_text(textwrap.dedent("""
            [tool.repro-lint.xpa101]
            allow = ["repro.graph.csr"]
        """), encoding="utf-8")
        config = load_config(target, known_codes=KNOWN)
        assert config.xpa101_allow == ("repro.graph.csr",)

    def test_repo_pyproject_parses_with_all_registered_codes(self):
        # The committed configuration must load against the real rule
        # registry (a typo'd code or severity fails the gate loudly).
        from pathlib import Path

        from repro.lint.iprules import PROJECT_RULES
        from repro.lint.rules import all_codes

        root = Path(__file__).resolve().parents[2]
        known = frozenset(all_codes()) | {r.code for r in PROJECT_RULES}
        config = parse_config(
            (root / "pyproject.toml").read_bytes(), known_codes=known
        )
        assert "repro.graph.csr" in config.xpa101_allow
