"""SARIF 2.1.0 export: structure, levels, fingerprints, call paths."""

from __future__ import annotations

import json
import textwrap

from repro.lint.engine import Finding, lint_source
from repro.lint.sarif import to_sarif, write_sarif


def finding(**overrides) -> Finding:
    base = dict(
        path="src/repro/parallel/x.py", line=10, col=4,
        code="SHM001", message="view escapes", source_line="return view",
    )
    base.update(overrides)
    return Finding(**base)


class TestStructure:
    def test_top_level_shape(self):
        log = to_sarif([finding()])
        assert log["version"] == "2.1.0"
        run = log["runs"][0]
        assert run["tool"]["driver"]["name"] == "repro-lint"
        assert len(run["results"]) == 1

    def test_result_location_is_one_based(self):
        result = to_sarif([finding(line=7, col=0)])["runs"][0]["results"][0]
        region = result["locations"][0]["physicalLocation"]["region"]
        assert region["startLine"] == 7
        assert region["startColumn"] == 1

    def test_rule_descriptors_are_deduplicated(self):
        log = to_sarif([finding(), finding(line=20)])
        rules = log["runs"][0]["tool"]["driver"]["rules"]
        assert [r["id"] for r in rules] == ["SHM001"]

    def test_severity_maps_to_level(self):
        results = to_sarif([
            finding(severity="warning"),
            finding(line=11),
        ])["runs"][0]["results"]
        assert [r["level"] for r in results] == ["warning", "error"]

    def test_fingerprint_is_stable_identity(self):
        f = finding()
        result = to_sarif([f])["runs"][0]["results"][0]
        assert result["partialFingerprints"]["reproLint/v2"] == \
            f.fingerprint()

    def test_call_path_lands_in_message(self):
        f = finding(call_path=("repro.a.f", "repro.b.g"))
        result = to_sarif([f])["runs"][0]["results"][0]
        assert "repro.a.f -> repro.b.g" in result["message"]["text"]

    def test_empty_findings_still_valid(self):
        log = to_sarif([])
        assert log["runs"][0]["results"] == []
        assert log["runs"][0]["tool"]["driver"]["rules"] == []


class TestRoundTrip:
    def test_write_sarif_produces_parseable_json(self, tmp_path):
        target = tmp_path / "lint.sarif"
        write_sarif([finding()], target)
        data = json.loads(target.read_text(encoding="utf-8"))
        assert data["runs"][0]["results"][0]["ruleId"] == "SHM001"

    def test_real_findings_export(self, tmp_path):
        findings = lint_source(textwrap.dedent("""
            def _commit(state, dst):
                state.comm[0] = dst

            @snapshot_kernel("state")
            def kernel(graph, state, dst):
                _commit(state, dst)
        """), "repro/parallel/fixture.py")
        assert any(f.code == "SNAP101" for f in findings)
        target = tmp_path / "lint.sarif"
        write_sarif(findings, target)
        data = json.loads(target.read_text(encoding="utf-8"))
        ids = {r["ruleId"] for r in data["runs"][0]["results"]}
        assert "SNAP101" in ids
