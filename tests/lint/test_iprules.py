"""Interprocedural rule fixtures: each rule has triggering (positive)
and passing (negative) shapes, exercised through the public
``lint_source``/``lint_sources`` engine entry points so noqa and
severity handling apply exactly as in production runs.
"""

from __future__ import annotations

import textwrap

from repro.lint.config import LintConfig
from repro.lint.engine import lint_source, lint_sources


def codes(source: str, path: str = "repro/parallel/fixture.py",
          config: "LintConfig | None" = None) -> list[str]:
    found = [
        f.code
        for f in lint_source(textwrap.dedent(source), path, config=config)
    ]
    assert "PARSE001" not in found, "fixture failed to parse"
    return found


def multi_codes(config: "LintConfig | None" = None, **sources: str):
    files = {
        f"repro/parallel/{name}.py": textwrap.dedent(src)
        for name, src in sources.items()
    }
    found = [f.code for f in lint_sources(files, config=config)]
    assert "PARSE001" not in found, "fixture failed to parse"
    return found


# ---------------------------------------------------------------------------
# SNAP101 — snapshot writes through callees / aliases
# ---------------------------------------------------------------------------
class TestSnap101:
    def test_write_via_callee_triggers(self):
        bad = """
            def _commit(state, dst):
                state.comm[0] = dst

            @snapshot_kernel("state")
            def kernel(graph, state, dst):
                _commit(state, dst)
        """
        assert "SNAP101" in codes(bad)
        # ...and SNAP001 alone cannot see it (regression: the gap that
        # motivated the interprocedural tier).
        assert "SNAP001" not in codes(bad)

    def test_write_two_calls_deep_triggers(self):
        bad = """
            def _sink(arr):
                arr[0] = 1

            def _mid(state):
                _sink(state.comm)

            @snapshot_kernel("state")
            def kernel(graph, state):
                _mid(state)
        """
        assert "SNAP101" in codes(bad)

    def test_alias_write_inside_kernel_triggers(self):
        bad = """
            @snapshot_kernel("state")
            def kernel(graph, state):
                view = state.comm
                view[0] = 1
        """
        assert "SNAP101" in codes(bad)

    def test_cross_module_write_triggers(self):
        found = multi_codes(
            helpers="""
                def commit(state, dst):
                    state.comm[dst] = dst
            """,
            kernel="""
                from repro.parallel.helpers import commit

                @snapshot_kernel("state")
                def kernel(graph, state, dst):
                    commit(state, dst)
            """,
        )
        assert "SNAP101" in found

    def test_callee_writing_its_own_buffer_is_fine(self):
        good = """
            def _fill(out):
                out[0] = 1

            @snapshot_kernel("state")
            def kernel(graph, state, out):
                _fill(out)
                return state.comm[0]
        """
        assert "SNAP101" not in codes(good)

    def test_copy_at_the_boundary_is_fine(self):
        good = """
            def _commit(arr, dst):
                arr[0] = dst

            @snapshot_kernel("state")
            def kernel(graph, state, dst):
                _commit(state.comm.copy(), dst)
        """
        assert "SNAP101" not in codes(good)

    def test_unmarked_caller_is_fine(self):
        good = """
            def _commit(state, dst):
                state.comm[0] = dst

            def apply_moves(graph, state, dst):
                _commit(state, dst)
        """
        assert "SNAP101" not in codes(good)


# ---------------------------------------------------------------------------
# SHM001 — shared-memory views escaping their scope
# ---------------------------------------------------------------------------
SHM_PRELUDE = """
            import numpy as np
            from multiprocessing.shared_memory import SharedMemory
"""


class TestShm001:
    def test_returning_a_view_triggers(self):
        bad = SHM_PRELUDE + """
            def attach(name, n):
                seg = SharedMemory(name=name)
                return np.ndarray((n,), dtype=np.int64, buffer=seg.buf)
        """
        assert "SHM001" in codes(bad)

    def test_returning_a_copy_is_fine(self):
        good = SHM_PRELUDE + """
            def snapshot(name, n):
                seg = SharedMemory(name=name)
                view = np.ndarray((n,), dtype=np.int64, buffer=seg.buf)
                return view.copy()
        """
        assert "SHM001" not in codes(good)

    def test_returning_the_segment_is_ownership_transfer(self):
        good = SHM_PRELUDE + """
            def create(name, size):
                return SharedMemory(name=name, create=True, size=size)
        """
        assert "SHM001" not in codes(good)

    def test_escaping_closure_triggers(self):
        bad = SHM_PRELUDE + """
            def worker(name, n):
                seg = SharedMemory(name=name)
                view = np.ndarray((n,), dtype=np.int64, buffer=seg.buf)

                def reader():
                    return view[0]

                return reader
        """
        assert "SHM001" in codes(bad)

    def test_local_closure_is_fine(self):
        good = SHM_PRELUDE + """
            def worker(name, n):
                seg = SharedMemory(name=name)
                view = np.ndarray((n,), dtype=np.int64, buffer=seg.buf)

                def total():
                    return int(view.sum())

                return total()
        """
        assert "SHM001" not in codes(good)

    def test_storing_view_in_non_owner_triggers(self):
        bad = SHM_PRELUDE + """
            class Plan:
                def __init__(self, data):
                    self._data = data

            def worker(name, n):
                seg = SharedMemory(name=name)
                view = np.ndarray((n,), dtype=np.int64, buffer=seg.buf)
                return Plan(view)
        """
        assert "SHM001" in codes(bad)

    def test_storing_view_in_lifetime_owner_is_fine(self):
        good = SHM_PRELUDE + """
            class Executor:
                def __init__(self, data):
                    self._data = data

                def close(self):
                    self._data = None

            def worker(name, n):
                seg = SharedMemory(name=name)
                view = np.ndarray((n,), dtype=np.int64, buffer=seg.buf)
                return Executor(view)
        """
        assert "SHM001" not in codes(good)


# ---------------------------------------------------------------------------
# LOCK001 — module state shared across the fork boundary
# ---------------------------------------------------------------------------
class TestLock001:
    def test_worker_write_parent_read_triggers(self):
        bad = """
            _PROGRESS = {}

            def _worker_main(wid, n):
                _PROGRESS[wid] = n

            def report():
                return dict(_PROGRESS)
        """
        assert "LOCK001" in codes(bad)

    def test_worker_private_global_is_fine(self):
        good = """
            _SCRATCH = {}

            def _worker_main(wid, n):
                _SCRATCH[wid] = n
                return _SCRATCH[wid]
        """
        assert "LOCK001" not in codes(good)

    def test_parent_only_global_is_fine(self):
        good = """
            _REGISTRY = {}

            def register(name, backend):
                _REGISTRY[name] = backend

            def lookup(name):
                return _REGISTRY[name]
        """
        assert "LOCK001" not in codes(good)

    def test_immutable_global_is_fine(self):
        good = """
            _LIMIT = 64

            def _worker_main(wid):
                return _LIMIT + wid

            def parent():
                return _LIMIT
        """
        assert "LOCK001" not in codes(good)

    def test_process_target_counts_as_worker_side(self):
        bad = """
            import multiprocessing as mp

            _COUNTS = {}

            def _child_loop(wid):
                _COUNTS[wid] = 1

            def spawn(ctx):
                return ctx.Process(target=_child_loop, args=(0,))

            def report():
                return len(_COUNTS)
        """
        assert "LOCK001" in codes(bad)


# ---------------------------------------------------------------------------
# QPROTO001 — queue protocol via dataflow
# ---------------------------------------------------------------------------
class TestQproto001:
    def test_untimed_get_via_helper_triggers(self):
        bad = """
            def _drain(ch):
                return ch.get()

            def loop(done_q):
                return _drain(done_q)
        """
        assert "QPROTO001" in codes(bad)
        # QUEUE001's name heuristic can't see 'ch' — the motivating gap.
        assert "QUEUE001" not in codes(bad)

    def test_queue_named_receiver_is_left_to_queue001(self):
        bad = """
            def loop(task_q):
                return task_q.get()
        """
        found = codes(bad)
        assert "QUEUE001" in found
        assert "QPROTO001" not in found

    def test_timed_get_is_fine(self):
        good = """
            def _drain(ch):
                return ch.get(timeout=0.25)

            def loop(done_q):
                return _drain(done_q)
        """
        assert "QPROTO001" not in codes(good)

    def test_nonblocking_get_is_fine(self):
        good = """
            def _drain(ch):
                return ch.get(block=False)

            def loop(done_q):
                return _drain(done_q)
        """
        assert "QPROTO001" not in codes(good)

    def test_put_after_close_triggers(self):
        bad = """
            def shutdown(results, item):
                results.close()
                results.put(item)

            def loop(done_q, item):
                shutdown(done_q, item)
        """
        assert "QPROTO001" in codes(bad)

    def test_robust_package_keeps_its_exemption(self):
        bad = """
            def _drain(ch):
                return ch.get()

            def loop(done_q):
                return _drain(done_q)
        """
        assert "QPROTO001" not in codes(bad, path="repro/robust/fixture.py")


# ---------------------------------------------------------------------------
# XPA101 — transitive np. usage from tier modules
# ---------------------------------------------------------------------------
class TestXpa101:
    def test_helper_with_np_call_triggers(self):
        found = multi_codes(
            config=None,
            helpers="""
                import numpy as np

                def renumber(labels):
                    return np.unique(labels)
            """,
        )
        # helper alone is fine — the finding needs a tier-module caller:
        assert "XPA101" not in found
        files = {
            "repro/utils/helpers.py": textwrap.dedent("""
                import numpy as np

                def renumber(labels):
                    return np.unique(labels)
            """),
            "repro/core/sweep.py": textwrap.dedent("""
                from repro.utils.helpers import renumber

                def compute(ops, labels):
                    return renumber(labels)
            """),
        }
        assert "XPA101" in [f.code for f in lint_sources(files)]

    def test_two_hops_deep_triggers(self):
        files = {
            "repro/utils/deep.py": textwrap.dedent("""
                import numpy as np

                def inner(xs):
                    return np.asarray(xs)

                def outer(xs):
                    return inner(xs)
            """),
            "repro/core/sweep.py": textwrap.dedent("""
                from repro.utils.deep import outer

                def compute(ops, xs):
                    return outer(xs)
            """),
        }
        assert "XPA101" in [f.code for f in lint_sources(files)]

    def test_allowlisted_seam_is_fine(self):
        files = {
            "repro/utils/helpers.py": textwrap.dedent("""
                import numpy as np

                def renumber(labels):
                    return np.unique(labels)
            """),
            "repro/core/sweep.py": textwrap.dedent("""
                from repro.utils.helpers import renumber

                def compute(ops, labels):
                    return renumber(labels)
            """),
        }
        config = LintConfig(
            xpa101_allow=("repro.utils.helpers.renumber",)
        )
        found = [f.code for f in lint_sources(files, config=config)]
        assert "XPA101" not in found

    def test_np_free_helper_is_fine(self):
        files = {
            "repro/utils/helpers.py": textwrap.dedent("""
                def span(lo, hi):
                    return hi - lo
            """),
            "repro/core/sweep.py": textwrap.dedent("""
                from repro.utils.helpers import span

                def compute(ops, lo, hi):
                    return span(lo, hi)
            """),
        }
        assert "XPA101" not in [f.code for f in lint_sources(files)]

    def test_non_tier_caller_is_fine(self):
        files = {
            "repro/utils/helpers.py": textwrap.dedent("""
                import numpy as np

                def renumber(labels):
                    return np.unique(labels)
            """),
            "repro/parallel/driver.py": textwrap.dedent("""
                from repro.utils.helpers import renumber

                def run(labels):
                    return renumber(labels)
            """),
        }
        assert "XPA101" not in [f.code for f in lint_sources(files)]

    def test_dtype_only_helper_is_fine(self):
        files = {
            "repro/utils/helpers.py": textwrap.dedent("""
                import numpy as np

                def widen(x):
                    return np.dtype("int64")
            """),
            "repro/core/sweep.py": textwrap.dedent("""
                from repro.utils.helpers import widen

                def compute(ops, x):
                    return widen(x)
            """),
        }
        assert "XPA101" not in [f.code for f in lint_sources(files)]


# ---------------------------------------------------------------------------
# Engine integration: noqa and severity apply to project rules too
# ---------------------------------------------------------------------------
class TestEngineIntegration:
    BAD = """
        def _commit(state, dst):
            state.comm[0] = dst

        @snapshot_kernel("state")
        def kernel(graph, state, dst):
            _commit(state, dst)  # noqa: SNAP101
    """

    def test_inline_noqa_suppresses_project_findings(self):
        assert "SNAP101" not in codes(self.BAD)

    def test_severity_off_disables_a_project_rule(self):
        bad = self.BAD.replace("  # noqa: SNAP101", "")
        config = LintConfig(severity={"SNAP101": "off"})
        assert "SNAP101" not in codes(bad, config=config)

    def test_severity_warning_reports_but_does_not_fail(self):
        bad = textwrap.dedent(self.BAD.replace("  # noqa: SNAP101", ""))
        config = LintConfig(severity={"SNAP101": "warning"})
        findings = lint_source(
            bad, "repro/parallel/fixture.py", config=config
        )
        hits = [f for f in findings if f.code == "SNAP101"]
        assert hits and hits[0].severity == "warning"

    def test_call_path_lands_on_the_finding(self):
        bad = textwrap.dedent(self.BAD.replace("  # noqa: SNAP101", ""))
        findings = lint_source(bad, "repro/parallel/fixture.py")
        hits = [f for f in findings if f.code == "SNAP101"]
        assert hits
        assert hits[0].call_path == (
            "repro.parallel.fixture.kernel",
            "repro.parallel.fixture._commit",
        )
