"""Rule-by-rule fixtures: each bad snippet triggers, each good one passes.

Fixture paths are synthetic (``repro/core/…``-style) so the snippets opt
into the package-scoped rules without touching the real tree.
"""

from __future__ import annotations

import textwrap

from repro.lint.engine import lint_source


def codes(source: str, path: str = "src/repro/core/fixture.py") -> list[str]:
    return [f.code for f in lint_source(textwrap.dedent(source), path)]


# ---------------------------------------------------------------------------
# SNAP001 — snapshot writes inside @snapshot_kernel functions
# ---------------------------------------------------------------------------
class TestSnapshotWriteRule:
    def test_subscript_assignment_triggers(self):
        bad = """
            @snapshot_kernel("state")
            def kernel(graph, state, vertices):
                state.comm[vertices] = 0
        """
        assert "SNAP001" in codes(bad)

    def test_augmented_assignment_triggers(self):
        bad = """
            @snapshot_kernel("comm")
            def kernel(comm, out):
                comm += 1
        """
        assert "SNAP001" in codes(bad)

    def test_ufunc_at_scatter_triggers(self):
        bad = """
            import numpy as np

            @snapshot_kernel("state")
            def kernel(graph, state, src, k):
                np.subtract.at(state.comm_degree, src, k)
        """
        assert "SNAP001" in codes(bad)

    def test_mutating_method_triggers(self):
        bad = """
            @snapshot_kernel("snapshot")
            def kernel(snapshot):
                snapshot.sort()
        """
        assert "SNAP001" in codes(bad)

    def test_fill_on_attribute_triggers(self):
        bad = """
            @snapshot_kernel("state")
            def kernel(state):
                state.comm_size.fill(0)
        """
        assert "SNAP001" in codes(bad)

    def test_np_copyto_into_snapshot_triggers(self):
        bad = """
            import numpy as np

            @snapshot_kernel("state")
            def kernel(state, fresh):
                np.copyto(state.comm, fresh)
        """
        assert "SNAP001" in codes(bad)

    def test_bare_decorator_marks_all_params(self):
        bad = """
            @snapshot_kernel
            def kernel(a, b):
                b[0] = 1.0
        """
        assert "SNAP001" in codes(bad)

    def test_read_only_kernel_passes(self):
        good = """
            import numpy as np

            @snapshot_kernel("state")
            def kernel(graph, state, vertices):
                cur = state.comm[vertices]
                targets = cur.copy()
                targets[0] = 5      # local copy: fine
                scratch = np.zeros(3, dtype=np.int64)
                np.add.at(scratch, cur % 3, 1)   # local scatter: fine
                return targets
        """
        assert codes(good) == []

    def test_writes_outside_marked_functions_ignored(self):
        good = """
            def apply_moves(graph, state, vertices, targets):
                state.comm[vertices] = targets   # commit step: sanctioned
        """
        assert codes(good) == []

    def test_unmarked_params_may_be_written(self):
        good = """
            @snapshot_kernel("state")
            def kernel(graph, state, out):
                out[:] = state.comm
        """
        assert codes(good) == []

    def test_qualified_decorator_detected(self):
        bad = """
            from repro.lint import sanitizer

            @sanitizer.snapshot_kernel("state")
            def kernel(state):
                state.comm[0] = 1
        """
        assert "SNAP001" in codes(bad)


# ---------------------------------------------------------------------------
# RNG001 — unseeded numpy randomness
# ---------------------------------------------------------------------------
class TestUnseededRNGRule:
    def test_module_level_call_triggers(self):
        bad = """
            import numpy as np

            def shuffle(order):
                np.random.shuffle(order)
        """
        assert "RNG001" in codes(bad, "src/repro/coloring/fixture.py")

    def test_default_rng_outside_rng_module_triggers(self):
        bad = """
            import numpy as np
            rng = np.random.default_rng()
        """
        assert "RNG001" in codes(bad, "src/repro/graph/fixture.py")

    def test_import_of_callable_triggers(self):
        bad = "from numpy.random import default_rng\n"
        assert "RNG001" in codes(bad, "src/repro/graph/fixture.py")

    def test_allowed_inside_rng_module(self):
        good = """
            import numpy as np

            def as_rng(seed=None):
                return np.random.default_rng(seed)
        """
        assert codes(good, "src/repro/utils/rng.py") == []

    def test_type_references_pass(self):
        good = """
            import numpy as np

            def check(seed):
                if isinstance(seed, np.random.Generator):
                    return seed
                return np.random.SeedSequence(seed)
        """
        assert codes(good, "src/repro/utils/fixture.py") == []


# ---------------------------------------------------------------------------
# DET001 — unordered iteration feeding arrays
# ---------------------------------------------------------------------------
class TestUnorderedToArrayRule:
    def test_array_of_set_triggers(self):
        bad = """
            import numpy as np

            def labels(values):
                return np.array(list(set(values)))
        """
        assert "DET001" in codes(bad)

    def test_comprehension_over_set_triggers(self):
        bad = """
            import numpy as np

            def weights(table):
                return np.asarray([w for w in table.keys()])
        """
        assert "DET001" in codes(bad)

    def test_fromiter_over_values_triggers(self):
        bad = """
            import numpy as np

            def weights(table):
                return np.fromiter(table.values(), dtype=np.float64)
        """
        assert "DET001" in codes(bad)

    def test_sorted_wrapping_passes(self):
        good = """
            import numpy as np

            def labels(values):
                return np.array(sorted(set(values)))
        """
        assert codes(good) == []

    def test_scoped_to_deterministic_packages(self):
        bad = """
            import numpy as np

            def labels(values):
                return np.array(list(set(values)))
        """
        # Same snippet outside core/parallel/coloring: not this rule's job.
        assert codes(bad, "src/repro/bench/fixture.py") == []

    def test_membership_tests_pass(self):
        good = """
            import numpy as np

            def pick(colors, used):
                used = set(used)
                c = 0
                while c in used:
                    c += 1
                return c
        """
        assert codes(good) == []


# ---------------------------------------------------------------------------
# ATOM001 — accumulator bypass in parallel workers
# ---------------------------------------------------------------------------
class TestWorkerScatterRule:
    def test_ufunc_at_in_worker_triggers(self):
        bad = """
            import numpy as np

            def _worker_main(shared, idx, vals):
                np.add.at(shared, idx, vals)
        """
        assert "ATOM001" in codes(bad, "src/repro/parallel/fixture.py")

    def test_augassign_into_param_subscript_triggers(self):
        bad = """
            def worker_loop(shared, i, v):
                shared[i] += v
        """
        assert "ATOM001" in codes(bad, "src/repro/parallel/fixture.py")

    def test_non_worker_function_passes(self):
        good = """
            import numpy as np

            def apply_moves(degree, src, k):
                np.subtract.at(degree, src, k)
        """
        assert codes(good, "src/repro/parallel/fixture.py") == []

    def test_atomic_module_exempt(self):
        good = """
            import numpy as np

            def worker_add(buffers, worker, index, values):
                np.add.at(buffers[worker], index, values)
        """
        assert codes(good, "src/repro/parallel/atomic.py") == []

    def test_scoped_to_parallel_package(self):
        good = """
            import numpy as np

            def _worker_main(shared, idx, vals):
                np.add.at(shared, idx, vals)
        """
        assert codes(good, "src/repro/graph/fixture.py") == []


# ---------------------------------------------------------------------------
# Generic rules
# ---------------------------------------------------------------------------
class TestGenericRules:
    def test_mutable_default_triggers(self):
        assert "MUT001" in codes("def f(x, acc=[]):\n    return acc\n")

    def test_dict_call_default_triggers(self):
        assert "MUT001" in codes("def f(x, table=dict()):\n    return table\n")

    def test_none_default_passes(self):
        assert codes("def f(x, acc=None):\n    return acc or []\n") == []

    def test_bare_assert_triggers(self):
        assert "ASSERT001" in codes("def f(x):\n    assert x > 0\n")

    def test_assert_outside_library_passes(self):
        source = "def f(x):\n    assert x > 0\n"
        assert codes(source, "tests/fixture.py") == []

    def test_missing_dtype_triggers(self):
        bad = """
            import numpy as np

            def alloc(n):
                return np.zeros(n)
        """
        assert "DTYPE001" in codes(bad)

    def test_positional_dtype_passes(self):
        good = """
            import numpy as np

            def alloc(n):
                return np.zeros(n, np.int64)
        """
        assert codes(good) == []

    def test_full_needs_third_argument(self):
        bad = """
            import numpy as np

            def alloc(n):
                return np.full(n, -1)
        """
        good = """
            import numpy as np

            def alloc(n):
                return np.full(n, -1, dtype=np.int64)
        """
        assert "DTYPE001" in codes(bad)
        assert codes(good) == []

    def test_dtype_scoped_to_hot_modules(self):
        source = """
            import numpy as np

            def alloc(n):
                return np.zeros(n)
        """
        assert codes(source, "src/repro/bench/fixture.py") == []


# ---------------------------------------------------------------------------
# OBS001 — wall-clock reads outside the instrumented timing path
# ---------------------------------------------------------------------------
class TestDirectTimingRule:
    def test_perf_counter_call_triggers(self):
        bad = """
            import time

            def measure():
                return time.perf_counter()
        """
        assert "OBS001" in codes(bad)

    def test_time_time_call_triggers(self):
        bad = """
            import time

            def stamp():
                return time.time()
        """
        assert "OBS001" in codes(bad)

    def test_monotonic_ns_call_triggers(self):
        bad = """
            import time

            def tick():
                return time.monotonic_ns()
        """
        assert "OBS001" in codes(bad)

    def test_from_time_import_triggers(self):
        bad = """
            from time import perf_counter

            def measure():
                return perf_counter()
        """
        assert "OBS001" in codes(bad)

    def test_time_sleep_passes(self):
        good = """
            import time

            def pause():
                time.sleep(0.1)
        """
        assert codes(good) == []

    def test_from_time_import_sleep_passes(self):
        good = """
            from time import sleep

            def pause():
                sleep(0.1)
        """
        assert codes(good) == []

    def test_timing_module_is_exempt(self):
        source = """
            import time

            def now():
                return time.perf_counter()
        """
        assert codes(source, "src/repro/utils/timing.py") == []

    def test_obs_package_is_exempt(self):
        source = """
            import time

            def now():
                return time.perf_counter()
        """
        assert codes(source, "src/repro/obs/trace.py") == []

    def test_tests_and_benchmarks_are_exempt(self):
        source = """
            import time

            def now():
                return time.perf_counter()
        """
        assert codes(source, "tests/fixture.py") == []
        assert codes(source, "benchmarks/bench_fixture.py") == []


# ---------------------------------------------------------------------------
# OBS002 — metric/span names follow the dotted.lower_snake scheme
# ---------------------------------------------------------------------------
class TestMetricNameSchemeRule:
    def test_uppercase_name_triggers(self):
        bad = """
            def run(tracer):
                tracer.count("Sweep.Moves")
        """
        assert "OBS002" in codes(bad)

    def test_dash_in_name_triggers(self):
        bad = """
            def run(tracer):
                tracer.gauge("worker-pool-alive", 1.0)
        """
        assert "OBS002" in codes(bad)

    def test_leading_digit_first_segment_triggers(self):
        bad = """
            def run(tracer):
                tracer.observe("0.moves", 1)
        """
        assert "OBS002" in codes(bad)

    def test_span_and_step_names_are_checked(self):
        bad = """
            def run(tracer):
                with tracer.span("Worker Chunk"):
                    pass
                with tracer.step("Rebuild!"):
                    pass
        """
        assert codes(bad).count("OBS002") == 2

    def test_attribute_and_call_receivers_are_gated(self):
        bad = """
            def run(self):
                self._tracer.count("BAD NAME")
                get_tracer().gauge("Another Bad", 1.0)
                tracer.metrics.count("Thirdbad!")
        """
        assert codes(bad).count("OBS002") == 3

    def test_conforming_names_pass(self):
        good = """
            def run(tracer, reg):
                tracer.count("sweep.moves", 3)
                tracer.gauge("worker.pool_alive", 2.0)
                reg.observe("iteration.active_vertices", 7)
                with tracer.span("worker_chunk", offset=0):
                    pass
        """
        assert codes(good) == []

    def test_numeric_later_segments_pass(self):
        good = """
            def run(tracer):
                tracer.gauge("worker.0.alive", 1.0)
        """
        assert codes(good) == []

    def test_fstring_static_fragments_are_checked(self):
        good = """
            def run(tracer, wid):
                tracer.gauge(f"worker.{wid}.alive", 1.0)
        """
        assert codes(good) == []
        bad = """
            def run(tracer, wid):
                tracer.gauge(f"Worker {wid} Alive", 1.0)
        """
        assert "OBS002" in codes(bad)

    def test_dynamic_names_are_skipped(self):
        good = """
            def run(tracer, name):
                tracer.count(name)
        """
        assert codes(good) == []

    def test_non_obs_receiver_passes(self):
        good = """
            def run(itertools):
                itertools.count("Whatever Goes")
        """
        assert codes(good) == []

    def test_tests_are_exempt(self):
        source = """
            def run(tracer):
                tracer.count("BAD NAME")
        """
        assert codes(source, "tests/fixture.py") == []


# ---------------------------------------------------------------------------
# QUEUE001 — untimed Queue.get() (the process-backend hang class)
# ---------------------------------------------------------------------------
class TestUntimedQueueGetRule:
    def test_untimed_get_triggers(self):
        bad = """
            def drain(done_q):
                return done_q.get()
        """
        assert "QUEUE001" in codes(bad, "src/repro/parallel/fixture.py")

    def test_attribute_receiver_triggers(self):
        bad = """
            class Pool:
                def wait(self):
                    return self._task_q.get()
        """
        assert "QUEUE001" in codes(bad, "src/repro/parallel/fixture.py")

    def test_queue_named_variable_triggers(self):
        bad = """
            def pump(result_queue):
                return result_queue.get()
        """
        assert "QUEUE001" in codes(bad)

    def test_timeout_kwarg_passes(self):
        good = """
            def drain(done_q):
                return done_q.get(timeout=0.1)
        """
        assert codes(good) == []

    def test_nonblocking_passes(self):
        good = """
            def drain(done_q):
                return done_q.get(block=False)
        """
        assert codes(good) == []

    def test_positional_nonblocking_passes(self):
        good = """
            def drain(done_q):
                return done_q.get(False)
        """
        assert codes(good) == []

    def test_positional_timeout_passes(self):
        good = """
            def drain(done_q):
                return done_q.get(True, 5.0)
        """
        assert codes(good) == []

    def test_non_queue_receiver_passes(self):
        good = """
            def lookup(mapping):
                return mapping.get()
        """
        assert codes(good) == []

    def test_robust_package_is_exempt(self):
        source = """
            def drain(done_q):
                return done_q.get()
        """
        assert codes(source, "src/repro/robust/fixture.py") == []

    def test_tests_are_exempt(self):
        source = """
            def drain(done_q):
                return done_q.get()
        """
        assert codes(source, "tests/fixture.py") == []


# ---------------------------------------------------------------------------
# DEAD001 — sleep loops that never consult a deadline
# ---------------------------------------------------------------------------
class TestSleepWithoutDeadlineRule:
    def test_sleep_in_while_loop_triggers(self):
        bad = """
            import time

            def wait_for_worker(pool):
                while not pool.ready():
                    time.sleep(0.1)
        """
        assert "DEAD001" in codes(bad)

    def test_bare_sleep_in_for_loop_triggers(self):
        bad = """
            from time import sleep

            def retry(fn):
                for attempt in range(100):
                    fn()
                    sleep(0.5)
        """
        assert "DEAD001" in codes(bad)

    def test_monotonic_deadline_passes(self):
        good = """
            import time
            from repro.utils.timing import monotonic

            def wait_for_worker(pool):
                deadline = monotonic() + 5.0
                while monotonic() < deadline:
                    if pool.ready():
                        return True
                    time.sleep(0.1)
                return False
        """
        assert codes(good) == []

    def test_budget_controller_passes(self):
        good = """
            import time
            from repro.robust.budget import get_budget

            def wait_for_worker(pool):
                while not get_budget().should_stop():
                    if pool.ready():
                        return True
                    time.sleep(0.1)
        """
        assert codes(good) == []

    def test_timeout_variable_passes(self):
        good = """
            import time

            def poll(pool, retry_timeout):
                while retry_timeout > 0:
                    time.sleep(0.1)
                    retry_timeout -= 0.1
        """
        assert codes(good) == []

    def test_outer_loop_consulting_deadline_clears_inner_sleep(self):
        good = """
            import time
            from repro.utils.timing import monotonic

            def drain(pools, deadline):
                while monotonic() < deadline:
                    for pool in pools:
                        time.sleep(0.01)
        """
        assert codes(good) == []

    def test_sleep_outside_loop_passes(self):
        good = """
            import time

            def settle():
                time.sleep(0.1)
        """
        assert codes(good) == []

    def test_robust_package_is_exempt(self):
        source = """
            import time

            def backoff():
                while True:
                    time.sleep(1.0)
        """
        assert codes(source, "src/repro/robust/fixture.py") == []

    def test_tests_are_exempt(self):
        source = """
            import time

            def spin():
                while True:
                    time.sleep(1.0)
        """
        assert codes(source, "tests/fixture.py") == []


# ---------------------------------------------------------------------------
# XPA001 — direct np. calls in array-API-tier kernel modules
# ---------------------------------------------------------------------------
class TestArrayApiTierRule:
    TIER = "src/repro/core/sweep.py"

    def test_direct_numpy_call_triggers(self):
        bad = """
            import numpy as np

            def kernel(a):
                return np.bincount(a)
        """
        assert "XPA001" in codes(bad, self.TIER)

    def test_ufunc_method_chain_triggers(self):
        bad = """
            import numpy as np

            def kernel(out, idx, vals):
                np.add.at(out, idx, vals)
        """
        assert "XPA001" in codes(bad, self.TIER)

    def test_every_tier_module_is_covered(self):
        bad = """
            import numpy as np

            def kernel(a):
                return np.argsort(a)
        """
        for path in (
            "src/repro/core/sweep.py",
            "src/repro/core/workspace.py",
            "src/repro/core/gain.py",
            "src/repro/core/modularity.py",
            "src/repro/core/batch.py",
            "src/repro/graph/coarsen.py",
            "src/repro/graph/batch.py",
        ):
            assert "XPA001" in codes(bad, path), path

    def test_ops_handle_passes(self):
        good = """
            from repro.backends import numpy_ops

            def kernel(a, ops):
                ops.put(a, 0, 1)
                return numpy_ops.bincount(a)
        """
        assert codes(good, self.TIER) == []

    def test_dtype_constructors_pass(self):
        good = """
            import numpy as np

            def kernel(a):
                if np.issubdtype(a.dtype, np.integer):
                    return np.int64(0), np.dtype(np.float32)
                return np.finfo(np.float64).eps
        """
        assert codes(good, self.TIER) == []

    def test_dtype_references_pass(self):
        good = """
            import numpy as np
            from repro.backends import numpy_ops

            def kernel(n):
                return numpy_ops.zeros(n, dtype=np.int64)
        """
        assert codes(good, self.TIER) == []

    def test_non_tier_module_is_exempt(self):
        source = """
            import numpy as np

            def helper(a):
                return np.bincount(a)
        """
        assert codes(source, "src/repro/core/phase.py") == []
        assert codes(source, "src/repro/graph/csr.py") == []
