"""Dataflow engine: summaries, taint propagation, and events.

Fixtures are parsed in-memory and pushed through
:class:`repro.lint.dataflow.ProjectAnalysis` directly, so these tests
pin the engine's semantics independent of any rule built on top.
"""

from __future__ import annotations

import ast
import textwrap

from repro.lint.dataflow import ProjectAnalysis


def analyze(**sources: str) -> ProjectAnalysis:
    trees = {
        f"repro/parallel/{name}.py": ast.parse(textwrap.dedent(src))
        for name, src in sources.items()
    }
    return ProjectAnalysis.build(trees)


Q = "repro.parallel.mod."


class TestWriteSummaries:
    def test_direct_subscript_write_is_summarized(self):
        an = analyze(mod="""
            def f(arr):
                arr[0] = 1
        """)
        assert "arr" in an.summaries[Q + "f"].writes

    def test_transitive_write_propagates_to_caller(self):
        an = analyze(mod="""
            def sink(buf):
                buf[0] = 1

            def mid(data):
                sink(data)

            def top(arr):
                mid(arr)
        """)
        assert "arr" in an.summaries[Q + "top"].writes
        assert an.summaries[Q + "top"].writes["arr"] == (
            Q + "mid", Q + "sink",
        )

    def test_copy_launders_the_write(self):
        an = analyze(mod="""
            def sink(buf):
                buf[0] = 1

            def top(arr):
                sink(arr.copy())
        """)
        assert "arr" not in an.summaries[Q + "top"].writes

    def test_alias_write_is_attributed_to_the_param(self):
        an = analyze(mod="""
            def f(state):
                view = state.comm
                view[0] = 1
        """)
        assert "state" in an.summaries[Q + "f"].writes
        events = [e for e in an.results[Q + "f"].events
                  if e.kind == "alias_write"]
        assert events and events[0].param == "state"
        assert events[0].detail == "view"

    def test_mutating_method_counts_as_write(self):
        an = analyze(mod="""
            def f(arr):
                arr.fill(0)
        """)
        assert "arr" in an.summaries[Q + "f"].writes

    def test_scatter_on_bound_param_counts_as_write(self):
        an = analyze(mod="""
            import numpy as np

            def f(arr, idx, vals):
                np.add.at(arr, idx, vals)
        """)
        assert "arr" in an.summaries[Q + "f"].writes

    def test_read_only_function_has_empty_writes(self):
        an = analyze(mod="""
            def f(arr):
                return arr[0] + 1
        """)
        assert an.summaries[Q + "f"].writes == {}

    def test_returned_view_is_summarized(self):
        an = analyze(mod="""
            def f(arr):
                return arr[1:]
        """)
        assert "arr" in an.summaries[Q + "f"].returns

    def test_write_through_returned_view_of_callee(self):
        an = analyze(mod="""
            def head(arr):
                return arr[:4]

            def top(data):
                h = head(data)
                h[0] = 1
        """)
        assert "data" in an.summaries[Q + "top"].writes


class TestShmTaint:
    def test_view_over_segment_is_shm_tainted(self):
        an = analyze(mod="""
            import numpy as np
            from multiprocessing.shared_memory import SharedMemory

            def attach(name, n):
                seg = SharedMemory(name=name)
                view = np.ndarray((n,), dtype=np.int64, buffer=seg.buf)
                return view
        """)
        assert any(e.kind == "shm_return"
                   for e in an.results[Q + "attach"].events)

    def test_returning_the_segment_itself_is_not_flagged(self):
        an = analyze(mod="""
            from multiprocessing.shared_memory import SharedMemory

            def create(name, size):
                return SharedMemory(name=name, create=True, size=size)
        """)
        assert not any(e.kind == "shm_return"
                       for e in an.results[Q + "create"].events)
        assert "shmseg" in an.summaries[Q + "create"].returns_extra

    def test_copy_launders_shm(self):
        an = analyze(mod="""
            import numpy as np
            from multiprocessing.shared_memory import SharedMemory

            def attach(name, n):
                seg = SharedMemory(name=name)
                view = np.ndarray((n,), dtype=np.int64, buffer=seg.buf)
                return view.copy()
        """)
        assert not any(e.kind == "shm_return"
                       for e in an.results[Q + "attach"].events)

    def test_segment_dict_comprehension_keeps_taint(self):
        an = analyze(mod="""
            import numpy as np
            from multiprocessing.shared_memory import SharedMemory

            def attach(names, n):
                segs = {k: SharedMemory(name=k) for k in names}
                view = np.ndarray((n,), dtype=np.int64,
                                  buffer=segs["comm"].buf)
                return view
        """)
        assert any(e.kind == "shm_return"
                   for e in an.results[Q + "attach"].events)

    def test_shm_flows_through_call_into_callee_param(self):
        an = analyze(mod="""
            import numpy as np
            from multiprocessing.shared_memory import SharedMemory

            def leak(view):
                return view

            def worker(name, n):
                seg = SharedMemory(name=name)
                comm = np.ndarray((n,), dtype=np.int64, buffer=seg.buf)
                return leak(comm)
        """)
        assert an.param_taint[Q + "leak"]["view"] == {"shm"}
        # and the laundered variant carries nothing:
        assert any(e.kind == "shm_return"
                   for e in an.results[Q + "worker"].events)

    def test_attr_taint_spans_methods(self):
        an = analyze(mod="""
            import numpy as np
            from multiprocessing.shared_memory import SharedMemory

            class Holder:
                def __init__(self, name, n):
                    seg = SharedMemory(name=name)
                    self._view = np.ndarray((n,), dtype=np.int64,
                                            buffer=seg.buf)

                def close(self):
                    pass

                def peek(self):
                    return self._view[:4]
        """)
        assert an.attr_taint[Q + "Holder"]["_view"] == {"shm"}
        assert any(e.kind == "shm_return"
                   for e in an.results[Q + "Holder.peek"].events)

    def test_escaping_closure_capture_is_an_event(self):
        an = analyze(mod="""
            import numpy as np
            from multiprocessing.shared_memory import SharedMemory

            def worker(name, n):
                seg = SharedMemory(name=name)
                view = np.ndarray((n,), dtype=np.int64, buffer=seg.buf)

                def reader():
                    return view[0]

                return reader
        """)
        events = [e for e in an.results[Q + "worker"].events
                  if e.kind == "shm_closure"]
        assert events and events[0].detail == "reader"

    def test_locally_called_closure_is_fine(self):
        an = analyze(mod="""
            import numpy as np
            from multiprocessing.shared_memory import SharedMemory

            def worker(name, n):
                seg = SharedMemory(name=name)
                view = np.ndarray((n,), dtype=np.int64, buffer=seg.buf)

                def total():
                    return int(view.sum())

                return total()
        """)
        assert not any(e.kind == "shm_closure"
                       for e in an.results[Q + "worker"].events)


class TestQueueTaint:
    def test_queue_param_name_seeds_taint(self):
        an = analyze(mod="""
            def loop(task_q):
                return task_q.get()
        """)
        assert any(e.kind == "untimed_get"
                   for e in an.results[Q + "loop"].events)

    def test_taint_flows_through_helper_with_innocent_name(self):
        an = analyze(mod="""
            def _drain(ch):
                return ch.get()

            def loop(done_q):
                return _drain(done_q)
        """)
        assert an.param_taint[Q + "_drain"]["ch"] == {"queue"}
        events = [e for e in an.results[Q + "_drain"].events
                  if e.kind == "untimed_get"]
        assert events and events[0].detail == "ch"

    def test_timed_get_is_fine(self):
        an = analyze(mod="""
            def _drain(ch):
                return ch.get(timeout=0.5)

            def loop(done_q):
                return _drain(done_q)
        """)
        assert not any(e.kind == "untimed_get"
                       for e in an.results[Q + "_drain"].events)

    def test_constructor_taints_local(self):
        an = analyze(mod="""
            import multiprocessing as mp

            def loop(ctx):
                results = mp.Queue()
                return results.get()
        """)
        assert any(e.kind == "untimed_get"
                   for e in an.results[Q + "loop"].events)

    def test_put_after_close_is_an_event(self):
        an = analyze(mod="""
            def shutdown(task_q, item):
                task_q.close()
                task_q.put(item)
        """)
        assert any(e.kind == "put_after_close"
                   for e in an.results[Q + "shutdown"].events)

    def test_put_before_close_is_fine(self):
        an = analyze(mod="""
            def shutdown(task_q, item):
                task_q.put(item)
                task_q.close()
        """)
        assert not any(e.kind == "put_after_close"
                       for e in an.results[Q + "shutdown"].events)


class TestGlobalsAndNumpy:
    def test_module_global_reads_and_writes_are_recorded(self):
        an = analyze(mod="""
            _CACHE = {}

            def put(k, v):
                _CACHE[k] = v

            def get(k):
                return _CACHE[k]
        """)
        assert "_CACHE" in an.results[Q + "put"].global_writes
        assert "_CACHE" in an.results[Q + "get"].global_reads

    def test_local_shadow_is_not_a_global_access(self):
        an = analyze(mod="""
            _CACHE = {}

            def local(k):
                _CACHE = {}
                _CACHE[k] = 1
                return _CACHE
        """)
        assert "_CACHE" not in an.results[Q + "local"].global_writes

    def test_np_calls_are_collected(self):
        an = analyze(mod="""
            import numpy as np

            def f(xs):
                return np.asarray(xs)
        """)
        assert an.np_using(Q + "f")
        assert an.np_call_example(Q + "f")[2] == "np.asarray"

    def test_dtype_constructors_are_not_np_array_calls(self):
        an = analyze(mod="""
            import numpy as np

            def f():
                return np.dtype("int64"), np.int64(3)
        """)
        assert not an.np_using(Q + "f")
