"""Runtime sanitizer: frozen snapshots, restoration, and end-to-end wiring."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import LouvainConfig
from repro.core.driver import louvain
from repro.core.phase import run_phase
from repro.core.sweep import SweepState, compute_targets, init_state
from repro.lint.sanitizer import (
    frozen_snapshot,
    resolve_sanitize,
    sanitize_default,
    snapshot_kernel,
)


class TestFrozenSnapshot:
    def test_write_raises_inside_guard(self):
        snap = np.arange(5)
        with frozen_snapshot(snap):
            with pytest.raises(ValueError):
                snap[0] = 99

    def test_writeable_restored_on_exit(self):
        snap = np.arange(5)
        with frozen_snapshot(snap):
            assert not snap.flags.writeable
        assert snap.flags.writeable
        snap[0] = 99  # must not raise

    def test_writeable_restored_on_exception(self):
        snap = np.arange(5)
        with pytest.raises(RuntimeError):
            with frozen_snapshot(snap):
                raise RuntimeError("kernel blew up")
        assert snap.flags.writeable

    def test_views_taken_inside_guard_are_frozen(self):
        # Views created from a frozen base inherit writeable=False — the
        # case that matters for kernels, which slice the snapshot inside
        # the guard.  (Views taken *before* the freeze keep their own
        # flag; the static SNAP001 rule covers that hole.)
        snap = np.arange(6)
        with frozen_snapshot(snap):
            view = snap[2:]
            with pytest.raises(ValueError):
                view[0] = -1

    def test_nesting_only_outermost_restores(self):
        snap = np.arange(4)
        with frozen_snapshot(snap):
            with frozen_snapshot(snap):
                assert not snap.flags.writeable
            # Inner guard froze nothing, so the array stays frozen here.
            assert not snap.flags.writeable
        assert snap.flags.writeable

    def test_accepts_state_objects(self, triangle):
        state = init_state(triangle)
        with frozen_snapshot(state):
            for arr in (state.comm, state.comm_degree, state.comm_size):
                assert not arr.flags.writeable
        for arr in (state.comm, state.comm_degree, state.comm_size):
            assert arr.flags.writeable

    def test_mixed_arrays_and_states(self, triangle):
        state = init_state(triangle)
        extra = np.zeros(3, dtype=np.float64)
        with frozen_snapshot(state, extra, None):
            assert not state.comm.flags.writeable
            assert not extra.flags.writeable
        assert state.comm.flags.writeable
        assert extra.flags.writeable

    def test_rejects_unknown_objects(self):
        with pytest.raises(TypeError):
            with frozen_snapshot(object()):
                pass

    def test_already_readonly_array_left_readonly(self):
        snap = np.arange(3)
        snap.flags.writeable = False
        with frozen_snapshot(snap):
            pass
        assert not snap.flags.writeable


class TestSnapshotKernelMarker:
    def test_named_form_records_params(self):
        @snapshot_kernel("graph", "state")
        def kernel(graph, state):
            return None

        assert kernel.__snapshot_params__ == ("graph", "state")

    def test_bare_form_means_all_params(self):
        @snapshot_kernel
        def kernel(a, b):
            return None

        assert kernel.__snapshot_params__ == ()

    def test_returns_same_object(self):
        def kernel(x):
            return x

        assert snapshot_kernel("x")(kernel) is kernel
        assert snapshot_kernel(kernel) is kernel

    def test_non_string_params_rejected(self):
        with pytest.raises(TypeError):
            snapshot_kernel(3)


class TestSanitizeDefaults:
    def test_env_values(self, monkeypatch):
        for value, expected in [
            ("1", True), ("on", True), ("yes", True),
            ("0", False), ("false", False), ("off", False), ("", False),
        ]:
            monkeypatch.setenv("REPRO_SANITIZE", value)
            assert sanitize_default() is expected

    def test_unset_means_off(self, monkeypatch):
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        assert sanitize_default() is False

    def test_explicit_flag_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        assert resolve_sanitize(False) is False
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        assert resolve_sanitize(True) is True
        assert resolve_sanitize(None) is False

    def test_config_default_tracks_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        assert LouvainConfig().sanitize is True
        monkeypatch.setenv("REPRO_SANITIZE", "0")
        assert LouvainConfig().sanitize is False


def _writing_kernel(graph, state, vertices, **kwargs):
    """A sabotaged kernel that violates the snapshot contract."""
    state.comm[np.asarray(vertices, dtype=np.int64)] = 0
    return state.comm[np.asarray(vertices, dtype=np.int64)].copy()


class TestSweepWiring:
    def test_write_raises_inside_compute_targets(self, karate, monkeypatch):
        import repro.core.sweep as sweep_mod

        monkeypatch.setattr(
            sweep_mod, "compute_targets_vectorized", _writing_kernel
        )
        state = init_state(karate)
        vertices = np.arange(karate.num_vertices, dtype=np.int64)
        with pytest.raises(ValueError):
            compute_targets(karate, state, vertices, sanitize=True)

    def test_sanitize_off_lets_write_through(self, karate, monkeypatch):
        import repro.core.sweep as sweep_mod

        monkeypatch.setattr(
            sweep_mod, "compute_targets_vectorized", _writing_kernel
        )
        state = init_state(karate)
        vertices = np.arange(karate.num_vertices, dtype=np.int64)
        # Without the guard the violation passes silently — exactly the
        # race class the sanitizer exists to surface.
        compute_targets(karate, state, vertices, sanitize=False)
        assert (state.comm == 0).all()

    def test_write_raises_inside_run_phase(self, karate, monkeypatch):
        import repro.core.sweep as sweep_mod

        monkeypatch.setattr(
            sweep_mod, "compute_targets_vectorized", _writing_kernel
        )
        state = init_state(karate)
        with pytest.raises(ValueError):
            run_phase(karate, state, threshold=1e-6, sanitize=True)

    def test_state_writeable_after_run_phase_exception(self, karate,
                                                       monkeypatch):
        import repro.core.sweep as sweep_mod

        monkeypatch.setattr(
            sweep_mod, "compute_targets_vectorized", _writing_kernel
        )
        state = init_state(karate)
        with pytest.raises(ValueError):
            run_phase(karate, state, threshold=1e-6, sanitize=True)
        # The guard's finally block must have restored the commit path.
        for arr in (state.comm, state.comm_degree, state.comm_size):
            assert arr.flags.writeable
        state.comm[0] = 0  # and writes must actually work again

    def test_clean_phase_leaves_state_writeable(self, karate):
        state = init_state(karate)
        run_phase(karate, state, threshold=1e-6, sanitize=True)
        for arr in (state.comm, state.comm_degree, state.comm_size):
            assert arr.flags.writeable


class TestBitwiseEquivalence:
    """The sanitizer changes failure behavior, never results."""

    @pytest.mark.parametrize("graph_name", ["karate", "cliques8", "planted"])
    def test_partitions_identical(self, graph_name, request):
        graph = request.getfixturevalue(graph_name)
        on = louvain(graph, LouvainConfig(sanitize=True))
        off = louvain(graph, LouvainConfig(sanitize=False))
        np.testing.assert_array_equal(on.communities, off.communities)
        assert on.modularity == off.modularity  # bitwise, not approx

    def test_targets_identical(self, karate):
        vertices = np.arange(karate.num_vertices, dtype=np.int64)
        state_a = init_state(karate)
        state_b = init_state(karate)
        t_on = compute_targets(karate, state_a, vertices, sanitize=True)
        t_off = compute_targets(karate, state_b, vertices, sanitize=False)
        np.testing.assert_array_equal(t_on, t_off)
