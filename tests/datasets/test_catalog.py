"""Tests pinning the structural fingerprints of the eleven stand-ins."""

import numpy as np
import pytest

from repro.datasets.catalog import DATASETS, dataset_names, load_dataset
from repro.graph.stats import compute_stats, degree_rsd
from repro.utils.errors import ValidationError


class TestCatalogBasics:
    def test_eleven_inputs(self):
        assert len(dataset_names()) == 11
        assert dataset_names()[0] == "CNR"
        assert dataset_names()[-1] == "friendster"

    @pytest.mark.parametrize("name", dataset_names())
    def test_loads_and_is_nontrivial(self, name):
        g = load_dataset(name, scale=0.3, seed=0)
        assert g.num_vertices > 50
        assert g.num_edges > 50

    @pytest.mark.parametrize("name", dataset_names())
    def test_deterministic(self, name):
        g1 = load_dataset(name, scale=0.3, seed=7)
        g2 = load_dataset(name, scale=0.3, seed=7)
        assert g1 == g2

    def test_scale_grows_graph(self):
        small = load_dataset("CNR", scale=0.3)
        large = load_dataset("CNR", scale=1.0)
        assert large.num_vertices > small.num_vertices

    def test_unknown_name(self):
        with pytest.raises(ValidationError):
            load_dataset("orkut")

    def test_bad_scale(self):
        with pytest.raises(ValidationError):
            load_dataset("CNR", scale=0.0)

    def test_specs_have_paper_stats(self):
        for spec in DATASETS.values():
            assert spec.paper.num_vertices > 100_000
            assert spec.paper.num_edges > spec.paper.num_vertices / 2
            assert spec.rationale


class TestStructuralFingerprints:
    """The property each stand-in must match (DESIGN.md substitution)."""

    def test_low_rsd_inputs(self):
        """Channel/NLPKKT240/Rgg: near-uniform degrees (paper RSD <= 0.25)."""
        for name in ("Channel", "NLPKKT240", "Rgg_n_2_24_s0"):
            assert degree_rsd(load_dataset(name)) < 0.5, name

    def test_high_rsd_inputs(self):
        """CNR/uk-2002/friendster/LiveJournal: heavy degree tails."""
        for name in ("CNR", "uk-2002", "friendster", "Soc-LiveJournal1"):
            assert degree_rsd(load_dataset(name)) > 1.0, name

    def test_friendster_most_skewed_social(self):
        assert degree_rsd(load_dataset("friendster")) > degree_rsd(
            load_dataset("Soc-LiveJournal1")
        )

    def test_europe_osm_road_profile(self):
        """Avg degree ~2 with many single-degree spokes (paper: 2.123)."""
        s = compute_stats(load_dataset("Europe-osm"))
        assert 1.8 < s.avg_degree < 2.6
        assert s.num_single_degree > s.num_vertices * 0.3

    def test_vf_prepruned_inputs_have_no_single_degree(self):
        """Channel/MG1/MG2 shipped pre-pruned in the paper (§6.1 footnote)."""
        for name, spec in DATASETS.items():
            if spec.vf_prepruned:
                s = compute_stats(load_dataset(name))
                assert s.num_single_degree == 0, name

    def test_mg_inputs_are_dense(self):
        """MG1/MG2: far denser than the rest (paper avg degree 122-160)."""
        for name in ("MG1", "MG2"):
            s = compute_stats(load_dataset(name))
            assert s.avg_degree > 25, name

    def test_mg_inputs_high_modularity(self):
        from repro.core.louvain_serial import louvain_serial

        for name in ("MG1", "MG2"):
            g = load_dataset(name, scale=0.5)
            assert louvain_serial(g).modularity > 0.85, name

    def test_weak_structure_inputs(self):
        """Channel/NLPKKT240: clearly lower modularity than the MG inputs."""
        from repro.core.louvain_serial import louvain_serial

        for name in ("Channel", "NLPKKT240"):
            g = load_dataset(name, scale=0.5)
            q = louvain_serial(g).modularity
            assert q < 0.85, name

    def test_copapers_clique_heavy(self):
        """coPapersDBLP stand-in: clustering via cliques -> high modularity
        and moderate degree RSD (paper: 1.17)."""
        g = load_dataset("coPapersDBLP")
        rsd = degree_rsd(g)
        assert 0.3 < rsd < 2.0

    def test_uk2002_coloring_skewed(self):
        """uk-2002's signature: skewed color-class sizes (paper RSD 18.9)."""
        from repro.coloring.greedy import greedy_coloring
        from repro.coloring.validate import color_size_rsd

        skews = {
            name: color_size_rsd(greedy_coloring(load_dataset(name)))
            for name in ("uk-2002", "Rgg_n_2_24_s0")
        }
        assert skews["uk-2002"] > skews["Rgg_n_2_24_s0"]
