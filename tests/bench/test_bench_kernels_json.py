"""Smoke test of the machine-readable kernel benchmark (BENCH_kernels.json).

Marked ``bench_smoke`` so CI can select it alone (``-m bench_smoke``); the
quick configuration — one graph, one repeat, no seed worktree — keeps it
well under the 60-second budget.
"""

import json
import os
import subprocess
import sys

import pytest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))))

REQUIRED_FIELDS = {"graph", "n", "M", "kernel", "seconds", "iterations", "Q",
                   "commit", "date", "backend"}


@pytest.mark.bench_smoke
def test_bench_kernels_cli_emits_json(tmp_path):
    out = tmp_path / "BENCH_kernels.json"
    env = dict(os.environ, PYTHONPATH=os.path.join(REPO_ROOT, "src"))
    subprocess.run(
        [sys.executable,
         os.path.join(REPO_ROOT, "benchmarks", "bench_kernels.py"),
         "--no-seed", "--graphs", "planted-50k", "--repeats", "1",
         "--out", str(out)],
        check=True, env=env, cwd=REPO_ROOT, timeout=55,
    )
    records = json.loads(out.read_text())
    assert len(records) == 2
    kernels = {r["kernel"] for r in records}
    assert kernels == {"seed-flags", "optimized"}
    for rec in records:
        assert REQUIRED_FIELDS <= set(rec)
        assert rec["graph"] == "planted-50k"
        assert rec["n"] >= 50_000
        assert rec["seconds"] > 0
        assert rec["iterations"] >= 1
        assert 0.0 <= rec["Q"] <= 1.0


@pytest.mark.bench_smoke
def test_committed_bench_results_meet_speedup_target():
    """The committed BENCH_kernels.json must show the ≥2× phase speedup on
    at least one ≥50k-vertex graph (the PR's acceptance criterion)."""
    path = os.path.join(REPO_ROOT, "BENCH_kernels.json")
    with open(path) as fh:
        records = json.load(fh)
    by_graph = {}
    for rec in records:
        by_graph.setdefault(rec["graph"], {})[rec["kernel"]] = rec
    speedups = {}
    for graph, kernels in by_graph.items():
        base = kernels.get("seed") or kernels.get("seed-flags")
        opt = kernels.get("optimized")
        assert base and opt, f"incomplete records for {graph}"
        if base["n"] >= 50_000:
            speedups[graph] = base["seconds"] / opt["seconds"]
    assert speedups and max(speedups.values()) >= 2.0, speedups
