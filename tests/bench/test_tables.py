"""Unit tests for table rendering and JSON conversion."""

import json
from dataclasses import dataclass

import numpy as np

from repro.bench.tables import ExperimentResult, format_table, to_jsonable


class TestFormatTable:
    def test_alignment_and_values(self):
        out = format_table(
            ["Input", "n", "Q"],
            [["karate", 34, 0.4188], ["big", 1_000_000, 0.99]],
            title="demo",
        )
        lines = out.splitlines()
        assert lines[0] == "demo"
        assert "Input" in lines[2]
        assert "1,000,000" in out
        assert "0.4188" in out

    def test_none_renders_na(self):
        out = format_table(["a", "b"], [["x", None]])
        assert "N/A" in out

    def test_float_formats(self):
        out = format_table(["a", "v"], [["r1", 12345.678], ["r2", 0.000123],
                                        ["r3", 42.0], ["r4", 0.0]])
        assert "12,345.7" in out
        assert "0.0001" in out
        assert "42.00" in out

    def test_empty_rows(self):
        out = format_table(["a"], [])
        assert "a" in out


class TestExperimentResult:
    def test_render(self):
        r = ExperimentResult(
            experiment_id="t", title="Table X", tables=["TBL"],
            notes=["a note"],
        )
        text = r.render()
        assert "## Table X" in text
        assert "TBL" in text
        assert "a note" in text
        assert str(r) == text

    def test_as_json_dict_serializes(self):
        r = ExperimentResult(
            experiment_id="t", title="T",
            data={"arr": np.arange(3), "nested": {1: np.float64(0.5)}},
        )
        payload = r.as_json_dict()
        text = json.dumps(payload)  # must not raise
        assert '"arr": [0, 1, 2]' in text
        assert payload["data"]["nested"]["1"] == 0.5


class TestToJsonable:
    def test_numpy_scalars_and_arrays(self):
        assert to_jsonable(np.int64(3)) == 3
        assert to_jsonable(np.float32(0.5)) == 0.5
        assert to_jsonable(np.array([[1, 2]])) == [[1, 2]]

    def test_dataclass(self):
        @dataclass
        class Row:
            name: str
            values: np.ndarray

        out = to_jsonable(Row("x", np.arange(2)))
        assert out == {"name": "x", "values": [0, 1]}

    def test_containers_and_keys(self):
        out = to_jsonable({(1, 2): [np.int64(7)], "s": {3}})
        assert out == {"(1, 2)": [7], "s": [3]}

    def test_object_fallback(self):
        class Thing:
            def __init__(self):
                self.a = np.float64(1.5)
                self._hidden = "skip"

        assert to_jsonable(Thing()) == {"a": 1.5}

    def test_real_experiment_data_serializes(self):
        """Every experiment's data must survive json.dumps."""
        from repro.bench.experiments import run_experiment

        result = run_experiment("table1", scale=0.25)
        json.dumps(result.as_json_dict())
