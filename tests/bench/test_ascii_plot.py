"""Unit tests for the terminal chart renderer."""

import numpy as np
import pytest

from repro.bench.ascii_plot import line_chart, sparkline
from repro.utils.errors import ValidationError


class TestSparkline:
    def test_monotone(self):
        assert sparkline([0, 1, 2, 3]) == "▁▃▆█"
        # Monotone input -> non-decreasing block heights.
        blocks = "▁▂▃▄▅▆▇█"
        heights = [blocks.index(c) for c in sparkline(range(10))]
        assert heights == sorted(heights)

    def test_flat(self):
        assert sparkline([5, 5, 5]) == "▁▁▁"

    def test_empty(self):
        assert sparkline([]) == ""


class TestLineChart:
    def test_basic_render(self):
        out = line_chart(
            {"a": ([1, 2, 3], [1.0, 2.0, 3.0])},
            title="demo", x_label="x", y_label="y",
        )
        assert "demo" in out
        assert "*" in out
        assert "* a" in out
        assert "[y: y]" in out

    def test_multiple_series_distinct_markers(self):
        out = line_chart({
            "first": ([1, 2], [1.0, 2.0]),
            "second": ([1, 2], [2.0, 1.0]),
        })
        assert "* first" in out and "o second" in out
        assert "o" in out.splitlines()[1] or any(
            "o" in line for line in out.splitlines()[:-2]
        )

    def test_log_x(self):
        out = line_chart(
            {"s": ([1, 2, 4, 8, 16, 32], [1, 2, 3, 4, 5, 6])}, log_x=True
        )
        assert "32" in out

    def test_log_x_rejects_nonpositive(self):
        with pytest.raises(ValidationError):
            line_chart({"s": ([0, 1], [1, 2])}, log_x=True)

    def test_mismatched_series_rejected(self):
        with pytest.raises(ValidationError):
            line_chart({"s": ([1, 2], [1.0])})

    def test_tiny_grid_rejected(self):
        with pytest.raises(ValidationError):
            line_chart({"s": ([1], [1])}, width=4, height=2)

    def test_empty_series(self):
        out = line_chart({"s": ([], [])}, title="t")
        assert "(no data)" in out

    def test_single_point(self):
        out = line_chart({"s": ([5], [3.0])})
        assert "*" in out

    def test_constant_y(self):
        out = line_chart({"s": ([1, 2, 3], [7.0, 7.0, 7.0])})
        assert "*" in out

    def test_grid_dimensions(self):
        out = line_chart({"s": ([1, 2], [1, 2])}, width=40, height=10,
                         title="")
        body = [l for l in out.splitlines() if "|" in l]
        assert len(body) == 10
