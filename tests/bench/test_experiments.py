"""Tests of the experiment harness at reduced scale.

These check that every experiment runs end to end, emits its tables, and —
where the paper commits to a *shape* — that the shape holds (coloring cuts
iterations, higher thresholds cut runtime, the rebuild scales sub-linearly,
speedups stay physical).
"""

import numpy as np
import pytest

from repro.bench.experiments import (
    EXPERIMENTS,
    PARALLEL_VARIANTS,
    THREAD_COUNTS,
    run_experiment,
)
from repro.utils.errors import ValidationError

SCALE = 0.25  # keep harness tests quick


@pytest.mark.parametrize("experiment_id", sorted(EXPERIMENTS))
def test_every_experiment_runs(experiment_id):
    kwargs = {"scale": SCALE}
    if experiment_id in ("table4", "table5"):
        kwargs["seeds"] = (0,)
    if experiment_id == "table5":
        kwargs["datasets"] = ("CNR", "MG1")
    if experiment_id == "fig3_6_modularity" or experiment_id == "fig3_6_runtime":
        kwargs["datasets"] = ("CNR", "Channel", "MG1")
    result = run_experiment(experiment_id, **kwargs)
    assert result.tables
    text = result.render()
    assert result.title in text


def test_unknown_experiment_rejected():
    with pytest.raises(ValidationError):
        run_experiment("fig42")


class TestShapes:
    def test_fig7_speedups_physical(self):
        result = run_experiment("fig7", scale=SCALE)
        for name, curve in result.data["relative"].items():
            assert curve[2] == pytest.approx(1.0)
            for p, s in curve.items():
                assert s > 0, (name, p, s)
                # Relative to the 2-thread time, p >= 2 threads can at best
                # do p/2 times better; p=1 only loses the barrier overhead,
                # so its "speedup" may exceed 1 and carries no bound.
                if p >= 2:
                    assert s <= p, (name, p, s)

    def test_fig9_rebuild_sublinear(self):
        result = run_experiment("fig9", scale=SCALE)
        for name, curve in result.data["speedups"].items():
            # 16x the threads of the baseline never yields 16x rebuild.
            assert curve[32] < 16.0, name

    def test_table2_speedup_positive(self):
        result = run_experiment("table2", scale=SCALE)
        for name, row in result.data.items():
            if row["speedup"] is not None:
                assert row["speedup"] > 0.5, name

    def test_table2_serial_na_mirrors_paper(self):
        result = run_experiment("table2", scale=SCALE)
        assert result.data["Europe-osm"]["serial_q"] is None
        assert result.data["friendster"]["serial_q"] is None
        assert result.data["CNR"]["serial_q"] is not None

    def test_table3_strong_agreement(self):
        result = run_experiment("table3", scale=SCALE)
        for name, pc in result.data.items():
            assert pc.rand_index > 0.8, name

    def test_table5_higher_threshold_not_slower(self):
        result = run_experiment("table5", scale=SCALE, seeds=(0,),
                                datasets=("CNR", "MG1", "Channel"))
        for name, entry in result.data.items():
            assert entry["1e-2"]["iters"] <= entry["1e-4"]["iters"] + 1, name

    def test_fig10_profiles_cover_schemes(self):
        result = run_experiment("fig10", scale=SCALE)
        profiles = result.data["runtime_profiles"]
        assert set(profiles) == {"serial", *PARALLEL_VARIANTS}
        for p in profiles.values():
            assert p.ratios.min() >= 1.0
        # At this reduced scale tiny inputs are barrier-dominated, so serial
        # can win some; the full-scale dominance claim is checked in
        # EXPERIMENTS.md from the scale=1.0 harness run.
        assert profiles["serial"].fraction_within(1.0) < 1.0

    def test_fig8_buckets_positive(self):
        result = run_experiment("fig8", scale=SCALE)
        for name, per_p in result.data["breakdown"].items():
            for p in THREAD_COUNTS:
                b = per_p[p]
                assert b["total"] > 0
                assert b["clustering"] > 0

    def test_trajectories_match_final(self):
        result = run_experiment("fig3_6_modularity", scale=SCALE,
                                datasets=("MG1",))
        traj = result.data["trajectories"]["MG1"]
        for scheme, curve in traj.items():
            assert curve.size >= 1
            assert np.isfinite(curve).all()
