"""Smoke + committed-results tests for the batch benchmark (BENCH_batch.json).

Marked ``bench_smoke`` like the kernels benchmark so CI can run both with
``-m bench_smoke``.  The smoke configuration (8 graphs, 1 repeat) stays
far under the CI step budget; the committed-results test pins the PR's
acceptance criterion — batched execution beats the per-graph loop on a
fleet of at least 32 small graphs.
"""

import json
import os
import subprocess
import sys

import pytest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))))

REQUIRED_FIELDS = {"mode", "num_graphs", "n_total", "M_total", "seconds",
                   "Q_mean", "commit", "date", "backend"}


@pytest.mark.bench_smoke
def test_bench_batch_cli_emits_json(tmp_path):
    out = tmp_path / "BENCH_batch.json"
    env = dict(os.environ, PYTHONPATH=os.path.join(REPO_ROOT, "src"))
    subprocess.run(
        [sys.executable,
         os.path.join(REPO_ROOT, "benchmarks", "bench_batch.py"),
         "--num-graphs", "8", "--repeats", "1", "--out", str(out)],
        check=True, env=env, cwd=REPO_ROOT, timeout=55,
    )
    records = json.loads(out.read_text())
    assert len(records) == 2
    assert {r["mode"] for r in records} == {"per-graph-loop", "batched"}
    for rec in records:
        assert REQUIRED_FIELDS <= set(rec)
        assert rec["num_graphs"] == 8
        assert rec["seconds"] > 0
        assert 0.0 <= rec["Q_mean"] <= 1.0
        assert rec["backend"]  # non-empty backend tag


@pytest.mark.bench_smoke
def test_committed_batch_results_beat_loop():
    """The committed BENCH_batch.json must show batched execution beating
    the per-graph loop on ≥32 small graphs (the PR's acceptance
    criterion)."""
    path = os.path.join(REPO_ROOT, "BENCH_batch.json")
    with open(path) as fh:
        records = json.load(fh)
    by_mode = {r["mode"]: r for r in records}
    loop, batched = by_mode["per-graph-loop"], by_mode["batched"]
    assert batched["num_graphs"] >= 32
    assert batched["num_graphs"] == loop["num_graphs"]
    speedup = loop["seconds"] / batched["seconds"]
    assert speedup > 1.0, speedup
    assert batched["speedup"] == pytest.approx(speedup)
    for rec in records:
        assert rec["commit"] and rec["date"] and rec["backend"]
