"""Tests for streams and incremental community maintenance."""

import numpy as np
import pytest

from repro.core.config import LouvainConfig
from repro.core.modularity import modularity
from repro.dynamic import (
    DynamicGraph,
    EdgeEvent,
    IncrementalLouvain,
    community_drift_stream,
    growth_stream,
)
from repro.metrics.pairs import pair_counts
from repro.utils.errors import ValidationError


class TestStreams:
    def test_growth_stream_shapes(self):
        dyn, batches = growth_stream(4, 20, batches=3, batch_size=30, seed=0)
        assert dyn.num_vertices == 80
        batch_list = list(batches)
        assert len(batch_list) == 3
        for batch in batch_list:
            assert len(batch) == 30
            for e in batch:
                assert e.kind == "add"
                assert e.u < e.v

    def test_growth_stream_deterministic(self):
        def collect(seed):
            dyn, batches = growth_stream(3, 15, batches=2, batch_size=10,
                                         seed=seed)
            return [(e.kind, e.u, e.v) for b in batches for e in b]

        assert collect(7) == collect(7)

    def test_growth_batches_applicable(self):
        dyn, batches = growth_stream(3, 15, batches=3, batch_size=20, seed=1)
        before = dyn.num_edges
        total = 0
        for batch in batches:
            for e in batch:
                e.apply(dyn)
            total += len(batch)
        assert dyn.num_edges == before + total

    def test_drift_stream_moves_membership(self):
        dyn, batches, membership = community_drift_stream(
            4, 20, batches=2, movers_per_batch=5, seed=3
        )
        original = membership.copy()
        for batch in batches:
            for e in batch:
                e.apply(dyn)
        assert (membership != original).sum() >= 1

    def test_event_validation(self):
        g = DynamicGraph(3)
        with pytest.raises(ValidationError):
            EdgeEvent("toggle", 0, 1).apply(g)

    def test_stream_validation(self):
        with pytest.raises(ValidationError):
            growth_stream(2, 5, batches=-1, batch_size=3)
        with pytest.raises(ValidationError):
            community_drift_stream(2, 5, batches=1, movers_per_batch=0)


class TestIncrementalLouvain:
    def _tracker(self, seed=0):
        dyn, batches = growth_stream(5, 24, batches=4, batch_size=60,
                                     seed=seed)
        return IncrementalLouvain(dyn), batches

    def test_first_refresh_is_cold(self):
        tracker, _ = self._tracker()
        stats = tracker.refresh()
        assert not stats.warm
        assert stats.modularity > 0.3

    def test_warm_uses_previous_assignment(self):
        tracker, batches = self._tracker()
        tracker.refresh()
        for batch in batches:
            stats = tracker.process(batch)
            assert stats.warm
            assert stats.events_since_last == len(batch)

    def test_warm_fewer_iterations_than_cold(self):
        """The future-work-(i) payoff: warm restarts converge much faster."""
        tracker, batches = self._tracker(seed=11)
        tracker.refresh()
        warm_total = 0
        cold_total = 0
        for batch in batches:
            tracker.apply_events(batch)
            warm_total += tracker.refresh(warm=True).iterations
            cold_total += IncrementalLouvain(
                tracker.graph
            ).refresh(warm=False).iterations
        assert warm_total < cold_total

    def test_warm_quality_matches_cold(self):
        tracker, batches = self._tracker(seed=5)
        tracker.refresh()
        for batch in batches:
            tracker.apply_events(batch)
        warm_q = tracker.refresh(warm=True).modularity
        cold_q = IncrementalLouvain(tracker.graph).refresh().modularity
        assert warm_q >= cold_q - 0.03

    def test_modularity_consistent_with_assignment(self):
        tracker, batches = self._tracker()
        stats = tracker.refresh()
        snap = tracker.graph.snapshot()
        assert stats.modularity == pytest.approx(
            modularity(snap, tracker.communities)
        )

    def test_drift_tracking(self):
        dyn, batches, truth = community_drift_stream(
            5, 24, batches=3, movers_per_batch=4, seed=7
        )
        tracker = IncrementalLouvain(dyn)
        tracker.refresh()
        for batch in batches:
            tracker.process(batch)
            rand = pair_counts(truth, tracker.communities).rand_index
            assert rand > 0.9

    def test_warm_without_previous_rejected(self):
        tracker, _ = self._tracker()
        with pytest.raises(ValidationError):
            tracker.refresh(warm=True)

    def test_vf_config_rejected(self):
        dyn = DynamicGraph(4)
        with pytest.raises(ValidationError):
            IncrementalLouvain(dyn, LouvainConfig(use_vf=True))

    def test_grow_to_extends_assignment(self):
        tracker, _ = self._tracker()
        tracker.refresh()
        n = tracker.graph.num_vertices
        tracker.grow_to(n + 3)
        assert tracker.communities.shape == (n + 3,)
        # New singleton labels are distinct from existing ones.
        assert len(np.unique(tracker.communities[-3:])) == 3
        with pytest.raises(ValidationError):
            tracker.grow_to(2)

    def test_history_recorded(self):
        tracker, batches = self._tracker()
        tracker.refresh()
        for batch in batches:
            tracker.process(batch)
        assert len(tracker.history) == 5

    def test_warm_start_via_driver_argument(self):
        """The driver-level warm start the tracker builds on."""
        from repro.core.driver import louvain
        from repro.graph.generators import planted_partition

        g = planted_partition(4, 20, 0.4, 0.02, seed=0)
        cold = louvain(g)
        warm = louvain(g, initial_communities=cold.communities)
        assert warm.total_iterations < cold.total_iterations
        assert warm.total_iterations <= 4
        assert warm.modularity >= cold.modularity - 1e-9

    def test_warm_start_with_vf_rejected(self, karate):
        from repro.core.driver import louvain

        with pytest.raises(ValidationError):
            louvain(karate, variant="baseline+VF",
                    initial_communities=np.zeros(34, dtype=np.int64))

    def test_warm_start_bad_shape_rejected(self, karate):
        from repro.core.driver import louvain

        with pytest.raises(ValidationError):
            louvain(karate, initial_communities=np.zeros(3, dtype=np.int64))
