"""Unit tests for the mutable dynamic graph."""

import numpy as np
import pytest

from repro.dynamic.dynamic_graph import DynamicGraph
from repro.graph.generators import karate_club
from repro.utils.errors import GraphStructureError, ValidationError


class TestMutations:
    def test_add_and_snapshot(self):
        g = DynamicGraph(3)
        g.add_edge(0, 1)
        g.add_edge(1, 2, 2.5)
        snap = g.snapshot()
        assert snap.num_edges == 2
        assert snap.edge_weight(1, 2) == 2.5

    def test_remove(self):
        g = DynamicGraph(3)
        g.add_edge(0, 1, 4.0)
        assert g.remove_edge(1, 0) == 4.0  # orientation-insensitive
        assert g.num_edges == 0
        assert not g.has_edge(0, 1)

    def test_set_weight(self):
        g = DynamicGraph(2)
        g.add_edge(0, 1)
        g.set_weight(0, 1, 9.0)
        assert g.edge_weight(1, 0) == 9.0

    def test_self_loop(self):
        g = DynamicGraph(2)
        g.add_edge(1, 1, 3.0)
        assert g.snapshot().self_loop_weight(1) == 3.0

    def test_duplicate_add_rejected(self):
        g = DynamicGraph(2)
        g.add_edge(0, 1)
        with pytest.raises(GraphStructureError):
            g.add_edge(1, 0)

    def test_missing_remove_rejected(self):
        g = DynamicGraph(2)
        with pytest.raises(GraphStructureError):
            g.remove_edge(0, 1)
        with pytest.raises(GraphStructureError):
            g.set_weight(0, 1, 2.0)

    def test_bad_weight_and_ids(self):
        g = DynamicGraph(2)
        with pytest.raises(GraphStructureError):
            g.add_edge(0, 1, 0.0)
        with pytest.raises(GraphStructureError):
            g.add_edge(0, 5)

    def test_add_vertices(self):
        g = DynamicGraph(2)
        assert g.add_vertices(3) == 5
        g.add_edge(0, 4)
        assert g.snapshot().num_vertices == 5
        with pytest.raises(ValidationError):
            g.add_vertices(-1)


class TestSnapshotCaching:
    def test_cache_reused_until_mutation(self):
        g = DynamicGraph(3)
        g.add_edge(0, 1)
        s1 = g.snapshot()
        assert g.snapshot() is s1
        g.add_edge(1, 2)
        assert g.snapshot() is not s1

    def test_version_increments(self):
        g = DynamicGraph(3)
        v0 = g.version
        g.add_edge(0, 1)
        g.remove_edge(0, 1)
        assert g.version == v0 + 2

    def test_from_csr_roundtrip(self):
        karate = karate_club()
        dyn = DynamicGraph.from_csr(karate)
        assert dyn.snapshot() == karate

    def test_empty_snapshot(self):
        assert DynamicGraph(4).snapshot().num_vertices == 4
