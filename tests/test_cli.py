"""Unit tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import main
from repro.graph.io import write_edge_list, write_metis, save_csrz
from repro.graph.generators import karate_club


@pytest.fixture
def karate_file(tmp_path):
    path = tmp_path / "karate.txt"
    write_edge_list(karate_club(), path)
    return str(path)


class TestDetect:
    def test_detect_dataset(self, capsys):
        assert main(["detect", "--dataset", "MG1", "--scale", "0.3"]) == 0
        out = capsys.readouterr().out
        assert "modularity:" in out
        assert "communities:" in out

    def test_detect_file(self, karate_file, capsys):
        assert main(["detect", karate_file, "--variant", "baseline"]) == 0
        assert "modularity:" in capsys.readouterr().out

    def test_detect_serial(self, karate_file, capsys):
        assert main(["detect", karate_file, "--variant", "serial"]) == 0
        assert "serial" in capsys.readouterr().out

    def test_detect_output_file(self, karate_file, tmp_path, capsys):
        out_file = tmp_path / "comm.txt"
        assert main(["detect", karate_file, "--output", str(out_file)]) == 0
        comm = np.loadtxt(out_file, dtype=np.int64)
        assert comm.shape == (34,)

    def test_detect_threads(self, karate_file, capsys):
        assert main(["detect", karate_file, "--backend", "threads",
                     "--threads", "2"]) == 0

    def test_detect_metis_and_csrz(self, tmp_path, capsys):
        metis = tmp_path / "k.metis"
        write_metis(karate_club(), metis)
        assert main(["detect", str(metis)]) == 0
        csrz = tmp_path / "k.csrz.npz"
        save_csrz(karate_club(), csrz)
        assert main(["detect", str(csrz), "--format", "csrz"]) == 0

    def test_detect_trace_streams_ring(self, karate_file, tmp_path,
                                       monkeypatch, capsys):
        """The README/CI live shape: REPRO_OBS_RING + detect --trace."""
        from repro.obs.live import METRICS_RING_ENV, load_ring

        ring = tmp_path / "ring.jsonl"
        monkeypatch.setenv(METRICS_RING_ENV, str(ring))
        assert main(["detect", karate_file, "--trace"]) == 0
        snaps = load_ring(str(ring))
        assert snaps, "exit snapshot must land even for a fast run"
        assert snaps[-1].counters.get("sweep.moves", 0) > 0

    def test_detect_trace_serial_variant(self, karate_file, capsys):
        assert main(["detect", karate_file, "--variant", "serial",
                     "--trace"]) == 0
        assert "modularity:" in capsys.readouterr().out

    def test_missing_input(self):
        with pytest.raises(SystemExit):
            main(["detect"])


class TestStats:
    def test_stats_file(self, karate_file, capsys):
        assert main(["stats", karate_file]) == 0
        out = capsys.readouterr().out
        assert "vertices:" in out and "34" in out
        assert "degree RSD:" in out

    def test_stats_dataset(self, capsys):
        assert main(["stats", "--dataset", "Channel", "--scale", "0.3"]) == 0
        assert "single-degree count:  0" in capsys.readouterr().out


class TestDatasets:
    def test_list(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        for name in ("CNR", "friendster", "MG2"):
            assert name in out

    def test_verbose(self, capsys):
        assert main(["datasets", "-v"]) == 0
        assert "LFR" in capsys.readouterr().out


class TestAnalyze:
    def test_analyze_with_detection(self, karate_file, capsys):
        assert main(["analyze", karate_file, "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert "detected with baseline+VF+Color" in out
        assert "coverage:" in out
        assert "hubs" in out

    def test_analyze_given_assignment(self, karate_file, tmp_path, capsys):
        comm = tmp_path / "comm.txt"
        main(["detect", karate_file, "--output", str(comm)])
        capsys.readouterr()
        assert main(["analyze", karate_file, "--communities",
                     str(comm)]) == 0
        out = capsys.readouterr().out
        assert "detected" not in out  # no re-detection
        assert "modularity:" in out

    def test_analyze_length_mismatch(self, karate_file, tmp_path):
        bad = tmp_path / "bad.txt"
        np.savetxt(bad, np.zeros(3), fmt="%d")
        with pytest.raises(SystemExit):
            main(["analyze", karate_file, "--communities", str(bad)])


class TestCompare:
    def test_identical_assignments(self, tmp_path, capsys):
        a = tmp_path / "a.txt"
        b = tmp_path / "b.txt"
        np.savetxt(a, np.array([0, 0, 1, 1]), fmt="%d")
        np.savetxt(b, np.array([5, 5, 9, 9]), fmt="%d")
        assert main(["compare", str(a), str(b)]) == 0
        out = capsys.readouterr().out
        assert "Rand index:        100.00%" in out
        assert "adjusted Rand:     1.0000" in out

    def test_serial_vs_parallel_flow(self, karate_file, tmp_path, capsys):
        ser = tmp_path / "serial.txt"
        par = tmp_path / "parallel.txt"
        main(["detect", karate_file, "--variant", "serial",
              "--output", str(ser)])
        main(["detect", karate_file, "--variant", "baseline",
              "--output", str(par)])
        assert main(["compare", str(ser), str(par)]) == 0
        assert "NMI:" in capsys.readouterr().out

    def test_length_mismatch(self, tmp_path):
        a = tmp_path / "a.txt"
        b = tmp_path / "b.txt"
        np.savetxt(a, np.array([0, 1]), fmt="%d")
        np.savetxt(b, np.array([0, 1, 2]), fmt="%d")
        with pytest.raises(SystemExit):
            main(["compare", str(a), str(b)])


class TestConvert:
    @pytest.mark.parametrize("suffix,fmt", [
        ("metis", "metis"), ("mtx", "mtx"), ("csrz.npz", "csrz"),
    ])
    def test_roundtrip_via_convert(self, karate_file, tmp_path, suffix, fmt,
                                   capsys):
        out = tmp_path / f"k.{suffix}"
        assert main(["convert", karate_file, str(out)]) == 0
        back = tmp_path / "back.txt"
        assert main(["convert", str(out), str(back),
                     "--input-format", fmt]) == 0
        from repro.graph.io import read_edge_list

        assert read_edge_list(back) == karate_club()


class TestBench:
    def test_list_experiments(self, capsys):
        assert main(["bench", "list"]) == 0
        out = capsys.readouterr().out
        for eid in ("table1", "table2", "fig7", "fig10"):
            assert eid in out

    def test_run_table1(self, capsys):
        assert main(["bench", "table1", "--scale", "0.3"]) == 0
        assert "Table 1" in capsys.readouterr().out

    def test_unknown_experiment(self):
        from repro.utils.errors import ValidationError

        with pytest.raises(ValidationError):
            main(["bench", "fig99"])


def test_version(capsys):
    with pytest.raises(SystemExit) as exc:
        main(["--version"])
    assert exc.value.code == 0


class TestObs:
    def test_trace_validate_report_flow(self, karate_file, tmp_path, capsys):
        trace = tmp_path / "trace.json"
        assert main(["obs", "trace", karate_file, "--out", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "spans:" in out
        assert f"trace written to {trace} (chrome)" in out
        assert "TOTAL" in out  # breakdown printed inline

        assert main(["obs", "validate", str(trace)]) == 0
        assert "schema valid" in capsys.readouterr().out

        assert main(["obs", "report", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "== Runtime breakdown (Fig. 8 buckets) ==" in out
        assert "== Span tree ==" in out
        assert "== Convergence ==" in out

    def test_trace_serial_variant(self, karate_file, tmp_path, capsys):
        trace = tmp_path / "trace.json"
        assert main(["obs", "trace", karate_file, "--variant", "serial",
                     "--out", str(trace)]) == 0
        assert main(["obs", "validate", str(trace)]) == 0

    def test_trace_jsonl_format_and_report(self, karate_file, tmp_path, capsys):
        trace = tmp_path / "trace.jsonl"
        assert main(["obs", "trace", karate_file, "--trace-format", "jsonl",
                     "--out", str(trace)]) == 0
        assert "(jsonl)" in capsys.readouterr().out
        assert main(["obs", "report", str(trace), "--no-tree"]) == 0
        out = capsys.readouterr().out
        assert "== Runtime breakdown (Fig. 8 buckets) ==" in out
        assert "== Span tree ==" not in out

    def test_trace_flat_format(self, karate_file, tmp_path, capsys):
        trace = tmp_path / "trace.txt"
        assert main(["obs", "trace", karate_file, "--trace-format", "flat",
                     "--out", str(trace)]) == 0
        assert "step.clustering.seconds" in trace.read_text()

    def test_validate_rejects_malformed_trace(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text('{"traceEvents": [{"name": "a", "ph": "B", '
                       '"ts": 0, "pid": 1, "tid": 1}]}')
        assert main(["obs", "validate", str(bad)]) == 1
        assert "INVALID" in capsys.readouterr().out

    def test_trace_dataset_input(self, tmp_path, capsys):
        trace = tmp_path / "trace.json"
        assert main(["obs", "trace", "--dataset", "MG1", "--scale", "0.3",
                     "--out", str(trace)]) == 0
        assert main(["obs", "report", str(trace), "--max-depth", "1"]) == 0
        assert "iteration" not in capsys.readouterr().out.split(
            "== Span tree ==")[1].split("==")[0]

    def test_trace_profile_and_flame(self, karate_file, tmp_path, capsys):
        trace = tmp_path / "trace.json"
        flame = tmp_path / "run.collapsed"
        assert main(["obs", "trace", karate_file, "--out", str(trace),
                     "--flame", str(flame)]) == 0
        out = capsys.readouterr().out
        assert "profile:" in out
        assert f"collapsed stacks written to {flame}" in out
        assert flame.exists()
        import json as json_mod

        payload = json_mod.loads(trace.read_text())
        assert "reproProfile" in payload

    def test_trace_serial_profile(self, karate_file, tmp_path, capsys):
        trace = tmp_path / "trace.json"
        assert main(["obs", "trace", karate_file, "--variant", "serial",
                     "--profile", "--out", str(trace)]) == 0
        assert "profile:" in capsys.readouterr().out


class TestObsInputErrors:
    """Unusable input exits 2 with a clear message, never a traceback."""

    def test_trace_missing_graph_file(self, tmp_path, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["obs", "trace", str(tmp_path / "absent.txt"),
                  "--out", str(tmp_path / "trace.json")])
        assert exc.value.code == 2
        assert "no such file" in capsys.readouterr().err

    def test_report_missing_file(self, tmp_path, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["obs", "report", str(tmp_path / "absent.json")])
        assert exc.value.code == 2
        assert "no such file" in capsys.readouterr().err

    def test_report_directory(self, tmp_path, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["obs", "report", str(tmp_path)])
        assert exc.value.code == 2
        assert "directory" in capsys.readouterr().err

    def test_report_non_json(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("this is { not json")
        with pytest.raises(SystemExit) as exc:
            main(["obs", "report", str(bad)])
        assert exc.value.code == 2
        assert "error:" in capsys.readouterr().err

    def test_report_binary_file(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_bytes(b"\x80\x81\x82\xff")
        with pytest.raises(SystemExit) as exc:
            main(["obs", "report", str(bad)])
        assert exc.value.code == 2

    def test_validate_missing_file(self, tmp_path, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["obs", "validate", str(tmp_path / "absent.json")])
        assert exc.value.code == 2
        assert "no such file" in capsys.readouterr().err

    def test_validate_non_json(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{truncated")
        with pytest.raises(SystemExit) as exc:
            main(["obs", "validate", str(bad)])
        assert exc.value.code == 2
        assert "not valid JSON" in capsys.readouterr().err


class TestObsRegress:
    @staticmethod
    def write_records(path, seconds=1.0, q=0.9):
        import json as json_mod

        records = [{
            "graph": "planted-50k", "kernel": "optimized",
            "seconds": seconds, "Q": q, "commit": "aaaa",
            "date": "2026-01-01", "backend": "numpy",
        }]
        path.write_text(json_mod.dumps(records))
        return str(path)

    def test_pass_on_identical_records(self, tmp_path, capsys):
        committed = self.write_records(tmp_path / "committed.json")
        fresh = self.write_records(tmp_path / "fresh.json")
        assert main(["obs", "regress", "--kernels", committed, "--no-batch",
                     "--fresh-kernels", fresh]) == 0
        assert "PASS" in capsys.readouterr().out

    def test_fail_on_slowed_records(self, tmp_path, capsys):
        committed = self.write_records(tmp_path / "committed.json",
                                       seconds=1.0)
        slowed = self.write_records(tmp_path / "fresh.json", seconds=10.0)
        assert main(["obs", "regress", "--kernels", committed, "--no-batch",
                     "--fresh-kernels", slowed]) == 1
        out = capsys.readouterr().out
        assert "REGRESSION" in out
        assert "FAIL" in out

    def test_missing_committed_file_exits_2(self, tmp_path, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["obs", "regress", "--kernels",
                  str(tmp_path / "absent.json"), "--no-batch", "--rerun"])
        assert exc.value.code == 2

    def test_no_fresh_records_exits_2(self, tmp_path, capsys):
        committed = self.write_records(tmp_path / "committed.json")
        with pytest.raises(SystemExit) as exc:
            main(["obs", "regress", "--kernels", committed, "--no-batch"])
        assert exc.value.code == 2
        assert "no fresh records" in capsys.readouterr().err

    def test_unknown_rerun_graph_exits_2(self, tmp_path, capsys):
        committed = self.write_records(tmp_path / "committed.json")
        with pytest.raises(SystemExit) as exc:
            main(["obs", "regress", "--kernels", committed, "--no-batch",
                  "--rerun", "--graphs", "not-a-graph"])
        assert exc.value.code == 2
        assert "unknown --graphs" in capsys.readouterr().err

    def test_malformed_records_exit_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text('{"not": "a list"}')
        with pytest.raises(SystemExit) as exc:
            main(["obs", "regress", "--kernels", str(bad), "--no-batch",
                  "--rerun"])
        assert exc.value.code == 2
