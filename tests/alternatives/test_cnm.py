"""Unit tests for the CNM agglomerative comparator."""

import numpy as np
import pytest

from repro.alternatives.cnm import cnm
from repro.core.modularity import modularity
from repro.graph.csr import CSRGraph
from repro.graph.generators import (
    complete_graph,
    karate_club,
    planted_partition,
    two_cliques_bridge,
)


class TestCNM:
    def test_two_cliques_exact(self, cliques8):
        result = cnm(cliques8)
        assert result.num_communities == 2
        assert len(set(result.communities[:4])) == 1
        assert len(set(result.communities[4:])) == 1

    def test_modularity_consistent(self, karate):
        result = cnm(karate)
        assert result.modularity == pytest.approx(
            modularity(karate, result.communities)
        )

    def test_karate_reasonable_quality(self, karate):
        result = cnm(karate)
        # The published CNM result on karate is Q ~ 0.38.
        assert result.modularity > 0.33
        assert 2 <= result.num_communities <= 8

    def test_merges_monotone_gain_positive(self, karate):
        result = cnm(karate)
        assert result.num_merges == len(result.merges)
        for _, _, gain in result.merges:
            assert gain > 0

    def test_merge_count_matches_communities(self, karate):
        result = cnm(karate)
        assert result.num_communities == 34 - result.num_merges

    def test_every_merge_improved_q(self, planted):
        """Replaying the merge list reproduces a monotone Q sequence."""
        result = cnm(planted)
        comm = np.arange(planted.num_vertices, dtype=np.int64)
        q = modularity(planted, comm)
        for a, b, gain in result.merges:
            comm[comm == b] = a
            q_new = modularity(planted, comm)
            assert q_new == pytest.approx(q + gain, abs=1e-9)
            q = q_new

    def test_planted_recovery(self, planted, planted_truth):
        result = cnm(planted)
        assert result.modularity >= modularity(planted, planted_truth) - 0.06

    def test_clique_single_community(self):
        assert cnm(complete_graph(6)).num_communities == 1

    def test_no_positive_merge_stays_singleton(self):
        # Two isolated vertices joined by nothing: nothing to merge.
        g = CSRGraph.empty(3)
        result = cnm(g)
        assert result.num_communities == 3
        assert result.num_merges == 0

    def test_empty_graph(self):
        result = cnm(CSRGraph.empty(0))
        assert result.communities.shape == (0,)

    def test_self_loops_tolerated(self, loops_graph):
        result = cnm(loops_graph)
        assert result.modularity == pytest.approx(
            modularity(loops_graph, result.communities)
        )

    def test_min_gain_cutoff(self, karate):
        strict = cnm(karate, min_gain=0.05)
        assert strict.num_merges <= cnm(karate).num_merges

    def test_trails_louvain_on_average(self):
        """§7: Louvain produces better modularity than CNM (usually)."""
        from repro.core.louvain_serial import louvain_serial

        wins = 0
        for seed in range(3):
            g = planted_partition(6, 25, 0.3, 0.02, seed=seed)
            if louvain_serial(g).modularity >= cnm(g).modularity - 1e-9:
                wins += 1
        assert wins >= 2
