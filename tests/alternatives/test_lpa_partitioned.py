"""Unit tests for label propagation, PLM-style sweep, and the
distributed partitioned-Louvain emulation."""

import numpy as np
import pytest

from repro.alternatives.lpa import label_propagation, plm_style
from repro.alternatives.partitioned import partitioned_louvain
from repro.core.modularity import modularity
from repro.graph.csr import CSRGraph
from repro.graph.generators import planted_partition, two_cliques_bridge
from repro.utils.errors import ValidationError


class TestLabelPropagation:
    def test_two_cliques(self, cliques8):
        result = label_propagation(cliques8)
        assert result.converged
        # LPA finds the two cliques (bridge weight 1 < clique weight 3).
        assert result.num_communities == 2

    @pytest.mark.parametrize("mode", ["async", "sync"])
    def test_modularity_consistent(self, planted, mode):
        result = label_propagation(planted, mode=mode)
        assert result.modularity == pytest.approx(
            modularity(planted, result.communities)
        )

    def test_async_finds_planted_structure(self, planted):
        result = label_propagation(planted)
        assert result.modularity > 0.4
        assert result.converged

    def test_deterministic(self, planted):
        r1 = label_propagation(planted, seed=3)
        r2 = label_propagation(planted, seed=3)
        np.testing.assert_array_equal(r1.communities, r2.communities)

    def test_sync_deterministic(self, planted):
        r1 = label_propagation(planted, mode="sync")
        r2 = label_propagation(planted, mode="sync")
        np.testing.assert_array_equal(r1.communities, r2.communities)

    def test_edgeless(self):
        result = label_propagation(CSRGraph.empty(4))
        assert result.num_communities == 4
        assert result.converged

    def test_validation(self, planted):
        with pytest.raises(ValidationError):
            label_propagation(planted, max_iterations=0)
        with pytest.raises(ValidationError):
            label_propagation(planted, mode="chaotic")


class TestPLMStyle:
    def test_two_cliques(self, cliques8):
        result = plm_style(cliques8)
        assert result.num_communities == 2
        assert result.converged

    def test_modularity_consistent(self, planted):
        result = plm_style(planted)
        assert result.modularity == pytest.approx(
            modularity(planted, result.communities)
        )

    def test_single_level_trails_full_pipeline(self):
        """No phases/coarsening -> PLM-style cannot exceed the multi-phase
        pipeline by much, and usually trails it (what §7 reports)."""
        from repro.core.driver import louvain

        trails = 0
        for seed in range(3):
            g = planted_partition(6, 25, 0.25, 0.02, seed=seed)
            full = louvain(g, variant="baseline+VF+Color",
                           coloring_min_vertices=8).modularity
            single = plm_style(g).modularity
            if full >= single - 1e-9:
                trails += 1
        assert trails >= 2

    def test_validation(self, planted):
        with pytest.raises(ValidationError):
            plm_style(planted, max_iterations=0)


class TestPartitionedLouvain:
    def test_single_part_matches_serial_quality(self, planted):
        from repro.core.louvain_serial import louvain_serial

        result = partitioned_louvain(planted, 1)
        serial = louvain_serial(planted)
        assert result.cut_fraction == 0.0
        assert result.modularity == pytest.approx(serial.modularity, abs=0.02)

    def test_modularity_consistent(self, planted):
        result = partitioned_louvain(planted, 4)
        assert result.modularity == pytest.approx(
            modularity(planted, result.communities)
        )

    def test_aggregation_recovers_from_local(self, planted):
        """The master aggregation can only improve on the concatenated
        local solutions (it re-optimizes with cut edges restored)."""
        result = partitioned_louvain(planted, 4)
        assert result.modularity >= result.local_modularity - 1e-9

    def test_random_partition_cuts_more(self, planted):
        block = partitioned_louvain(planted, 4, partition="block")
        rand = partitioned_louvain(planted, 4, partition="random", seed=1)
        # Block split aligns with the planted blocks; random does not.
        assert rand.cut_fraction >= block.cut_fraction

    def test_block_partition_on_aligned_input(self, planted, planted_truth):
        """When partition boundaries align with communities the scheme is
        nearly lossless — the [25] best case."""
        result = partitioned_louvain(planted, 3)
        assert result.modularity >= modularity(planted, planted_truth) - 0.05

    def test_num_parts_recorded(self, planted):
        assert partitioned_louvain(planted, 5).num_parts == 5

    def test_empty_graph(self):
        result = partitioned_louvain(CSRGraph.empty(0), 2)
        assert result.communities.shape == (0,)

    def test_validation(self, planted):
        with pytest.raises(ValidationError):
            partitioned_louvain(planted, 0)
        with pytest.raises(ValidationError):
            partitioned_louvain(planted, 2, partition="metis")
