"""Unit tests for the shared utility layer."""

import time

import numpy as np
import pytest

from repro.utils.arrays import (
    check_permutation,
    renumber_labels,
    run_boundaries,
    segment_max,
    segment_sums,
)
from repro.utils.errors import (
    GraphFormatError,
    GraphStructureError,
    ReproError,
    ValidationError,
)
from repro.utils.rng import as_rng, spawn
from repro.utils.timing import StepTimer, Timer


class TestErrors:
    def test_hierarchy(self):
        assert issubclass(ValidationError, ReproError)
        assert issubclass(ValidationError, ValueError)
        assert issubclass(GraphStructureError, ValidationError)
        assert issubclass(GraphFormatError, ReproError)

    def test_catchable_as_valueerror(self):
        with pytest.raises(ValueError):
            raise GraphStructureError("boom")


class TestArrays:
    def test_run_boundaries(self):
        out = run_boundaries(np.array([3, 3, 5, 9, 9, 9]))
        assert out.tolist() == [0, 2, 3]

    def test_run_boundaries_empty_and_single(self):
        assert run_boundaries(np.array([])).tolist() == []
        assert run_boundaries(np.array([7])).tolist() == [0]

    def test_segment_sums(self):
        keys = np.array([1, 1, 2, 2, 2])
        vals = np.array([1.0, 2.0, 3.0, 4.0, 5.0])
        starts = run_boundaries(keys)
        assert segment_sums(vals, starts).tolist() == [3.0, 12.0]

    def test_segment_sums_empty(self):
        assert segment_sums(np.array([]), np.array([], dtype=np.int64)).size == 0

    def test_segment_max(self):
        out = segment_max(np.array([1.0, 5.0, 2.0]), np.array([0, 1, 0]), 3,
                          fill=-np.inf)
        assert out[0] == 2.0 and out[1] == 5.0 and out[2] == -np.inf

    def test_check_permutation(self):
        check_permutation(np.array([2, 0, 1]), 3)
        with pytest.raises(ValidationError):
            check_permutation(np.array([0, 0, 1]), 3)
        with pytest.raises(ValidationError):
            check_permutation(np.array([0, 1]), 3)
        with pytest.raises(ValidationError):
            check_permutation(np.array([0, 1, 5]), 3)

    def test_renumber_labels_preserves_order(self):
        dense, k = renumber_labels(np.array([9, 3, 9, 7]))
        assert k == 3
        assert dense.tolist() == [2, 0, 2, 1]

    def test_renumber_empty(self):
        dense, k = renumber_labels(np.array([], dtype=np.int64))
        assert k == 0 and dense.size == 0


class TestRng:
    def test_int_seed_deterministic(self):
        assert as_rng(5).integers(0, 100) == as_rng(5).integers(0, 100)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert as_rng(gen) is gen

    def test_none_gives_generator(self):
        assert isinstance(as_rng(None), np.random.Generator)

    def test_spawn_independent_and_deterministic(self):
        children1 = spawn(as_rng(1), 3)
        children2 = spawn(as_rng(1), 3)
        draws1 = [c.integers(0, 10**9) for c in children1]
        draws2 = [c.integers(0, 10**9) for c in children2]
        assert draws1 == draws2
        assert len(set(draws1)) == 3  # overwhelmingly likely distinct


class TestTimers:
    def test_timer_context(self):
        with Timer() as t:
            time.sleep(0.001)
        assert t.elapsed >= 0.001

    def test_timer_accumulates(self):
        t = Timer()
        t.start(); t.stop()
        first = t.elapsed
        t.start(); t.stop()
        assert t.elapsed >= first

    def test_timer_stop_without_start(self):
        with pytest.raises(RuntimeError):
            Timer().stop()

    def test_step_timer(self):
        st = StepTimer()
        with st.step("a"):
            pass
        st.add("b", 2.0)
        assert st.get("a") >= 0.0
        assert st.get("b") == 2.0
        assert st.get("missing") == 0.0
        assert st.total() == pytest.approx(st.get("a") + 2.0)

    def test_step_timer_merge(self):
        a = StepTimer()
        a.add("x", 1.0)
        b = StepTimer()
        b.add("x", 2.0)
        b.add("y", 3.0)
        a.merge(b)
        assert a.get("x") == 3.0 and a.get("y") == 3.0
