"""Run the doctest examples embedded in public docstrings.

Docstring examples are documentation with an expiry date unless executed;
this module keeps them honest.  Modules are resolved by name with
importlib because several packages re-export same-named callables (e.g.
``repro.core.modularity`` the function shadows the submodule attribute).
"""

import doctest
import importlib

import pytest

MODULE_NAMES = [
    "repro.bench.ascii_plot",
    "repro.core.batch",
    "repro.core.modularity",
    "repro.dynamic.dynamic_graph",
    "repro.graph.batch",
    "repro.graph.build",
    "repro.lint.sanitizer",
    "repro.metrics.pairs",
    "repro.parallel.atomic",
    "repro.robust.budget",
    "repro.utils.arrays",
    "repro.utils.rng",
    "repro.utils.timing",
]


@pytest.mark.parametrize("name", MODULE_NAMES)
def test_module_doctests(name):
    module = importlib.import_module(name)
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{name}: {results.failed} doctest failures"
    assert results.attempted > 0, f"{name} has no doctest examples"
