"""Deadline/budget-aware anytime execution: RunBudget validation, the
controller's clocks and degradation ladder, cooperative cancellation with
bitwise-exact resume on every pipeline, signal handling, budget-capped
recovery deadlines, and the ``robust budget`` CLI."""

import multiprocessing as mp
import os
import signal
import threading

import numpy as np
import pytest

from repro.cli import main
from repro.core.config import LouvainConfig
from repro.core.driver import louvain
from repro.core.modularity import modularity
from repro.core.sweep import compute_targets, init_state
from repro.distributed.louvain_dist import distributed_louvain
from repro.graph.generators import planted_partition
from repro.parallel.process_backend import ProcessBackend
from repro.robust.budget import (
    DEGRADATION_LADDER,
    BudgetController,
    RunBudget,
    get_budget,
    peak_memory_mb,
    use_budget,
)
from repro.robust.checkpoint import load_checkpoint
from repro.robust.faults import use_faults
from repro.robust.recovery import RetryPolicy
from repro.utils.errors import ValidationError
from repro.utils.timing import monotonic

_BACKENDS = ["serial", "threads"]
if "fork" in mp.get_all_start_methods():
    _BACKENDS.append("processes")

_HAS_FORK = "fork" in mp.get_all_start_methods()

#: A budget with no live bound: arms the controller (and hence produces a
#: BudgetOutcome) without ever cancelling.  handle_signals is left off so
#: the tests never touch the process-wide handlers unless they mean to.
_GENEROUS = dict(max_phases=1000, handle_signals=False)


@pytest.fixture
def graph():
    # Big enough that baseline Louvain runs several phases, so caps on
    # iterations and phases bite mid-run instead of post-convergence.
    return planted_partition(10, 40, 0.3, 0.005, seed=11)


def _overrides(backend):
    return ({"backend": backend, "num_threads": 2}
            if backend != "serial" else {})


class TestRunBudgetValidation:
    @pytest.mark.parametrize("kwargs", [
        {"deadline": 0.0},
        {"deadline": -1.0},
        {"max_phases": 0},
        {"max_iterations": 0},
        {"max_memory_mb": 0.0},
        {"max_memory_mb": -5.0},
        {"checkpoint": ""},
    ])
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ValidationError):
            RunBudget(**kwargs)

    def test_armed(self):
        # Signal handling alone is a valid budget.
        assert RunBudget().armed
        assert not RunBudget(handle_signals=False).armed
        assert RunBudget(deadline=1.0, handle_signals=False).armed
        assert RunBudget(max_memory_mb=64.0, handle_signals=False).armed

    def test_config_coerces_dict(self):
        cfg = LouvainConfig(budget={"max_phases": 2,
                                    "handle_signals": False})
        assert isinstance(cfg.budget, RunBudget)
        assert cfg.budget.max_phases == 2
        assert not cfg.budget.handle_signals

    def test_config_rejects_bad_type(self):
        with pytest.raises(ValidationError):
            LouvainConfig(budget=30.0)

    def test_controller_rejects_bad_type(self):
        with pytest.raises(ValidationError):
            BudgetController(budget="30s")


class TestBudgetController:
    def test_ambient_default_disarmed(self):
        controller = get_budget()
        assert not controller.armed
        assert not controller.should_stop()
        assert controller.deadline_remaining() is None
        assert controller.pressure() == 0.0
        assert controller.pending_degradations() == []

    def test_use_budget_scopes_ambient(self):
        with use_budget(RunBudget(max_phases=1,
                                  handle_signals=False)) as controller:
            assert get_budget() is controller
            assert controller.armed
        assert not get_budget().armed

    def test_stop_reason_is_sticky(self):
        controller = BudgetController(
            RunBudget(max_iterations=1, handle_signals=False))
        assert controller.stop_reason() is None  # not sticky-None
        controller.note_iteration()
        assert controller.stop_reason() == "max_iterations"
        # A later cancellation request cannot overwrite the first reason.
        controller.request_cancel("sigint")
        assert controller.stop_reason() == "max_iterations"

    def test_request_cancel(self):
        controller = BudgetController(RunBudget(handle_signals=True))
        assert not controller.should_stop()
        controller.request_cancel("sigterm")
        assert controller.stop_reason() == "sigterm"

    def test_deadline_remaining(self):
        controller = BudgetController(
            RunBudget(deadline=100.0, handle_signals=False))
        remaining = controller.deadline_remaining()
        assert 90.0 < remaining <= 100.0
        # No deadline -> no remaining, even when armed by another bound.
        assert BudgetController(
            RunBudget(max_phases=1, handle_signals=False)
        ).deadline_remaining() is None

    def test_memory_bound(self):
        mb = peak_memory_mb()
        if mb is None:
            pytest.skip("resource.getrusage unavailable")
        assert mb > 0
        controller = BudgetController(
            RunBudget(max_memory_mb=0.001, handle_signals=False))
        assert controller.stop_reason() == "memory"

    def test_pressure_and_ladder_order(self):
        controller = BudgetController(
            RunBudget(max_iterations=100, handle_signals=False))
        assert controller.pressure() == 0.0
        controller.iterations = 50
        assert controller.pressure() == pytest.approx(0.5)
        assert controller.pending_degradations() == ["coarse-threshold"]
        controller.note_degradation("coarse-threshold")
        assert controller.pending_degradations() == []
        controller.iterations = 95
        # Both remaining steps crossed at once -> ladder order preserved.
        assert controller.pending_degradations() == ["prune", "no-trace"]
        assert [name for name, _ in DEGRADATION_LADDER] == [
            "coarse-threshold", "prune", "no-trace"]

    def test_degrade_false_skips_ladder(self):
        controller = BudgetController(
            RunBudget(max_iterations=10, degrade=False,
                      handle_signals=False))
        controller.iterations = 9
        assert controller.pending_degradations() == []

    def test_outcome_records(self):
        controller = BudgetController(
            RunBudget(max_phases=5, handle_signals=False))
        controller.note_phase()
        controller.note_iteration()
        controller.note_degradation("prune")
        done = controller.outcome()
        assert done.completed and not done.cancelled
        assert done.reason is None
        assert done.phases_completed == 1
        assert done.iterations_completed == 1
        assert done.degradations == ("prune",)
        stopped = controller.outcome("deadline", checkpoint="/tmp/x.npz")
        assert stopped.cancelled and not stopped.completed
        assert stopped.reason == "deadline"
        assert stopped.checkpoint == "/tmp/x.npz"
        assert stopped.as_dict()["reason"] == "deadline"


class TestRetryDeadlineCap:
    def test_uncapped_without_remaining(self):
        policy = RetryPolicy(chunk_timeout=10.0)
        assert policy.deadline_for(1, remaining=None) == 20.0

    def test_capped_by_remaining_budget(self):
        policy = RetryPolicy(chunk_timeout=10.0)
        assert policy.deadline_for(0, remaining=3.0) == 3.0
        assert policy.deadline_for(2, remaining=3.0) == 3.0

    def test_floored_at_liveness_poll(self):
        # An expired budget must not produce a zero-length chunk deadline
        # (the poll loop needs one tick to observe the timeout).
        policy = RetryPolicy(chunk_timeout=10.0, liveness_poll=0.5)
        assert policy.deadline_for(0, remaining=0.0) == 0.5

    def test_generous_remaining_keeps_backoff(self):
        policy = RetryPolicy(chunk_timeout=10.0)
        assert policy.deadline_for(1, remaining=500.0) == 20.0


class TestAnytimeDriver:
    @pytest.mark.parametrize("backend", _BACKENDS)
    def test_iteration_cap_resumes_bitwise(self, graph, tmp_path,
                                           backend):
        overrides = _overrides(backend)
        baseline = louvain(graph, variant="baseline", **overrides)
        path = tmp_path / "budget.ckpt.npz"
        budget = RunBudget(max_iterations=1, handle_signals=False,
                           checkpoint=str(path))
        cancelled = louvain(graph, variant="baseline", budget=budget,
                            **overrides)
        outcome = cancelled.budget_outcome
        assert outcome is not None and outcome.cancelled
        assert outcome.reason == "max_iterations"
        assert outcome.checkpoint == str(path)
        assert path.exists()
        # The anytime partition is valid on the original graph.
        assert cancelled.communities.shape == (graph.num_vertices,)
        assert cancelled.modularity == pytest.approx(
            modularity(graph, cancelled.communities))
        # An unbudgeted resume reproduces the unbudgeted run bitwise.
        resumed = louvain(graph, variant="baseline", resume=path,
                          **overrides)
        np.testing.assert_array_equal(
            resumed.communities, baseline.communities)
        assert resumed.modularity == baseline.modularity

    def test_max_phases_cancels(self, graph, tmp_path):
        path = tmp_path / "phase.ckpt.npz"
        result = louvain(
            graph, variant="baseline",
            budget=RunBudget(max_phases=1, handle_signals=False,
                             checkpoint=str(path)))
        outcome = result.budget_outcome
        assert outcome.cancelled and outcome.reason == "max_phases"
        assert outcome.phases_completed == 1
        # The cancellation checkpoint is the *next* phase's input.
        assert load_checkpoint(path).phase_index == 1
        resumed = louvain(graph, variant="baseline", resume=path)
        full = louvain(graph, variant="baseline")
        np.testing.assert_array_equal(
            resumed.communities, full.communities)

    def test_tiny_deadline_cancels_before_work(self, graph, tmp_path):
        path = tmp_path / "deadline.ckpt.npz"
        result = louvain(
            graph, variant="baseline",
            budget=RunBudget(deadline=1e-6, handle_signals=False,
                             checkpoint=str(path)))
        outcome = result.budget_outcome
        assert outcome.cancelled and outcome.reason == "deadline"
        assert outcome.phases_completed == 0
        # Even an immediately-expired run returns a valid partition
        # (the singleton start) and a resumable phase-0 checkpoint.
        assert result.communities.shape == (graph.num_vertices,)
        assert result.modularity == pytest.approx(
            modularity(graph, result.communities))
        assert load_checkpoint(path).phase_index == 0
        resumed = louvain(graph, variant="baseline", resume=path)
        full = louvain(graph, variant="baseline")
        np.testing.assert_array_equal(
            resumed.communities, full.communities)

    def test_modularity_monotone_over_completed_phases(self, graph):
        result = louvain(
            graph, variant="baseline",
            budget=RunBudget(max_iterations=3, handle_signals=False))
        phases = result.history.phases
        assert phases  # partial progress was folded in
        for record in phases:
            assert record.end_modularity >= record.start_modularity - 1e-9
        assert result.modularity >= phases[0].start_modularity - 1e-9

    def test_completed_run_reports_outcome(self, graph):
        result = louvain(graph, variant="baseline",
                         budget=RunBudget(**_GENEROUS))
        outcome = result.budget_outcome
        assert outcome is not None
        assert outcome.completed and not outcome.cancelled
        assert outcome.reason is None
        assert outcome.phases_completed == len(result.history.phases)

    def test_unbudgeted_run_has_no_outcome(self, graph):
        assert louvain(graph, variant="baseline").budget_outcome is None

    def test_budget_without_checkpoint_path(self, graph):
        # No checkpoint path anywhere: cancellation still returns the
        # anytime partition, just without a resume artifact.
        result = louvain(
            graph, variant="baseline",
            budget=RunBudget(max_iterations=1, handle_signals=False))
        assert result.budget_outcome.cancelled
        assert result.budget_outcome.checkpoint is None

    def test_budget_falls_back_to_run_checkpoint(self, graph, tmp_path):
        # RunBudget.checkpoint is None -> the run's regular checkpoint=
        # path doubles as the cancellation checkpoint.
        path = tmp_path / "fallback.ckpt.npz"
        result = louvain(
            graph, variant="baseline", checkpoint=path,
            budget=RunBudget(max_iterations=1, handle_signals=False))
        assert result.budget_outcome.checkpoint == str(path)
        assert path.exists()


class TestDegradationLadder:
    def test_ladder_fires_under_phase_pressure(self, graph):
        # Pressure hits 0.5 after the first of two allowed phases, so
        # coarse-threshold fires before the run is cancelled.
        result = louvain(
            graph, variant="baseline",
            budget=RunBudget(max_phases=2, handle_signals=False))
        outcome = result.budget_outcome
        assert "coarse-threshold" in outcome.degradations

    def test_degrade_false_cancels_without_ladder(self, graph):
        result = louvain(
            graph, variant="baseline",
            budget=RunBudget(max_phases=2, degrade=False,
                             handle_signals=False))
        assert result.budget_outcome.degradations == ()

    def test_ladder_is_trajectory_neutral_here(self, graph):
        # In the baseline config the ladder steps are no-ops for the
        # partition trajectory (no colored phases, prune already the
        # effective default), so a budgeted run that completes with
        # degradations still matches the unbudgeted run bitwise.
        baseline = louvain(graph, variant="baseline")
        phases = len(baseline.history.phases)
        result = louvain(
            graph, variant="baseline",
            budget=RunBudget(max_phases=phases, handle_signals=False))
        if result.budget_outcome.cancelled:  # pragma: no cover
            pytest.skip("run did not converge inside its phase budget")
        assert result.budget_outcome.degradations  # pressure was real
        np.testing.assert_array_equal(
            result.communities, baseline.communities)
        assert result.modularity == baseline.modularity


class TestDistributedBudget:
    def test_iteration_cap_resumes_bitwise(self, graph, tmp_path):
        baseline = distributed_louvain(graph, num_ranks=3, seed=0)
        path = tmp_path / "dist-budget.ckpt.npz"
        cancelled = distributed_louvain(
            graph, num_ranks=3, seed=0,
            budget=RunBudget(max_iterations=1, handle_signals=False,
                             checkpoint=str(path)))
        outcome = cancelled.budget_outcome
        assert outcome is not None and outcome.cancelled
        assert outcome.reason == "max_iterations"
        assert path.exists()
        assert cancelled.communities.shape == (graph.num_vertices,)
        resumed = distributed_louvain(graph, num_ranks=3, seed=0,
                                      resume=path)
        np.testing.assert_array_equal(
            resumed.communities, baseline.communities)
        assert resumed.modularity == baseline.modularity

    def test_completed_run_reports_outcome(self, graph):
        result = distributed_louvain(
            graph, num_ranks=3, seed=0,
            budget=RunBudget(**_GENEROUS))
        assert result.budget_outcome.completed
        assert result.budget_outcome.reason is None

    def test_unbudgeted_run_has_no_outcome(self, graph):
        result = distributed_louvain(graph, num_ranks=3, seed=0)
        assert result.budget_outcome is None


class TestSignals:
    def test_first_sigint_requests_cancel(self):
        controller = BudgetController(RunBudget())
        with controller.signal_scope():
            os.kill(os.getpid(), signal.SIGINT)
            # Force a bytecode boundary so the handler runs.
            assert controller.should_stop()
        assert controller.stop_reason() == "sigint"

    def test_first_sigterm_requests_cancel(self):
        controller = BudgetController(RunBudget())
        with controller.signal_scope():
            os.kill(os.getpid(), signal.SIGTERM)
            assert controller.should_stop()
        assert controller.stop_reason() == "sigterm"

    def test_second_signal_escalates(self):
        controller = BudgetController(RunBudget())
        with controller.signal_scope():
            os.kill(os.getpid(), signal.SIGINT)
            assert controller.should_stop()  # handler has run
            with pytest.raises(KeyboardInterrupt):
                os.kill(os.getpid(), signal.SIGINT)
                controller.should_stop()  # deliver the second signal

    def test_handlers_restored_on_exit(self):
        before = (signal.getsignal(signal.SIGINT),
                  signal.getsignal(signal.SIGTERM))
        controller = BudgetController(RunBudget())
        with controller.signal_scope():
            assert signal.getsignal(signal.SIGINT) is not before[0]
        assert (signal.getsignal(signal.SIGINT),
                signal.getsignal(signal.SIGTERM)) == before

    def test_noop_off_main_thread(self):
        before = signal.getsignal(signal.SIGINT)
        seen = []

        def run():
            controller = BudgetController(RunBudget())
            with controller.signal_scope():
                seen.append(signal.getsignal(signal.SIGINT))

        t = threading.Thread(target=run)
        t.start()
        t.join()
        assert seen == [before]  # nothing was installed

    def test_noop_when_handling_disabled(self):
        before = signal.getsignal(signal.SIGINT)
        controller = BudgetController(
            RunBudget(deadline=60.0, handle_signals=False))
        with controller.signal_scope():
            assert signal.getsignal(signal.SIGINT) is before

    def test_sigint_mid_run_checkpoints_and_resumes(self, tmp_path):
        # Integration: a real SIGINT landing mid-run must produce a
        # cancelled-but-valid result with a resumable checkpoint, not a
        # traceback.  An outer no-op handler absorbs a signal that fires
        # after the run's scope already exited (timer race).
        graph = planted_partition(25, 80, 0.25, 0.002, seed=3)
        path = tmp_path / "sigint.ckpt.npz"
        previous = signal.signal(signal.SIGINT, lambda *a: None)
        timer = threading.Timer(
            0.005, os.kill, (os.getpid(), signal.SIGINT))
        try:
            timer.start()
            result = louvain(graph, variant="baseline",
                             budget=RunBudget(checkpoint=str(path)))
        finally:
            timer.cancel()
            signal.signal(signal.SIGINT, previous)
        outcome = result.budget_outcome
        if not outcome.cancelled:
            pytest.skip("run completed before the signal landed")
        assert outcome.reason == "sigint"
        assert result.communities.shape == (graph.num_vertices,)
        assert path.exists()
        resumed = louvain(graph, variant="baseline", resume=path)
        full = louvain(graph, variant="baseline")
        np.testing.assert_array_equal(
            resumed.communities, full.communities)


class TestObsWiring:
    def test_cancellation_counters_and_gauge(self, graph, tmp_path):
        result = louvain(
            graph, variant="baseline", trace=True,
            checkpoint=tmp_path / "obs.ckpt.npz",
            budget=RunBudget(deadline=3600.0, max_iterations=1,
                             handle_signals=False))
        assert result.budget_outcome.cancelled
        snap = result.trace.metrics.snapshot()
        assert snap["counters"]["run.cancelled"] >= 1
        assert snap["counters"]["checkpoint.saved"] >= 1
        # note_iteration refreshed the remaining-deadline gauge.
        assert 0.0 < snap["gauges"]["budget.remaining"] <= 3600.0

    def test_degradation_counter(self, graph):
        result = louvain(
            graph, variant="baseline", trace=True,
            budget=RunBudget(max_phases=2, handle_signals=False))
        snap = result.trace.metrics.snapshot()
        assert snap["counters"]["budget.degraded"] >= 1


@pytest.mark.skipif(not _HAS_FORK,
                    reason="process backend requires the fork start method")
class TestBudgetedRecovery:
    """Satellite: the fault matrix must respect an active deadline."""

    def test_stall_deadline_capped_by_budget(self, planted):
        # chunk_timeout is 30 s, but the run's deadline caps the stalled
        # chunk's wait to the remaining budget — recovery happens in
        # seconds, not half a minute.
        backend = ProcessBackend(
            2, policy=RetryPolicy(chunk_timeout=30.0, liveness_poll=0.05))
        try:
            state = init_state(planted)
            verts = np.arange(planted.num_vertices, dtype=np.int64)
            start = monotonic()
            with use_budget(RunBudget(deadline=1.0,
                                      handle_signals=False)):
                with use_faults("stall:worker=0,chunk=0"):
                    got = backend.sweep_targets(
                        planted, state, verts,
                        use_min_label=True, resolution=1.0)
            elapsed = monotonic() - start
            np.testing.assert_array_equal(
                got, compute_targets(planted, state, verts))
            assert backend.recovery.stalls >= 1
            assert elapsed < 15.0  # far under the 30 s chunk timeout
        finally:
            backend.close()

    def test_no_respawn_once_cancelled(self, planted):
        # A run that has already decided to stop must not fork fresh
        # workers to replace a dead one.
        backend = ProcessBackend(2, policy=RetryPolicy(chunk_timeout=5.0))
        try:
            state = init_state(planted)
            verts = np.arange(planted.num_vertices, dtype=np.int64)
            with use_budget(RunBudget(max_iterations=1,
                                      handle_signals=False)) as ctl:
                ctl.note_iteration()
                assert ctl.should_stop()
                with use_faults("kill:worker=0,chunk=0"):
                    got = backend.sweep_targets(
                        planted, state, verts,
                        use_min_label=True, resolution=1.0)
            np.testing.assert_array_equal(
                got, compute_targets(planted, state, verts))
            assert backend.recovery.deaths >= 1
            assert backend.recovery.respawns == 0
        finally:
            backend.close()

    @pytest.mark.parametrize("fault", [
        "kill:worker=0,chunk=0",
        "stall:worker=0,chunk=0",
        "slow:worker=0,chunk=0",
    ])
    def test_fault_matrix_inside_deadline(self, graph, fault,
                                          monkeypatch):
        # Full budgeted runs under each failure mode terminate well
        # inside deadline-plus-slack and still match the clean run.
        monkeypatch.setenv("REPRO_ROBUST_CHUNK_TIMEOUT", "1")
        baseline = louvain(graph, variant="baseline",
                           backend="processes", num_threads=2)
        start = monotonic()
        result = louvain(
            graph, variant="baseline", backend="processes",
            num_threads=2, fault_plan=fault,
            budget=RunBudget(deadline=60.0, handle_signals=False))
        elapsed = monotonic() - start
        assert elapsed < 60.0
        assert result.budget_outcome.completed  # recovery fit the budget
        np.testing.assert_array_equal(
            result.communities, baseline.communities)


class TestBudgetCLI:
    def test_budget_then_resume_round_trip(self, tmp_path, capsys):
        ckpt = tmp_path / "cli.ckpt.npz"
        full_labels = tmp_path / "full.labels"
        resumed_labels = tmp_path / "resumed.labels"
        graph_args = ["--dataset", "CNR", "--scale", "0.05",
                      "--seed", "1"]
        main(["detect"] + graph_args + ["--variant", "baseline",
              "--output", str(full_labels)])
        main(["robust", "budget"] + graph_args +
             ["--variant", "baseline", "--max-iterations", "1",
              "--checkpoint", str(ckpt)])
        out = capsys.readouterr().out
        assert "cancelled (max_iterations)" in out
        assert str(ckpt) in out
        assert ckpt.exists()
        main(["robust", "resume", str(ckpt)] + graph_args +
             ["--output", str(resumed_labels)])
        np.testing.assert_array_equal(
            np.loadtxt(resumed_labels), np.loadtxt(full_labels))

    def test_completed_budget_run(self, capsys):
        main(["robust", "budget", "--dataset", "CNR", "--scale", "0.05",
              "--seed", "1", "--variant", "baseline",
              "--max-phases", "500"])
        out = capsys.readouterr().out
        assert "status:        completed" in out

    def test_invalid_budget_flag_errors(self):
        with pytest.raises(SystemExit, match="error"):
            main(["robust", "budget", "--dataset", "CNR",
                  "--scale", "0.05", "--deadline", "-2"])
