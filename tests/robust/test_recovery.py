"""Retry policy plus end-to-end worker-failure recovery through the backend."""

import multiprocessing as mp

import numpy as np
import pytest

from repro.core.driver import louvain
from repro.core.sweep import compute_targets, init_state
from repro.parallel.process_backend import ProcessBackend
from repro.robust.faults import use_faults
from repro.robust.recovery import (
    RecoveryStats,
    RetryPolicy,
    chunk_timeout_default,
)
from repro.utils.errors import ValidationError

pytestmark = pytest.mark.skipif(
    "fork" not in mp.get_all_start_methods(),
    reason="process backend requires the fork start method",
)


class TestRetryPolicy:
    def test_defaults(self, monkeypatch):
        monkeypatch.delenv("REPRO_ROBUST_CHUNK_TIMEOUT", raising=False)
        policy = RetryPolicy()
        assert policy.chunk_timeout == 60.0
        assert policy.max_retries == 3
        assert policy.max_respawns is None
        assert policy.respawn_budget(4) == 4

    def test_explicit_respawn_budget(self):
        assert RetryPolicy(max_respawns=2).respawn_budget(8) == 2
        assert RetryPolicy(max_respawns=0).respawn_budget(8) == 0

    def test_deadline_backoff_grows(self):
        policy = RetryPolicy(chunk_timeout=10.0)
        assert policy.deadline_for(0) == 10.0
        assert policy.deadline_for(1) == 20.0
        assert policy.deadline_for(2) == 30.0

    @pytest.mark.parametrize("kwargs", [
        {"chunk_timeout": 0.0},
        {"chunk_timeout": -1.0},
        {"max_retries": -1},
        {"max_respawns": -1},
        {"liveness_poll": 0.0},
    ])
    def test_invalid_policy_rejected(self, kwargs):
        with pytest.raises(ValidationError):
            RetryPolicy(**kwargs)

    def test_chunk_timeout_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_ROBUST_CHUNK_TIMEOUT", raising=False)
        assert chunk_timeout_default() == 60.0
        monkeypatch.setenv("REPRO_ROBUST_CHUNK_TIMEOUT", "2.5")
        assert chunk_timeout_default() == 2.5
        monkeypatch.setenv("REPRO_ROBUST_CHUNK_TIMEOUT", "0")
        with pytest.raises(ValidationError):
            chunk_timeout_default()
        monkeypatch.setenv("REPRO_ROBUST_CHUNK_TIMEOUT", "soon")
        with pytest.raises(ValidationError):
            chunk_timeout_default()

    def test_stats_snapshot(self):
        stats = RecoveryStats()
        stats.retries += 2
        stats.deaths += 1
        snap = stats.snapshot()
        assert snap["retries"] == 2
        assert snap["deaths"] == 1
        assert snap["fallbacks"] == 0


def _recovered_targets(planted, fault_plan, policy=None):
    """One process-backend sweep under ``fault_plan``; returns targets+stats.

    The executor captures the ambient injector's plan when it is built
    (lazily, at the first sweep), so the ``use_faults`` scope must wrap
    the ``sweep_targets`` call.
    """
    backend = ProcessBackend(2, policy=policy)
    try:
        state = init_state(planted)
        verts = np.arange(planted.num_vertices, dtype=np.int64)
        with use_faults(fault_plan):
            got = backend.sweep_targets(planted, state, verts,
                                        use_min_label=True, resolution=1.0)
        return got, compute_targets(planted, state, verts), backend.recovery
    finally:
        backend.close()


class TestBackendRecovery:
    """Each injected failure mode must recover bitwise-identically."""

    def test_killed_worker(self, planted):
        got, expected, recovery = _recovered_targets(
            planted, "kill:worker=0,chunk=0"
        )
        np.testing.assert_array_equal(got, expected)
        assert recovery.deaths >= 1
        assert recovery.retries >= 1
        assert recovery.respawns >= 1

    def test_stalled_worker(self, planted):
        got, expected, recovery = _recovered_targets(
            planted, "stall:worker=0,chunk=0",
            policy=RetryPolicy(chunk_timeout=1.0),
        )
        np.testing.assert_array_equal(got, expected)
        assert recovery.stalls >= 1
        assert recovery.retries >= 1

    def test_corrupt_message(self, planted):
        got, expected, recovery = _recovered_targets(
            planted, "corrupt:worker=0,chunk=0",
            policy=RetryPolicy(chunk_timeout=1.0),
        )
        np.testing.assert_array_equal(got, expected)
        assert recovery.corrupt_messages >= 1

    def test_slow_worker_is_not_a_failure(self, planted):
        got, expected, recovery = _recovered_targets(
            planted, "slow:worker=0,chunk=0"
        )
        np.testing.assert_array_equal(got, expected)
        assert recovery.deaths == 0
        assert recovery.retries == 0


class TestDriverRecovery:
    def test_killed_worker_full_run_identical(self, planted):
        baseline = louvain(planted, variant="baseline")
        recovered = louvain(
            planted,
            variant="baseline",
            backend="processes",
            num_threads=2,
            fault_plan="kill:worker=0,chunk=0",
            trace=True,
        )
        np.testing.assert_array_equal(
            recovered.communities, baseline.communities
        )
        assert recovered.modularity == baseline.modularity
        counters = recovered.trace.metrics.snapshot()["counters"]
        assert counters["worker.retries"] >= 1
        assert counters["worker.respawns"] >= 1
