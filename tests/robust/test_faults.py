"""Fault-plan DSL, injector matching, and the ambient-injector scope."""

import pytest

from repro.obs.trace import Tracer, use_tracer
from repro.robust.faults import (
    FaultInjector,
    FaultSpec,
    apply_chunk_fault,
    fault_plan_default,
    get_injector,
    parse_fault_plan,
    use_faults,
)
from repro.utils.errors import FaultInjected, ValidationError


class TestPlanParsing:
    def test_empty_and_none_plans(self):
        assert parse_fault_plan(None) == ()
        assert parse_fault_plan("") == ()
        assert parse_fault_plan("  ;  ") == ()

    def test_single_spec(self):
        (spec,) = parse_fault_plan("kill:worker=0,chunk=1")
        assert spec == FaultSpec(action="kill", worker=0, chunk=1)

    def test_multiple_specs(self):
        specs = parse_fault_plan(
            "stall:worker=1,delay=30; raise:phase=2,sweep=0"
        )
        assert [s.action for s in specs] == ["stall", "raise"]
        assert specs[0].delay == 30.0
        assert specs[1].phase == 2 and specs[1].sweep == 0

    def test_wildcards_and_times(self):
        (spec,) = parse_fault_plan("kill:chunk=0,times=2")
        assert spec.worker is None
        assert spec.times == 2

    def test_default_delays(self):
        (stall,) = parse_fault_plan("stall")
        (slow,) = parse_fault_plan("slow")
        (kill,) = parse_fault_plan("kill")
        assert stall.effective_delay == 3600.0
        assert slow.effective_delay == 0.25
        assert kill.effective_delay == 0.0

    @pytest.mark.parametrize("plan", [
        "explode:worker=0",            # unknown action
        "kill:banana=1",               # unknown key
        "kill:worker",                 # malformed arg
        "kill:worker=x",               # bad int
        "slow:delay=fast",             # bad float
        "kill:times=0",                # times < 1
        "slow:delay=-1",               # negative delay
    ])
    def test_invalid_plans_rejected(self, plan):
        with pytest.raises(ValidationError):
            parse_fault_plan(plan)

    def test_env_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_FAULTS", raising=False)
        assert fault_plan_default() is None
        monkeypatch.setenv("REPRO_FAULTS", "kill:worker=0")
        assert fault_plan_default() == "kill:worker=0"

    def test_config_validates_plan(self):
        from repro.core.config import LouvainConfig

        assert LouvainConfig(
            fault_plan="kill:worker=0"
        ).fault_plan == "kill:worker=0"
        with pytest.raises(ValidationError):
            LouvainConfig(fault_plan="explode")


class TestInjectorMatching:
    def test_chunk_match_and_exhaustion(self):
        inj = FaultInjector.from_plan("kill:worker=0,chunk=1")
        assert inj.armed
        assert inj.on_chunk(1, 1) is None      # wrong worker
        assert inj.on_chunk(0, 0) is None      # wrong chunk
        spec = inj.on_chunk(0, 1)
        assert spec is not None and spec.action == "kill"
        assert inj.on_chunk(0, 1) is None      # times=1 exhausted
        assert not inj.armed

    def test_wildcard_matches_any_worker(self):
        inj = FaultInjector.from_plan("slow:chunk=0,times=2")
        assert inj.on_chunk(3, 0) is not None
        assert inj.on_chunk(7, 0) is not None
        assert inj.on_chunk(1, 0) is None

    def test_on_sweep_raises(self):
        inj = FaultInjector.from_plan("raise:phase=1,sweep=2")
        inj.on_sweep(0, 0)  # no match: silent
        inj.on_sweep(1, 0)
        with pytest.raises(FaultInjected):
            inj.on_sweep(1, 2)

    def test_chunk_actions_do_not_fire_at_sweep_site(self):
        inj = FaultInjector.from_plan("kill:worker=0")
        inj.on_sweep(0, 0)  # must not match (kill is a chunk action)
        assert inj.armed

    def test_firing_counts_on_tracer(self):
        tracer = Tracer(enabled=True)
        with use_tracer(tracer):
            inj = FaultInjector.from_plan("slow:chunk=0; raise:phase=0")
            inj.on_chunk(0, 0)
            with pytest.raises(FaultInjected):
                inj.on_sweep(0, 0)
        assert tracer.metrics.counters["fault.injected"] == 2.0

    def test_apply_slow_and_corrupt(self):
        assert apply_chunk_fault(
            FaultSpec(action="slow", delay=0.0)
        ) is False
        assert apply_chunk_fault(FaultSpec(action="corrupt")) is True


class TestAmbientScope:
    def test_use_faults_restores_previous(self):
        before = get_injector()
        with use_faults("kill:worker=0") as inj:
            assert get_injector() is inj
            assert inj.armed
            assert inj.plan == "kill:worker=0"
        assert get_injector() is before

    def test_default_ambient_is_disarmed(self):
        inj = get_injector()
        assert not inj.armed
        assert inj.on_chunk(0, 0) is None
        inj.on_sweep(0, 0)  # no-op
