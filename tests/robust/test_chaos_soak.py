"""Chaos soak: randomized fault plans under an active RunBudget.

Each case draws a fault plan from a seeded RNG and runs the full
process-backend pipeline under a wall-clock budget.  Whatever the
combination does — recover, degrade, or cancel — the run must terminate
inside the deadline plus one sweep's slack and hand back a valid
partition; a cancelled run must also leave a loadable checkpoint.  CI
runs this file as its own smoke job (see .github/workflows/ci.yml).
"""

import multiprocessing as mp
import random

import numpy as np
import pytest

from repro.core.driver import louvain
from repro.core.modularity import modularity
from repro.graph.generators import planted_partition
from repro.robust.budget import RunBudget
from repro.robust.checkpoint import load_checkpoint

pytestmark = pytest.mark.skipif(
    "fork" not in mp.get_all_start_methods(),
    reason="process backend requires the fork start method",
)

_FAULTS = ("kill", "stall", "slow", "corrupt")
_DEADLINE = 30.0  # generous on CI; the point is termination, not speed


def _random_plan(rng: random.Random) -> str:
    """One to three fault directives aimed at early workers/chunks."""
    parts = []
    for _ in range(rng.randint(1, 3)):
        kind = rng.choice(_FAULTS)
        parts.append(
            f"{kind}:worker={rng.randint(0, 1)},chunk={rng.randint(0, 2)}"
        )
    return ";".join(parts)


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_soak_survives_random_faults(seed, tmp_path, monkeypatch):
    # Short chunk timeout so stalls resolve well inside the deadline.
    monkeypatch.setenv("REPRO_ROBUST_CHUNK_TIMEOUT", "1")
    rng = random.Random(seed)
    graph = planted_partition(10, 40, 0.3, 0.005, seed=seed)
    plan = _random_plan(rng)
    ckpt = tmp_path / f"soak-{seed}.ckpt.npz"
    result = louvain(
        graph, variant="baseline", backend="processes", num_threads=2,
        fault_plan=plan,
        budget=RunBudget(deadline=_DEADLINE, handle_signals=False,
                         checkpoint=str(ckpt)))
    outcome = result.budget_outcome
    assert outcome is not None
    assert outcome.elapsed < _DEADLINE + 5.0
    # Valid partition either way (anytime semantics).
    assert result.communities.shape == (graph.num_vertices,)
    assert result.modularity == pytest.approx(
        modularity(graph, result.communities))
    if outcome.cancelled:
        assert outcome.checkpoint == str(ckpt)
        assert load_checkpoint(ckpt).pipeline == "driver"
    else:
        # Recovery is bitwise: a completed faulted run matches clean.
        clean = louvain(graph, variant="baseline", backend="processes",
                        num_threads=2)
        np.testing.assert_array_equal(
            result.communities, clean.communities)
