"""Checkpoint persistence and interrupt/resume equivalence on all pipelines."""

import multiprocessing as mp
import zipfile

import numpy as np
import pytest

from repro.cli import main
from repro.core.driver import louvain
from repro.distributed.louvain_dist import distributed_louvain
from repro.graph.generators import planted_partition
from repro.robust.checkpoint import (
    DIGEST_KEY,
    Checkpoint,
    config_fingerprint,
    describe_checkpoint,
    load_checkpoint,
    save_checkpoint,
)
from repro.utils.errors import (
    CheckpointError,
    FaultInjected,
    ValidationError,
)


@pytest.fixture
def graph():
    # Big enough that baseline Louvain runs several phases, so a
    # phase-1 interrupt leaves real work for the resumed run.
    return planted_partition(10, 40, 0.3, 0.005, seed=11)


def _interrupted(graph, ckpt_path, **overrides):
    """Run until the injected raise fires; the checkpoint must exist."""
    with pytest.raises(FaultInjected):
        louvain(graph, variant="baseline", checkpoint=ckpt_path,
                fault_plan="raise:phase=1,sweep=0", **overrides)
    assert ckpt_path.exists()


class TestPersistence:
    def test_round_trip(self, graph, tmp_path):
        path = tmp_path / "run.ckpt.npz"
        _interrupted(graph, path)
        ckpt = load_checkpoint(path)
        assert ckpt.pipeline == "driver"
        assert ckpt.phase_index == 1
        assert ckpt.n_original == graph.num_vertices
        assert ckpt.m_original == graph.num_edges
        assert ckpt.mapping.shape == (graph.num_vertices,)
        text = describe_checkpoint(ckpt)
        assert "driver" in text and ckpt.config_fingerprint in text

    def test_save_is_atomic(self, graph, tmp_path):
        path = tmp_path / "run.ckpt.npz"
        _interrupted(graph, path)
        assert list(tmp_path.iterdir()) == [path]  # no tmp file left

    def test_missing_file(self, tmp_path):
        with pytest.raises(CheckpointError, match="not found"):
            load_checkpoint(tmp_path / "nope.ckpt.npz")

    def test_garbage_file(self, tmp_path):
        path = tmp_path / "bad.ckpt.npz"
        path.write_bytes(b"not a zip archive")
        with pytest.raises(CheckpointError):
            load_checkpoint(path)

    def test_bad_version(self, graph, tmp_path):
        path = tmp_path / "run.ckpt.npz"
        _interrupted(graph, path)
        data = dict(np.load(path, allow_pickle=False))
        data["format_version"] = np.asarray([999], dtype=np.int64)
        np.savez(path, **data)
        with pytest.raises(CheckpointError, match="version"):
            load_checkpoint(path)

    def test_truncated_archive(self, graph, tmp_path):
        path = tmp_path / "run.ckpt.npz"
        _interrupted(graph, path)
        with zipfile.ZipFile(path) as zf:
            names = zf.namelist()
        assert names  # sanity: npz is a zip of arrays
        path.write_bytes(path.read_bytes()[:100])
        with pytest.raises(CheckpointError):
            load_checkpoint(path)


class TestIntegrity:
    """Content digests + fail-fast fingerprint validation on load."""

    def _tamper(self, path):
        """Alter one array while keeping the stored digest stale."""
        data = dict(np.load(path, allow_pickle=False))
        data["mapping"] = data["mapping"] + 1
        np.savez(path, **data)

    def test_digest_detects_tampered_array(self, graph, tmp_path):
        path = tmp_path / "run.ckpt.npz"
        _interrupted(graph, path)
        self._tamper(path)
        with pytest.raises(CheckpointError, match="digest"):
            load_checkpoint(path)

    def test_bit_flip_detected(self, graph, tmp_path):
        path = tmp_path / "run.ckpt.npz"
        _interrupted(graph, path)
        raw = bytearray(path.read_bytes())
        raw[len(raw) // 2] ^= 0xFF
        path.write_bytes(bytes(raw))
        with pytest.raises(CheckpointError):
            load_checkpoint(path)

    def test_expected_fingerprint_round_trip(self, graph, tmp_path):
        path = tmp_path / "run.ckpt.npz"
        _interrupted(graph, path)
        fingerprint = load_checkpoint(path).config_fingerprint
        ckpt = load_checkpoint(path, expected_fingerprint=fingerprint)
        assert ckpt.config_fingerprint == fingerprint

    def test_fingerprint_validated_before_arrays(self, graph, tmp_path):
        # The fingerprint lives in the tiny meta entry and is checked
        # first: a wrong-config resume fails fast even when the array
        # payload is corrupt — the digest never runs.
        path = tmp_path / "run.ckpt.npz"
        _interrupted(graph, path)
        good = load_checkpoint(path).config_fingerprint
        self._tamper(path)  # arrays corrupt; meta intact
        with pytest.raises(CheckpointError, match="fingerprint"):
            load_checkpoint(path, expected_fingerprint="0" * 40)
        # The matching fingerprint proceeds to the digest, which trips.
        with pytest.raises(CheckpointError, match="digest"):
            load_checkpoint(path, expected_fingerprint=good)

    def test_digestless_archive_still_loads(self, graph, tmp_path):
        # Pre-digest spools remain readable (no digest, no check).
        path = tmp_path / "run.ckpt.npz"
        _interrupted(graph, path)
        data = dict(np.load(path, allow_pickle=False))
        data.pop(DIGEST_KEY)
        np.savez(path, **data)
        assert load_checkpoint(path).phase_index == 1


_BACKENDS = ["serial", "threads"]
if "fork" in mp.get_all_start_methods():
    _BACKENDS.append("processes")


class TestDriverResume:
    @pytest.mark.parametrize("backend", _BACKENDS)
    def test_resume_reproduces_run(self, graph, tmp_path, backend):
        overrides = ({"backend": backend, "num_threads": 2}
                     if backend != "serial" else {})
        baseline = louvain(graph, variant="baseline", **overrides)
        path = tmp_path / "run.ckpt.npz"
        _interrupted(graph, path, **overrides)
        resumed = louvain(graph, variant="baseline", resume=path,
                          **overrides)
        np.testing.assert_array_equal(
            resumed.communities, baseline.communities
        )
        assert resumed.modularity == baseline.modularity

    def test_mechanics_may_differ_on_resume(self, graph, tmp_path):
        baseline = louvain(graph, variant="baseline")
        path = tmp_path / "run.ckpt.npz"
        _interrupted(graph, path)  # serial run wrote the checkpoint
        resumed = louvain(graph, variant="baseline", resume=path,
                          backend="threads", num_threads=2, trace=True)
        np.testing.assert_array_equal(
            resumed.communities, baseline.communities
        )

    def test_semantic_mismatch_rejected(self, graph, tmp_path):
        path = tmp_path / "run.ckpt.npz"
        _interrupted(graph, path)
        with pytest.raises(CheckpointError, match="fingerprint"):
            louvain(graph, variant="baseline", resume=path, seed=99)

    def test_graph_mismatch_rejected(self, graph, tmp_path):
        path = tmp_path / "run.ckpt.npz"
        _interrupted(graph, path)
        other = planted_partition(6, 20, 0.4, 0.01, seed=42)
        with pytest.raises(CheckpointError):
            louvain(other, variant="baseline", resume=path)

    def test_resume_with_warm_start_rejected(self, graph, tmp_path):
        path = tmp_path / "run.ckpt.npz"
        _interrupted(graph, path)
        with pytest.raises(ValidationError):
            louvain(graph, variant="baseline", resume=path,
                    initial_communities=np.zeros(graph.num_vertices,
                                                 dtype=np.int64))

    def test_budget_is_not_semantic(self, graph, tmp_path):
        # Budget fields are excluded from the fingerprint: a checkpoint
        # written by a budget-cancelled run resumes unbudgeted, and a
        # fault-interrupted unbudgeted checkpoint resumes under a fresh
        # budget.  Both directions, both bitwise.
        from repro.robust.budget import RunBudget

        baseline = louvain(graph, variant="baseline")

        # Direction 1: budgeted cancel -> unbudgeted resume.
        path = tmp_path / "budgeted.ckpt.npz"
        cancelled = louvain(
            graph, variant="baseline",
            budget=RunBudget(max_phases=1, handle_signals=False,
                             checkpoint=str(path)))
        assert cancelled.budget_outcome.cancelled
        resumed = louvain(graph, variant="baseline", resume=path)
        np.testing.assert_array_equal(
            resumed.communities, baseline.communities)

        # Direction 2: unbudgeted interrupt -> budgeted resume.
        path2 = tmp_path / "unbudgeted.ckpt.npz"
        _interrupted(graph, path2)
        resumed2 = louvain(
            graph, variant="baseline", resume=path2,
            budget=RunBudget(max_phases=1000, handle_signals=False))
        np.testing.assert_array_equal(
            resumed2.communities, baseline.communities)
        assert resumed2.budget_outcome.completed

    def test_checkpoint_saved_counter(self, graph, tmp_path):
        result = louvain(graph, variant="baseline", trace=True,
                         checkpoint=tmp_path / "run.ckpt.npz")
        counters = result.trace.metrics.snapshot()["counters"]
        assert counters["checkpoint.saved"] >= 1


class TestDistributedResume:
    def test_resume_reproduces_run(self, graph, tmp_path):
        baseline = distributed_louvain(graph, num_ranks=3, seed=0)
        path = tmp_path / "dist.ckpt.npz"
        with pytest.raises(FaultInjected):
            distributed_louvain(graph, num_ranks=3, seed=0,
                                checkpoint=path,
                                fault_plan="raise:phase=1,sweep=0")
        assert path.exists()
        resumed = distributed_louvain(graph, num_ranks=3, seed=0,
                                      resume=path)
        np.testing.assert_array_equal(
            resumed.communities, baseline.communities
        )
        assert resumed.modularity == baseline.modularity

    def test_rank_count_mismatch_rejected(self, graph, tmp_path):
        path = tmp_path / "dist.ckpt.npz"
        with pytest.raises(FaultInjected):
            distributed_louvain(graph, num_ranks=3, seed=0,
                                checkpoint=path,
                                fault_plan="raise:phase=1,sweep=0")
        with pytest.raises(CheckpointError, match="fingerprint"):
            distributed_louvain(graph, num_ranks=4, seed=0, resume=path)

    def test_cross_pipeline_rejected(self, graph, tmp_path):
        path = tmp_path / "dist.ckpt.npz"
        with pytest.raises(FaultInjected):
            distributed_louvain(graph, num_ranks=3, seed=0,
                                checkpoint=path,
                                fault_plan="raise:phase=1,sweep=0")
        with pytest.raises(CheckpointError, match="pipeline"):
            louvain(graph, variant="baseline", resume=path)


class TestCheckpointCLI:
    def test_inspect_and_resume(self, tmp_path, capsys, monkeypatch):
        ckpt = tmp_path / "run.ckpt.npz"
        full_labels = tmp_path / "full.labels"
        resumed_labels = tmp_path / "resumed.labels"
        base = ["detect", "--dataset", "CNR", "--scale", "0.05",
                "--seed", "1"]
        monkeypatch.delenv("REPRO_FAULTS", raising=False)
        main(base + ["--output", str(full_labels)])
        # Interrupt a checkpointing run through the ambient env knob —
        # the CLI has no --fault-plan flag; REPRO_FAULTS is the
        # operator-facing switch.
        monkeypatch.setenv("REPRO_FAULTS", "raise:phase=1,sweep=0")
        with pytest.raises(FaultInjected):
            main(base + ["--checkpoint", str(ckpt)])
        monkeypatch.delenv("REPRO_FAULTS")
        assert ckpt.exists()
        main(["robust", "inspect", str(ckpt)])
        out = capsys.readouterr().out
        assert "driver" in out

        main(["robust", "resume", str(ckpt),
              "--dataset", "CNR", "--scale", "0.05", "--seed", "1",
              "--output", str(resumed_labels)])
        np.testing.assert_array_equal(
            np.loadtxt(resumed_labels), np.loadtxt(full_labels)
        )

    def test_inspect_missing_file_errors(self, tmp_path):
        with pytest.raises(SystemExit, match="error"):
            main(["robust", "inspect", str(tmp_path / "nope.ckpt.npz")])
