"""Unit tests for post-detection community analysis."""

import numpy as np
import pytest

from repro.analysis.communities import (
    community_hubs,
    community_stats,
    community_subgraph,
    summarize_partition,
)
from repro.graph.csr import CSRGraph
from repro.graph.generators import (
    complete_graph,
    karate_club,
    planted_partition,
    star_graph,
    two_cliques_bridge,
)
from repro.utils.errors import ValidationError

TWO_CLIQUES_COMM = np.array([0, 0, 0, 0, 1, 1, 1, 1])


class TestCommunityStats:
    def test_two_cliques_values(self, cliques8):
        stats = community_stats(cliques8, TWO_CLIQUES_COMM)
        assert len(stats) == 2
        for s in stats:
            assert s.size == 4
            assert s.internal_weight == 6.0  # C(4,2) clique edges
            assert s.cut_weight == 1.0       # the bridge
            assert s.volume == 13.0          # 3+3+3+4
            assert s.internal_density == 1.0
            # φ = 1 / min(13, 26-13) = 1/13.
            assert s.conductance == pytest.approx(1 / 13)
            assert not s.is_singlet

    def test_singlet_flag_and_zero_density(self, karate):
        comm = np.arange(34)
        stats = community_stats(karate, comm)
        assert all(s.is_singlet for s in stats)
        assert all(s.internal_weight == 0.0 for s in stats)
        assert all(s.internal_density == 0.0 for s in stats)

    def test_self_loop_counts_internal_once(self, loops_graph):
        stats = community_stats(loops_graph, np.array([0, 0, 1]))
        # Community 0 = {0,1}: loop(0)=2 + edge(0,1)=3.
        assert stats[0].internal_weight == 5.0
        assert stats[0].cut_weight == 1.0
        # Community 1 = {2}: loop 5; singlet, cut = edge to 1.
        assert stats[1].internal_weight == 5.0
        assert stats[1].cut_weight == 1.0

    def test_internal_plus_cut_accounts_total(self, planted, planted_truth):
        stats = community_stats(planted, planted_truth)
        total = sum(s.internal_weight for s in stats) + sum(
            s.cut_weight for s in stats
        ) / 2.0
        assert total == pytest.approx(planted.total_weight)

    def test_whole_graph_zero_conductance(self, karate):
        stats = community_stats(karate, np.zeros(34, dtype=np.int64))
        assert stats[0].conductance == 0.0
        assert stats[0].cut_weight == 0.0

    def test_validation(self, karate):
        with pytest.raises(ValidationError):
            community_stats(karate, np.zeros(3, dtype=np.int64))

    def test_empty_graph(self):
        assert community_stats(CSRGraph.empty(0),
                               np.zeros(0, dtype=np.int64)) == []


class TestSummary:
    def test_two_cliques(self, cliques8):
        summary = summarize_partition(cliques8, TWO_CLIQUES_COMM)
        assert summary.num_communities == 2
        assert summary.num_singlets == 0
        assert summary.size_min == summary.size_max == 4
        # Coverage: 24 of 26 directed weight units are intra.
        assert summary.coverage == pytest.approx(24 / 26)
        assert summary.modularity == pytest.approx(24 / 26 - 2 * (13 / 26) ** 2)

    def test_mixing_parameter_bounds(self, planted, planted_truth):
        summary = summarize_partition(planted, planted_truth)
        assert 0.0 <= summary.mixing_parameter <= 1.0
        # The planted graph is strongly modular -> low mixing.
        assert summary.mixing_parameter < 0.2

    def test_mixing_matches_lfr_knob(self):
        """On an LFR graph the recovered mixing tracks the generator's mu."""
        from repro.graph.generators import lfr_like

        g, truth = lfr_like(600, mu=0.25, seed=0)
        summary = summarize_partition(g, truth.astype(np.int64))
        assert summary.mixing_parameter == pytest.approx(0.25, abs=0.1)

    def test_singleton_partition(self, karate):
        summary = summarize_partition(karate, np.arange(34))
        assert summary.num_singlets == 34
        assert summary.coverage == 0.0
        assert summary.mixing_parameter == pytest.approx(1.0)


class TestSubgraphAndHubs:
    def test_subgraph_of_clique(self, cliques8):
        sub, members = community_subgraph(cliques8, TWO_CLIQUES_COMM, 0)
        assert members.tolist() == [0, 1, 2, 3]
        assert sub == complete_graph(4)

    def test_subgraph_bad_label(self, cliques8):
        with pytest.raises(ValidationError):
            community_subgraph(cliques8, TWO_CLIQUES_COMM, 5)

    def test_hubs_star(self):
        g = star_graph(6)
        hubs = community_hubs(g, np.zeros(7, dtype=np.int64), top=2)
        assert hubs[0][0] == 0  # the hub has the top degree

    def test_hubs_karate(self, karate):
        comm = np.zeros(34, dtype=np.int64)
        hubs = community_hubs(karate, comm, top=2)
        assert set(hubs[0].tolist()) == {33, 0}  # instructor + president

    def test_hubs_top_validation(self, karate):
        with pytest.raises(ValidationError):
            community_hubs(karate, np.zeros(34, dtype=np.int64), top=0)

    def test_end_to_end_with_detection(self, planted):
        from repro.core.driver import louvain

        result = louvain(planted)
        stats = community_stats(planted, result.communities)
        assert len(stats) == result.num_communities
        summary = summarize_partition(planted, result.communities)
        assert summary.modularity == pytest.approx(result.modularity)
