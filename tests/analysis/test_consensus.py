"""Unit tests for consensus clustering and resolution scanning."""

import numpy as np
import pytest

from repro.analysis.consensus import consensus_communities, resolution_scan
from repro.core.config import LouvainConfig
from repro.core.modularity import modularity
from repro.graph.generators import planted_partition
from repro.metrics.pairs import pair_counts
from repro.utils.errors import ValidationError

from tests.core.test_resolution import ring_of_cliques


class TestConsensus:
    def test_recovers_planted_structure(self, planted, planted_truth):
        result = consensus_communities(planted, runs=4)
        assert result.final_agreement == pytest.approx(1.0)
        rand = pair_counts(planted_truth, result.communities).rand_index
        assert rand > 0.95

    def test_modularity_consistent(self, planted):
        result = consensus_communities(planted, runs=3)
        assert result.modularity == pytest.approx(
            modularity(planted, result.communities)
        )

    def test_agreement_at_least_single_run_quality(self, planted):
        from repro.core.driver import louvain

        single = louvain(planted, use_coloring=True,
                         coloring_min_vertices=16, seed=0)
        result = consensus_communities(planted, runs=4)
        assert result.modularity >= single.modularity - 0.05

    def test_unanimous_runs_need_no_levels(self, cliques8):
        # Two cliques: every seed finds the same split immediately.
        result = consensus_communities(cliques8, runs=3)
        assert result.levels == 0
        assert result.num_communities == 2

    def test_level_cap_respected(self, planted):
        result = consensus_communities(planted, runs=3, max_levels=1)
        assert result.levels <= 1

    def test_validation(self, planted):
        with pytest.raises(ValidationError):
            consensus_communities(planted, runs=1)
        with pytest.raises(ValidationError):
            consensus_communities(planted, threshold=0.0)


class TestResolutionScan:
    def test_counts_monotone_in_gamma(self):
        """Higher γ never yields (much) coarser partitions on the ring."""
        g = ring_of_cliques(20, 3)
        points = resolution_scan(g, [0.5, 1.0, 3.0, 6.0])
        counts = [p.num_communities for p in points]
        assert counts == sorted(counts)

    def test_plateau_at_clique_scale(self):
        g = ring_of_cliques(20, 3)
        points = resolution_scan(g, [5.0, 6.0, 7.0])
        assert all(p.num_communities == 20 for p in points)

    def test_standard_q_reported(self):
        g = ring_of_cliques(12, 3)
        (point,) = resolution_scan(g, [2.0])
        assert point.modularity_standard == pytest.approx(
            point.modularity_gamma, abs=1.0
        )
        assert point.resolution == 2.0

    def test_gamma_one_matches_plain_run(self, planted):
        from repro.core.driver import louvain

        (point,) = resolution_scan(planted, [1.0])
        plain = louvain(planted)
        assert point.num_communities == plain.num_communities
        assert point.modularity_gamma == pytest.approx(plain.modularity)

    def test_validation(self, planted):
        with pytest.raises(ValidationError):
            resolution_scan(planted, [])
        with pytest.raises(ValidationError):
            resolution_scan(planted, [0.0, 1.0])
