"""Float32 graphs through the full pipeline (scratch follows weight dtype).

The kernels accumulate in the graph's weight dtype: float64 inputs are
bit-unchanged relative to the pre-dispatch kernels (covered everywhere
else), float32 inputs halve accumulator traffic at a bounded accuracy
cost — these tests pin the dtype plumbing and the accuracy contract.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import LouvainConfig, louvain, modularity
from repro.core.modularity import communities_are_valid
from repro.core.sweep import compute_targets_vectorized, init_state
from repro.core.workspace import SweepWorkspace
from repro.graph.csr import CSRGraph
from repro.graph.generators import planted_partition, two_cliques_bridge


def as_float32(g: CSRGraph) -> CSRGraph:
    return CSRGraph(g.indptr, g.indices, g.weights.astype(np.float32),
                    validate=False)


class TestFloat32Plumbing:
    def test_weights_dtype_is_preserved(self):
        g32 = as_float32(two_cliques_bridge(4))
        assert g32.weights.dtype == np.float32
        assert g32.degrees.dtype == np.float32
        assert g32.self_loop_weights().dtype == np.float32

    def test_non_float_weights_coerced_to_float64(self):
        g = two_cliques_bridge(3)
        coerced = CSRGraph(g.indptr, g.indices,
                           g.weights.astype(np.int64), validate=False)
        assert coerced.weights.dtype == np.float64

    def test_workspace_scratch_follows_weight_dtype(self):
        g32 = as_float32(two_cliques_bridge(4))
        ws = SweepWorkspace(g32)
        assert ws.fweight("probe", 8).dtype == np.float32
        assert ws.fweight("probe64", 8, dtype=np.float64).dtype == np.float64

    def test_kernel_accepts_float32_state(self):
        g32 = as_float32(planted_partition(3, 6, 0.6, 0.1, seed=2))
        state = init_state(g32)
        # comm_degree stays float64 (np.bincount accumulates float64);
        # the kernel mixes dtypes without upcasting the weight scratch.
        assert state.comm_degree.dtype == np.float64
        vertices = np.arange(g32.num_vertices, dtype=np.int64)
        targets = compute_targets_vectorized(
            g32, state, vertices, workspace=SweepWorkspace(g32)
        )
        assert targets.dtype == np.int64
        assert targets.shape == vertices.shape


class TestFloat32Equivalence:
    @pytest.mark.parametrize("seed", range(4))
    def test_modularity_within_tolerance_of_float64(self, seed):
        g64 = planted_partition(4, 12, 0.5, 0.03, seed=seed)
        g32 = as_float32(g64)
        r64 = louvain(g64, LouvainConfig())
        r32 = louvain(g32, LouvainConfig())
        assert communities_are_valid(g32, r32.communities)
        # Same partitions up to float32 rounding of the gain comparisons;
        # the achieved quality must agree to ~single precision.
        assert r32.modularity == pytest.approx(r64.modularity, abs=1e-4)

    def test_small_integer_weights_are_exact(self):
        # Unit/small-integer weights and their sums are exactly
        # representable in float32, so the full trajectory matches the
        # float64 run bit for bit.
        g64 = two_cliques_bridge(5)
        g32 = as_float32(g64)
        r64 = louvain(g64, LouvainConfig())
        r32 = louvain(g32, LouvainConfig())
        assert np.array_equal(r32.communities, r64.communities)
        assert r32.modularity == r64.modularity

    def test_reported_modularity_is_recounted_exactly(self):
        g32 = as_float32(planted_partition(3, 8, 0.6, 0.05, seed=9))
        r32 = louvain(g32, LouvainConfig())
        assert r32.modularity == pytest.approx(
            modularity(g32, r32.communities), abs=1e-12
        )
