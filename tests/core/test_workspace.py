"""Tests of the sweep workspace: aggregation paths, plan caching, frontier
pruning and the incremental-modularity commit (the hot-path overhaul).

The headline property is differential: every aggregation path, with and
without a reused workspace, must produce *exactly* the targets of the
per-vertex reference kernel — and pruned phases must converge to the same
partitions as full-sweep phases.
"""

import multiprocessing as mp

import numpy as np
import pytest

from repro.core.modularity import modularity
from repro.core.phase import run_phase, state_modularity
from repro.core.sweep import (
    SweepState,
    apply_moves,
    apply_moves_tracked,
    compute_targets,
    compute_targets_reference,
    compute_targets_vectorized,
    init_state,
    sweep,
)
from repro.core.workspace import (
    AGGREGATIONS,
    SweepWorkspace,
    aggregate_pairs,
    build_plan,
    gather_rows,
)
from repro.graph.csr import CSRGraph
from repro.graph.generators import planted_partition, rmat
from repro.parallel.backends import SerialBackend, ThreadBackend
from repro.parallel.chunking import edge_balanced_partition
from repro.utils.errors import ValidationError

CONCRETE = [m for m in AGGREGATIONS if m != "auto"]


def random_graph(seed, n=60, p=0.12):
    rng = np.random.default_rng(seed)
    mask = np.triu(rng.random((n, n)) < p, 1)
    src, dst = np.nonzero(mask)
    w = rng.integers(1, 4, src.size).astype(np.float64)
    return CSRGraph.from_edges(n, list(zip(src, dst)), w)


def mid_state(graph, sweeps=2):
    state = init_state(graph)
    verts = np.arange(graph.num_vertices, dtype=np.int64)
    for _ in range(sweeps):
        sweep(graph, state, verts)
    return state


# ---------------------------------------------------------------------------
# Aggregation paths
# ---------------------------------------------------------------------------
class TestAggregatePairs:
    def pair_dict(self, plan, comm, n, mode):
        owner, pcomm, e, used = aggregate_pairs(plan, comm, n, mode)
        return {(int(o), int(c)): float(x)
                for o, c, x in zip(owner, pcomm, e)}, used

    @pytest.mark.parametrize("seed", range(4))
    def test_paths_produce_identical_pair_sets(self, seed):
        g = random_graph(seed)
        state = mid_state(g, sweeps=1)
        verts = np.arange(g.num_vertices, dtype=np.int64)
        plan = build_plan(g, verts)
        base, _ = self.pair_dict(plan, state.comm, g.num_vertices, "sort")
        for mode in ("bincount", "matmul"):
            other, used = self.pair_dict(plan, state.comm, g.num_vertices, mode)
            assert used == mode
            assert set(other) == set(base)
            for key in base:
                assert other[key] == pytest.approx(base[key])

    @pytest.mark.parametrize("mode", CONCRETE)
    def test_pairs_grouped_by_owner(self, mode):
        """The ordering contract the reduceat kernel relies on."""
        g = random_graph(11)
        state = mid_state(g, sweeps=1)
        verts = np.arange(g.num_vertices, dtype=np.int64)
        owner, _, _, _ = aggregate_pairs(
            build_plan(g, verts), state.comm, g.num_vertices, mode
        )
        assert (np.diff(owner) >= 0).all()

    def test_unknown_mode_rejected(self):
        g = random_graph(0)
        plan = build_plan(g, np.arange(g.num_vertices, dtype=np.int64))
        with pytest.raises(ValidationError):
            aggregate_pairs(plan, np.zeros(g.num_vertices, np.int64),
                            g.num_vertices, "radix")

    def test_auto_resolves_to_a_concrete_mode(self):
        g = random_graph(1)
        plan = build_plan(g, np.arange(g.num_vertices, dtype=np.int64))
        *_, used = aggregate_pairs(
            plan, np.zeros(g.num_vertices, np.int64), g.num_vertices, "auto"
        )
        assert used in CONCRETE


class TestDifferentialKernels:
    """Every aggregation path × min-label setting equals the reference."""

    @pytest.mark.parametrize("mode", CONCRETE)
    @pytest.mark.parametrize("use_min_label", [True, False])
    @pytest.mark.parametrize("seed", range(3))
    def test_matches_reference_on_random_graphs(self, mode, use_min_label, seed):
        g = random_graph(seed)
        verts = np.arange(g.num_vertices, dtype=np.int64)
        state = mid_state(g, sweeps=seed % 3)
        ref = compute_targets_reference(
            g, state, verts, use_min_label=use_min_label
        )
        out = compute_targets_vectorized(
            g, state, verts, use_min_label=use_min_label, aggregation=mode
        )
        np.testing.assert_array_equal(out, ref)

    @pytest.mark.parametrize("mode", CONCRETE)
    def test_matches_reference_on_planted(self, planted, mode):
        state = mid_state(planted)
        verts = np.arange(planted.num_vertices, dtype=np.int64)
        ref = compute_targets_reference(planted, state, verts)
        out = compute_targets_vectorized(planted, state, verts,
                                         aggregation=mode)
        np.testing.assert_array_equal(out, ref)

    @pytest.mark.parametrize("mode", CONCRETE)
    def test_workspace_reuse_identical_to_fresh(self, planted, mode):
        """Iterating with one cached workspace = fresh buffers every call."""
        ws = SweepWorkspace(planted, aggregation=mode)
        verts = np.arange(planted.num_vertices, dtype=np.int64)
        with_ws = init_state(planted)
        fresh = init_state(planted)
        for _ in range(4):
            tw = compute_targets_vectorized(planted, with_ws, verts,
                                            workspace=ws, plan_key="all")
            tf = compute_targets_vectorized(planted, fresh, verts,
                                            aggregation=mode)
            np.testing.assert_array_equal(tw, tf)
            apply_moves(planted, with_ws, verts, tw)
            apply_moves(planted, fresh, verts, tf)
        assert ws.num_cached_plans == 1
        assert ws.last_aggregation == mode


# ---------------------------------------------------------------------------
# Gather plans and row gathering
# ---------------------------------------------------------------------------
class TestGatherRowsEdgeCases:
    def test_empty_vertex_set(self, planted):
        positions, owner = gather_rows(planted, np.zeros(0, np.int64))
        assert positions.size == 0 and owner.size == 0
        plan = build_plan(planted, np.zeros(0, np.int64))
        assert plan.owner.size == 0 and plan.num_entries == 0

    def test_isolated_vertices(self):
        # Vertices 3 and 4 have no edges at all.
        g = CSRGraph.from_edges(5, [(0, 1), (1, 2)])
        positions, owner = gather_rows(g, np.array([3, 4], np.int64))
        assert positions.size == 0 and owner.size == 0
        # Mixed set: only vertex 1's two entries appear, owned by index 1.
        positions, owner = gather_rows(g, np.array([3, 1, 4], np.int64))
        assert owner.tolist() == [1, 1]
        state = init_state(g)
        out = compute_targets_vectorized(g, state, np.array([3, 4], np.int64))
        np.testing.assert_array_equal(out, state.comm[[3, 4]])

    def test_all_self_loop_rows(self):
        g = CSRGraph.from_edges(3, [(0, 0), (1, 1)], [2.0, 3.0])
        verts = np.arange(3, dtype=np.int64)
        plan = build_plan(g, verts)
        # Loops are CSR entries but never aggregation candidates.
        assert plan.num_entries == 2
        assert plan.owner.size == 0
        state = init_state(g)
        for mode in CONCRETE:
            out = compute_targets_vectorized(g, state, verts, aggregation=mode)
            np.testing.assert_array_equal(out, state.comm)

    def test_gather_matches_manual_expansion(self, karate):
        verts = np.array([5, 0, 33], np.int64)
        positions, owner = gather_rows(karate, verts)
        for idx, v in enumerate(verts):
            got = karate.indices[positions[owner == idx]]
            lo, hi = karate.indptr[v], karate.indptr[v + 1]
            np.testing.assert_array_equal(got, karate.indices[lo:hi])


class TestPlanCache:
    def test_identity_hit(self, planted):
        ws = SweepWorkspace(planted)
        verts = np.arange(planted.num_vertices, dtype=np.int64)
        assert ws.plan(verts) is ws.plan(verts)
        assert ws.num_cached_plans == 1

    def test_keyed_hit_verifies_contents(self, planted):
        """A pruned frontier reusing a key must rebuild, not reuse stale."""
        ws = SweepWorkspace(planted)
        a = np.arange(planted.num_vertices, dtype=np.int64)
        plan_a = ws.plan(a.copy(), key=("set", 0))
        shrunk = a[: planted.num_vertices // 2]
        plan_b = ws.plan(shrunk.copy(), key=("set", 0))
        assert plan_b is not plan_a
        assert plan_b.vertices.size == shrunk.size
        # Same contents under the same key → cache hit.
        assert ws.plan(shrunk.copy(), key=("set", 0)) is plan_b

    def test_scratch_buffers_are_reused(self, planted):
        ws = SweepWorkspace(planted)
        a = ws.f64("x", 10)
        b = ws.f64("x", 10)
        assert a.base is b.base
        assert ws.i64("y", 5).dtype == np.int64

    def test_invalid_aggregation_rejected(self, planted):
        with pytest.raises(ValidationError):
            SweepWorkspace(planted, aggregation="quantum")


# ---------------------------------------------------------------------------
# Chunking
# ---------------------------------------------------------------------------
class TestChunkingEdgeCases:
    def test_more_workers_than_vertices(self, karate):
        verts = np.array([0, 1], np.int64)
        chunks = edge_balanced_partition(verts, karate.indptr, 16)
        np.testing.assert_array_equal(np.concatenate(chunks), verts)
        assert all(c.size > 0 for c in chunks)

    def test_empty_vertex_set(self, karate):
        chunks = edge_balanced_partition(
            np.zeros(0, np.int64), karate.indptr, 4
        )
        total = sum(c.size for c in chunks)
        assert total == 0

    @pytest.mark.parametrize("mode", CONCRETE)
    def test_chunked_equals_unchunked_through_both_paths(self, planted, mode):
        state = mid_state(planted)
        verts = np.arange(planted.num_vertices, dtype=np.int64)
        whole = compute_targets_vectorized(planted, state, verts,
                                           aggregation=mode)
        chunks = edge_balanced_partition(verts, planted.indptr, 5)
        pieces = [
            compute_targets_vectorized(planted, state, c, aggregation=mode)
            for c in chunks
        ]
        np.testing.assert_array_equal(np.concatenate(pieces), whole)

    def test_thread_backend_chunk_map_matches_serial(self, planted):
        state = mid_state(planted)
        verts = np.arange(planted.num_vertices, dtype=np.int64)
        serial = compute_targets(planted, state, verts,
                                 backend=SerialBackend())
        with ThreadBackend(4) as tb:
            threaded = compute_targets(planted, state, verts, backend=tb)
        np.testing.assert_array_equal(threaded, serial)


# ---------------------------------------------------------------------------
# Incremental modularity
# ---------------------------------------------------------------------------
class TestApplyMovesTracked:
    def deltas_match_recount(self, graph, state, verts, targets):
        before_q = state_modularity(graph, state)
        m = graph.total_weight
        a_sq_before = float(np.square(state.comm_degree).sum())
        result = apply_moves_tracked(graph, state, verts, targets)
        after_q = state_modularity(graph, state)
        # Reassemble Q from the reported deltas and compare to the recount.
        from repro.core.modularity import intra_community_weight

        intra_after = intra_community_weight(graph, state.comm)
        intra_before = intra_after - result.delta_intra
        assert (
            intra_before / (2 * m) - a_sq_before / (2 * m) ** 2
        ) == pytest.approx(before_q, abs=1e-12)
        a_sq_after = a_sq_before + result.delta_degree_sq
        assert (
            intra_after / (2 * m) - a_sq_after / (2 * m) ** 2
        ) == pytest.approx(after_q, abs=1e-12)
        return result

    @pytest.mark.parametrize("seed", range(3))
    def test_deltas_exact_on_random_graphs(self, seed):
        g = random_graph(seed, n=80)
        state = init_state(g)
        verts = np.arange(g.num_vertices, dtype=np.int64)
        for _ in range(3):
            targets = compute_targets_vectorized(g, state, verts)
            self.deltas_match_recount(g, state, verts, targets)

    def test_deltas_exact_with_self_loops(self, loops_graph):
        state = init_state(loops_graph)
        verts = np.arange(3, dtype=np.int64)
        targets = compute_targets_vectorized(loops_graph, state, verts)
        self.deltas_match_recount(loops_graph, state, verts, targets)

    def test_no_moves_short_circuit(self, karate):
        state = init_state(karate)
        verts = np.arange(karate.num_vertices, dtype=np.int64)
        result = apply_moves_tracked(karate, state, verts, state.comm[verts])
        assert result.num_moved == 0
        assert result.delta_intra == 0.0 and result.delta_degree_sq == 0.0

    def test_frontier_covers_movers_and_neighbors(self, cliques8):
        state = init_state(cliques8)
        verts = np.arange(cliques8.num_vertices, dtype=np.int64)
        targets = compute_targets_vectorized(cliques8, state, verts)
        result = apply_moves_tracked(cliques8, state, verts, targets)
        expected = set(result.moved.tolist())
        for v in result.moved:
            expected.update(cliques8.neighbors(int(v))[0].tolist())
        assert set(result.frontier.tolist()) == expected

    def test_frontier_out_mask_matches_array(self, cliques8):
        state_a = init_state(cliques8)
        state_b = init_state(cliques8)
        verts = np.arange(cliques8.num_vertices, dtype=np.int64)
        targets = compute_targets_vectorized(cliques8, state_a, verts)
        arr = apply_moves_tracked(cliques8, state_a, verts, targets)
        mask = np.zeros(cliques8.num_vertices, dtype=bool)
        out = apply_moves_tracked(cliques8, state_b, verts, targets,
                                  frontier_out=mask)
        assert out.frontier.size == 0
        np.testing.assert_array_equal(np.flatnonzero(mask), arr.frontier)

    def test_matches_apply_moves(self, planted):
        state_a = mid_state(planted, sweeps=1)
        state_b = SweepState(state_a.comm.copy(), state_a.comm_degree.copy(),
                             state_a.comm_size.copy())
        verts = np.arange(planted.num_vertices, dtype=np.int64)
        targets = compute_targets_vectorized(planted, state_a, verts)
        n_a = apply_moves(planted, state_a, verts, targets)
        res = apply_moves_tracked(planted, state_b, verts, targets)
        assert res.num_moved == n_a
        np.testing.assert_array_equal(state_a.comm, state_b.comm)
        np.testing.assert_array_equal(state_a.comm_degree, state_b.comm_degree)
        np.testing.assert_array_equal(state_a.comm_size, state_b.comm_size)


# ---------------------------------------------------------------------------
# Frontier pruning and best-state phases
# ---------------------------------------------------------------------------
def phase_backends():
    yield "serial", None
    yield "threads", ThreadBackend(3)
    if "fork" in mp.get_all_start_methods():
        from repro.parallel.process_backend import ProcessBackend

        yield "processes", ProcessBackend(2)


class TestFrontierPruning:
    @pytest.mark.parametrize("kernel", ["vectorized", "reference"])
    def test_pruned_matches_full_partition(self, planted, kernel):
        full = run_phase(planted, init_state(planted), threshold=1e-9,
                         kernel=kernel, prune=False)
        pruned = run_phase(planted, init_state(planted), threshold=1e-9,
                           kernel=kernel, prune=True)
        assert pruned.end_modularity == pytest.approx(full.end_modularity)
        np.testing.assert_array_equal(pruned.state.comm, full.state.comm)

    def test_pruned_matches_full_across_backends(self, planted):
        full = run_phase(planted, init_state(planted), threshold=1e-9,
                         prune=False)
        for name, backend in phase_backends():
            try:
                pruned = run_phase(planted, init_state(planted),
                                   threshold=1e-9, backend=backend, prune=True)
            finally:
                if backend is not None:
                    backend.close()
            np.testing.assert_array_equal(
                pruned.state.comm, full.state.comm,
                err_msg=f"backend={name}",
            )

    def test_converged_pruned_phase_is_full_fixed_point(self):
        """A pruned phase that stops on moved == 0 is a *full*-sweep fixed
        point (the verification sweep).  threshold=-inf disables the
        small-gain stop, so moved == 0 is the only way to converge."""
        g = planted_partition(6, 20, 0.6, 0.002, seed=3)
        out = run_phase(g, init_state(g), threshold=float("-inf"), prune=True)
        assert out.converged
        # Pruning really shrank the sweeps on the way there...
        assert min(r.active_vertices for r in out.records) < g.num_vertices
        # ...yet the returned partition survives a full sweep unchanged.
        moved = sweep(g, out.state,
                      np.arange(g.num_vertices, dtype=np.int64))
        assert moved == 0

    def test_pruning_shrinks_active_counters(self, planted):
        out = run_phase(planted, init_state(planted), threshold=1e-9,
                        prune=True)
        actives = [r.active_vertices for r in out.records]
        assert actives[0] == planted.num_vertices
        assert min(actives) < planted.num_vertices
        for rec in out.records:
            assert 0.0 <= rec.active_vertex_fraction <= 1.0
            assert rec.aggregation in CONCRETE

    def test_incremental_q_matches_recount_trajectory(self, planted):
        inc = run_phase(planted, init_state(planted), threshold=1e-9,
                        prune=False, incremental=True)
        full = run_phase(planted, init_state(planted), threshold=1e-9,
                         prune=False, incremental=False)
        assert len(inc.records) == len(full.records)
        for a, b in zip(inc.records, full.records):
            assert a.modularity == pytest.approx(b.modularity, abs=1e-9)


class TestBestStatePhase:
    def test_end_modularity_is_best_seen(self, planted):
        out = run_phase(planted, init_state(planted), threshold=1e-9)
        best = max(r.modularity for r in out.records)
        assert out.end_modularity == pytest.approx(best, abs=1e-9)
        # The returned state really evaluates to the reported Q.
        assert state_modularity(planted, out.state) == pytest.approx(
            out.end_modularity
        )

    def test_phase_never_ends_below_its_input(self, planted):
        """Warm-start monotonicity: re-running from a converged state
        cannot lose modularity, even though parallel sweeps may oscillate
        (Lemma 1)."""
        first = run_phase(planted, init_state(planted), threshold=1e-9)
        q1 = first.end_modularity
        again = run_phase(
            planted, init_state(planted, first.state.comm), threshold=1e-9
        )
        assert again.end_modularity >= q1 - 1e-12

    def test_degenerate_graphs(self):
        empty = CSRGraph.empty(0)
        out = run_phase(empty, init_state(empty), threshold=1e-6)
        assert out.end_modularity == 0.0
        edgeless = CSRGraph.empty(5)
        out = run_phase(edgeless, init_state(edgeless), threshold=1e-6)
        assert out.converged
        assert modularity(edgeless, out.state.comm) == 0.0
