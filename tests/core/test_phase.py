"""Unit tests for the within-phase iteration loop (Algorithm 1 outer loop)."""

import numpy as np
import pytest

from repro.coloring.greedy import greedy_coloring
from repro.coloring.validate import color_set_partition
from repro.core.modularity import modularity
from repro.core.phase import run_phase, state_modularity
from repro.core.sweep import init_state
from repro.graph.csr import CSRGraph
from repro.graph.generators import complete_graph, planted_partition


class TestStateModularity:
    def test_matches_full_recompute(self, karate):
        state = init_state(karate, (np.arange(34) % 4).astype(np.int64))
        assert state_modularity(karate, state) == pytest.approx(
            modularity(karate, state.comm)
        )

    def test_empty(self):
        g = CSRGraph.empty(2)
        assert state_modularity(g, init_state(g)) == 0.0


class TestRunPhase:
    def test_terminates_and_improves(self, planted):
        state = init_state(planted)
        out = run_phase(planted, state, threshold=1e-6)
        assert out.converged
        assert out.end_modularity > out.start_modularity
        assert len(out.records) >= 1

    def test_records_consistent(self, planted):
        state = init_state(planted)
        out = run_phase(planted, state, threshold=1e-4, phase_index=2)
        for i, rec in enumerate(out.records):
            assert rec.phase == 2
            assert rec.iteration == i
            assert rec.vertices_scanned == planted.num_vertices
            assert rec.edges_scanned == planted.num_entries
        assert out.records[-1].modularity == pytest.approx(out.end_modularity)

    def test_colored_phase_records_sets(self, planted):
        colors = greedy_coloring(planted)
        sets = color_set_partition(colors)
        state = init_state(planted)
        out = run_phase(planted, state, threshold=1e-4, color_sets=sets)
        rec = out.records[0]
        assert len(rec.color_set_vertices) == len(sets)
        assert rec.vertices_scanned == planted.num_vertices
        assert out.end_modularity > out.start_modularity

    def test_colored_fewer_iterations_than_uncolored(self, planted):
        """§5.2's design intent: coloring converges in fewer iterations."""
        colors = greedy_coloring(planted)
        sets = color_set_partition(colors)
        plain = run_phase(planted, init_state(planted), threshold=1e-6)
        colored = run_phase(
            planted, init_state(planted), threshold=1e-6, color_sets=sets
        )
        assert len(colored.records) <= len(plain.records)

    def test_higher_threshold_fewer_iterations(self, planted):
        loose = run_phase(planted, init_state(planted), threshold=1e-1)
        tight = run_phase(planted, init_state(planted), threshold=1e-8)
        assert len(loose.records) <= len(tight.records)

    def test_iteration_cap(self, planted):
        out = run_phase(planted, init_state(planted), threshold=1e-12,
                        max_iterations=2)
        assert len(out.records) <= 2

    def test_complete_graph_single_community(self):
        g = complete_graph(6)
        state = init_state(g)
        run_phase(g, state, threshold=1e-6)
        # A clique has no 2+-community split with positive modularity, and
        # the min-label heuristic funnels everything into label 0.
        assert state.num_communities() == 1

    def test_reference_kernel_same_outcome(self, planted):
        s1 = init_state(planted)
        s2 = init_state(planted)
        o1 = run_phase(planted, s1, threshold=1e-4, kernel="vectorized")
        o2 = run_phase(planted, s2, threshold=1e-4, kernel="reference")
        np.testing.assert_array_equal(s1.comm, s2.comm)
        assert o1.end_modularity == pytest.approx(o2.end_modularity)

    def test_empty_graph(self):
        g = CSRGraph.empty(0)
        out = run_phase(g, init_state(g), threshold=1e-6)
        assert out.converged
