"""Unit tests for configuration, history records and the dendrogram."""

import numpy as np
import pytest

from repro.core.config import HeuristicVariant, LouvainConfig
from repro.core.dendrogram import Dendrogram
from repro.core.history import ConvergenceHistory, IterationRecord, PhaseRecord
from repro.utils.errors import ValidationError


class TestConfig:
    def test_defaults_match_paper(self):
        cfg = LouvainConfig()
        assert cfg.colored_threshold == 1e-2
        assert cfg.final_threshold == 1e-6
        assert cfg.coloring_min_vertices == 100_000
        assert cfg.use_min_label

    def test_variant_presets(self):
        base = HeuristicVariant.BASELINE.config()
        vf = HeuristicVariant.BASELINE_VF.config()
        vfc = HeuristicVariant.BASELINE_VF_COLOR.config()
        assert (base.use_vf, base.use_coloring) == (False, False)
        assert (vf.use_vf, vf.use_coloring) == (True, False)
        assert (vfc.use_vf, vfc.use_coloring) == (True, True)

    def test_variant_names(self):
        assert LouvainConfig().variant_name == "baseline"
        assert LouvainConfig(use_vf=True).variant_name == "baseline+VF"
        assert (
            LouvainConfig(use_vf=True, use_coloring=True).variant_name
            == "baseline+VF+Color"
        )
        assert LouvainConfig(use_coloring=True).variant_name == "baseline+Color"

    def test_with_override(self):
        cfg = LouvainConfig().with_(colored_threshold=1e-4)
        assert cfg.colored_threshold == 1e-4
        assert cfg.final_threshold == 1e-6  # untouched

    def test_preset_overrides(self):
        cfg = HeuristicVariant.BASELINE_VF_COLOR.config(num_threads=8)
        assert cfg.num_threads == 8

    @pytest.mark.parametrize("bad", [
        dict(colored_threshold=0.0),
        dict(final_threshold=-1e-6),
        dict(kernel="cuda"),
        dict(backend="mpi"),
        dict(distance_k=0),
        dict(num_threads=0),
        dict(max_phases=0),
    ])
    def test_validation(self, bad):
        with pytest.raises(ValidationError):
            LouvainConfig(**bad)

    def test_frozen(self):
        cfg = LouvainConfig()
        with pytest.raises(AttributeError):
            cfg.use_vf = True


def _record(phase=0, iteration=0, q=0.5, moved=3, comms=10,
            sets=((5,), (8,))):
    return IterationRecord(
        phase=phase, iteration=iteration, modularity=q, vertices_moved=moved,
        num_communities=comms, color_set_vertices=sets[0],
        color_set_edges=sets[1],
    )


class TestHistory:
    def test_iteration_record_sums(self):
        rec = _record(sets=((3, 4), (10, 20)))
        assert rec.vertices_scanned == 7
        assert rec.edges_scanned == 30

    def test_trajectory_and_boundaries(self):
        h = ConvergenceHistory()
        h.iterations = [_record(0, 0, 0.1), _record(0, 1, 0.2), _record(1, 0, 0.3)]
        h.phases = [
            PhaseRecord(0, 10, 20, False, 0, 1e-6, 2, 0.0, 0.2, 5, 4),
            PhaseRecord(1, 4, 8, False, 0, 1e-6, 1, 0.2, 0.3, 2, 2),
        ]
        np.testing.assert_allclose(h.modularity_trajectory(), [0.1, 0.2, 0.3])
        assert h.phase_boundaries() == [2, 3]
        assert h.total_iterations == 3
        assert h.final_modularity == 0.3
        assert len(h.iterations_of_phase(0)) == 2

    def test_empty_history(self):
        h = ConvergenceHistory()
        assert h.final_modularity == 0.0
        assert h.modularity_trajectory().shape == (0,)


class TestDendrogram:
    def test_flatten_levels(self):
        d = Dendrogram()
        d.push([0, 0, 1, 1, 2])
        d.push([0, 1, 1])
        assert d.flatten().tolist() == [0, 0, 1, 1, 1]
        assert d.flatten(1).tolist() == [0, 0, 1, 1, 2]
        assert d.flatten(0).tolist() == [0, 1, 2, 3, 4]

    def test_level_sizes_and_labels(self):
        d = Dendrogram()
        d.push([0, 0, 1], "vf")
        d.push([0, 0], "phase-0")
        assert d.level_sizes() == [2, 1]
        assert d.labels == ["vf", "phase-0"]
        assert d.num_levels == 2

    def test_domain_mismatch_rejected(self):
        d = Dendrogram()
        d.push([0, 0, 1])
        with pytest.raises(ValidationError):
            d.push([0, 0, 0])  # previous codomain has size 2

    def test_bad_level_request(self):
        d = Dendrogram()
        d.push([0, 1])
        with pytest.raises(ValidationError):
            d.flatten(5)

    def test_repr(self):
        d = Dendrogram()
        d.push([0, 0])
        assert "levels=1" in repr(d)
