"""Unit tests for the parallel sweep (Algorithm 1 lines 7–14) and the
minimum-label heuristics (§5.1)."""

import numpy as np
import pytest

from repro.core.modularity import modularity
from repro.core.sweep import (
    SweepState,
    apply_moves,
    compute_targets,
    compute_targets_reference,
    compute_targets_vectorized,
    init_state,
    sweep,
)
from repro.graph.csr import CSRGraph
from repro.graph.generators import (
    complete_graph,
    karate_club,
    planted_partition,
    rmat,
    two_cliques_bridge,
)
from repro.parallel.backends import SerialBackend, ThreadBackend
from repro.utils.errors import ValidationError


def all_vertices(graph):
    return np.arange(graph.num_vertices, dtype=np.int64)


class TestInitState:
    def test_singletons(self, karate):
        state = init_state(karate)
        assert state.comm.tolist() == list(range(34))
        np.testing.assert_allclose(state.comm_degree, karate.degrees)
        assert (state.comm_size == 1).all()
        assert state.num_communities() == 34

    def test_custom_initial(self, triangle):
        state = init_state(triangle, np.array([1, 1, 0]))
        assert state.comm_size.tolist() == [1, 2, 0]
        assert state.comm_degree.tolist() == [2.0, 4.0, 0.0]

    def test_bad_initial(self, triangle):
        with pytest.raises(ValidationError):
            init_state(triangle, np.array([0, 1]))
        with pytest.raises(ValidationError):
            init_state(triangle, np.array([0, 1, 3]))


class TestKernelEquivalence:
    """The vectorized kernel must replicate the reference bit-for-bit."""

    @pytest.mark.parametrize("use_min_label", [True, False])
    def test_karate_from_singletons(self, karate, use_min_label):
        state = init_state(karate)
        ref = compute_targets_reference(
            karate, state, all_vertices(karate), use_min_label=use_min_label
        )
        vec = compute_targets_vectorized(
            karate, state, all_vertices(karate), use_min_label=use_min_label
        )
        np.testing.assert_array_equal(ref, vec)

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_random_graphs_random_states(self, seed):
        rng = np.random.default_rng(seed)
        g = rmat(7, 6, seed=seed)
        comm = rng.integers(0, g.num_vertices, size=g.num_vertices)
        state = init_state(g, comm.astype(np.int64))
        ref = compute_targets_reference(g, state, all_vertices(g))
        vec = compute_targets_vectorized(g, state, all_vertices(g))
        np.testing.assert_array_equal(ref, vec)

    def test_after_iterations(self, planted):
        """Equivalence holds mid-run, not just from singletons."""
        state = init_state(planted)
        verts = all_vertices(planted)
        for _ in range(3):
            ref = compute_targets_reference(planted, state, verts)
            vec = compute_targets_vectorized(planted, state, verts)
            np.testing.assert_array_equal(ref, vec)
            apply_moves(planted, state, verts, vec)

    def test_subset_of_vertices(self, karate):
        state = init_state(karate)
        subset = np.array([3, 7, 20, 33], dtype=np.int64)
        ref = compute_targets_reference(karate, state, subset)
        vec = compute_targets_vectorized(karate, state, subset)
        np.testing.assert_array_equal(ref, vec)

    def test_with_self_loops(self, loops_graph):
        state = init_state(loops_graph)
        ref = compute_targets_reference(loops_graph, state, all_vertices(loops_graph))
        vec = compute_targets_vectorized(loops_graph, state, all_vertices(loops_graph))
        np.testing.assert_array_equal(ref, vec)


class TestStability:
    """§5.4: the sweep outcome must not depend on chunking/threads."""

    def test_thread_backend_identical(self, planted):
        state = init_state(planted)
        verts = all_vertices(planted)
        serial = compute_targets(planted, state, verts, backend=SerialBackend())
        with ThreadBackend(4) as tb:
            threaded = compute_targets(planted, state, verts, backend=tb)
        np.testing.assert_array_equal(serial, threaded)

    def test_thread_counts_identical(self, planted):
        state = init_state(planted)
        verts = all_vertices(planted)
        results = []
        for p in (2, 3, 8):
            with ThreadBackend(p) as tb:
                results.append(compute_targets(planted, state, verts, backend=tb))
        np.testing.assert_array_equal(results[0], results[1])
        np.testing.assert_array_equal(results[0], results[2])


class TestMinLabelHeuristics:
    def test_singlet_swap_prevented(self):
        """Fig. 2 case 1: two singlets joined by an edge must not swap."""
        g = CSRGraph.from_edges(2, [(0, 1)])
        state = init_state(g)
        targets = compute_targets(g, state, all_vertices(g))
        # Vertex 1 moves down to label 0; vertex 0 stays (target label
        # larger).  Exactly one migration, no swap.
        assert targets.tolist() == [0, 0]

    def test_singlet_swap_happens_without_heuristic(self):
        g = CSRGraph.from_edges(2, [(0, 1)])
        state = init_state(g)
        targets = compute_targets(g, state, all_vertices(g), use_min_label=False)
        # Both move simultaneously: a swap, zero net progress.
        assert targets.tolist() == [1, 0]

    def test_clique_tie_break_min_label(self):
        """Fig. 2 case 2: in a 4-clique of singlets, every vertex picks the
        minimum-label neighbor community, so all gravitate to community 0."""
        g = complete_graph(4)
        state = init_state(g)
        targets = compute_targets(g, state, all_vertices(g))
        assert targets.tolist() == [0, 0, 0, 0]

    def test_clique_local_maxima_without_heuristic(self):
        """Without min-label ties resolve toward the max label: vertices
        pair off ({0,3},{1,3}...) rather than converging to one community."""
        g = complete_graph(4)
        state = init_state(g)
        targets = compute_targets(g, state, all_vertices(g), use_min_label=False)
        assert targets.tolist() == [3, 3, 3, 2]

    def test_singlet_rule_allows_downhill_move(self):
        """The singlet rule only blocks moves toward *larger* labels."""
        g = CSRGraph.from_edges(3, [(0, 1), (1, 2)])
        state = init_state(g)
        targets = compute_targets(g, state, all_vertices(g))
        assert targets[1] == 0  # 1 -> 0 allowed (label decreases)
        assert targets[2] == 1  # 2 -> 1 allowed

    def test_singlet_rule_inapplicable_to_nonsinglets(self, cliques8):
        """Once communities have >1 member the rule no longer applies."""
        # Left clique merged except vertex 3; right clique singletons.
        comm = np.array([0, 0, 0, 3, 4, 5, 6, 7])
        state = init_state(cliques8, comm)
        targets = compute_targets(cliques8, state, all_vertices(cliques8))
        assert targets[3] == 0  # joins the big community


class TestApplyAndSweep:
    def test_apply_updates_aggregates(self, triangle):
        state = init_state(triangle)
        targets = np.array([0, 0, 2])
        moved = apply_moves(triangle, state, all_vertices(triangle), targets)
        assert moved == 1
        assert state.comm.tolist() == [0, 0, 2]
        assert state.comm_degree.tolist() == [4.0, 0.0, 2.0]
        assert state.comm_size.tolist() == [2, 0, 1]
        assert state.num_communities() == 2

    def test_apply_no_moves(self, triangle):
        state = init_state(triangle)
        assert apply_moves(triangle, state, all_vertices(triangle),
                           state.comm.copy()) == 0

    def test_aggregates_stay_consistent(self, planted):
        state = init_state(planted)
        verts = all_vertices(planted)
        for _ in range(5):
            sweep(planted, state, verts)
            np.testing.assert_allclose(
                state.comm_degree,
                np.bincount(state.comm, weights=planted.degrees,
                            minlength=planted.num_vertices),
            )
            np.testing.assert_array_equal(
                state.comm_size,
                np.bincount(state.comm, minlength=planted.num_vertices),
            )

    def test_sweep_improves_modularity_from_singletons(self, planted):
        state = init_state(planted)
        q0 = modularity(planted, state.comm)
        sweep(planted, state, all_vertices(planted))
        assert modularity(planted, state.comm) > q0

    def test_mismatched_targets_rejected(self, triangle):
        state = init_state(triangle)
        with pytest.raises(ValidationError):
            apply_moves(triangle, state, np.array([0, 1]), np.array([0]))

    def test_unknown_kernel_rejected(self, triangle):
        state = init_state(triangle)
        with pytest.raises(ValidationError):
            compute_targets(triangle, state, all_vertices(triangle),
                            kernel="gpu")

    def test_empty_active_set(self, karate):
        state = init_state(karate)
        out = compute_targets(karate, state, np.zeros(0, dtype=np.int64))
        assert out.shape == (0,)

    def test_isolated_vertices_never_move(self):
        g = CSRGraph.from_edges(4, [(0, 1)])
        state = init_state(g)
        targets = compute_targets(g, state, all_vertices(g))
        assert targets[2] == 2 and targets[3] == 3
