"""Unit tests for the serial Louvain baseline (§3)."""

import numpy as np
import pytest

from repro.core.louvain_serial import louvain_serial, serial_iteration
from repro.core.modularity import modularity
from repro.core.sweep import init_state
from repro.graph.csr import CSRGraph
from repro.utils.errors import ValidationError


class TestSerialIteration:
    def test_monotone_within_phase(self, karate):
        """Serial (Gauss–Seidel) moves never decrease Q — the §3 guarantee
        the parallel sweep gives up."""
        state = init_state(karate)
        order = np.arange(34, dtype=np.int64)
        q = modularity(karate, state.comm)
        for _ in range(10):
            moved = serial_iteration(karate, state, order)
            q_new = modularity(karate, state.comm)
            assert q_new >= q - 1e-12
            q = q_new
            if moved == 0:
                break

    def test_aggregates_consistent(self, planted):
        state = init_state(planted)
        order = np.arange(planted.num_vertices, dtype=np.int64)
        serial_iteration(planted, state, order)
        np.testing.assert_allclose(
            state.comm_degree,
            np.bincount(state.comm, weights=planted.degrees,
                        minlength=planted.num_vertices),
        )

    def test_empty_graph_iteration(self):
        g = CSRGraph.empty(3)
        state = init_state(g)
        assert serial_iteration(g, state, np.arange(3)) == 0


class TestLouvainSerial:
    def test_karate_quality(self, karate):
        result = louvain_serial(karate)
        # Known optimum ~0.4198; Louvain reliably reaches >= 0.40.
        assert result.modularity > 0.40
        assert 2 <= result.num_communities <= 6

    def test_two_cliques_exact(self, cliques8):
        result = louvain_serial(cliques8)
        assert result.num_communities == 2
        comm = result.communities
        assert len(set(comm[:4])) == 1
        assert len(set(comm[4:])) == 1

    def test_planted_recovery(self, planted, planted_truth):
        result = louvain_serial(planted)
        assert result.modularity >= modularity(planted, planted_truth) - 0.02

    def test_communities_dense_labels(self, karate):
        comm = louvain_serial(karate).communities
        labels = np.unique(comm)
        np.testing.assert_array_equal(labels, np.arange(labels.size))

    def test_modularity_matches_assignment(self, karate):
        result = louvain_serial(karate)
        assert result.modularity == pytest.approx(
            modularity(karate, result.communities)
        )

    def test_history_recorded(self, karate):
        result = louvain_serial(karate)
        h = result.history
        assert h.total_iterations >= 2
        assert h.num_phases >= 1
        assert h.final_modularity == pytest.approx(result.modularity, abs=1e-9)
        # Phase iteration counts sum to the total.
        assert sum(p.iterations for p in h.phases) == h.total_iterations

    def test_monotone_across_whole_run(self, planted):
        """Q never decreases across iterations and phases in serial."""
        traj = louvain_serial(planted).history.modularity_trajectory()
        assert (np.diff(traj) >= -1e-12).all()

    def test_deterministic_natural_order(self, karate):
        r1 = louvain_serial(karate)
        r2 = louvain_serial(karate)
        np.testing.assert_array_equal(r1.communities, r2.communities)

    def test_random_order_seeded(self, karate):
        r1 = louvain_serial(karate, order="random", seed=3)
        r2 = louvain_serial(karate, order="random", seed=3)
        np.testing.assert_array_equal(r1.communities, r2.communities)

    def test_unknown_order_rejected(self, karate):
        with pytest.raises(ValidationError):
            louvain_serial(karate, order="sideways")

    def test_edgeless_graph(self):
        result = louvain_serial(CSRGraph.empty(4))
        assert result.modularity == 0.0
        assert result.num_communities == 4

    def test_timers_populated(self, karate):
        timers = louvain_serial(karate).timers
        assert timers.get("clustering") > 0
        assert timers.get("rebuild") >= 0
