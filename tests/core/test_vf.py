"""Unit tests for vertex following (§5.3, Lemma 3) and chain compression."""

import numpy as np
import pytest

from repro.core.louvain_serial import louvain_serial
from repro.core.modularity import modularity
from repro.core.vf import (
    chain_compress,
    single_degree_vertices,
    single_neighbor_vertices,
    vf_merge,
)
from repro.graph.csr import CSRGraph
from repro.graph.generators import (
    karate_club,
    path_graph,
    road_with_spokes,
    star_graph,
)


class TestSingleDegreeDetection:
    def test_star_leaves(self):
        g = star_graph(4)
        assert single_degree_vertices(g).tolist() == [1, 2, 3, 4]

    def test_path_endpoints(self):
        assert single_degree_vertices(path_graph(5)).tolist() == [0, 4]

    def test_self_loop_excluded(self):
        # Vertex 0 has a loop and one edge: "single neighbor", not degree.
        g = CSRGraph.from_edges(3, [(0, 0), (0, 1), (1, 2)])
        assert single_degree_vertices(g).tolist() == [2]

    def test_loop_only_vertex_excluded(self):
        g = CSRGraph.from_edges(2, [(0, 0), (1, 1)], combine="error")
        assert single_degree_vertices(g).size == 0

    def test_single_neighbor_includes_loop_case(self):
        g = CSRGraph.from_edges(3, [(0, 0), (0, 1), (1, 2)])
        ids, nbrs, w = single_neighbor_vertices(g)
        assert ids.tolist() == [0, 2]
        assert nbrs.tolist() == [1, 1]
        assert w.tolist() == [1.0, 1.0]


class TestVFMerge:
    def test_star_collapses_to_point(self):
        g = star_graph(5)
        result = vf_merge(g)
        assert result.num_merged == 5
        assert result.graph.num_vertices == 1
        # All absorbed weight lands on the self-loop; degrees preserved.
        assert result.graph.total_weight == pytest.approx(g.total_weight)
        assert (result.vertex_to_meta == 0).all()

    def test_path_merges_endpoints_only(self):
        g = path_graph(5)
        result = vf_merge(g)
        assert result.num_merged == 2
        assert result.graph.num_vertices == 3

    def test_isolated_edge_pair(self):
        """Both endpoints single-degree: exactly one survives (the lower)."""
        g = CSRGraph.from_edges(2, [(0, 1)])
        result = vf_merge(g)
        assert result.num_merged == 1
        assert result.graph.num_vertices == 1
        assert result.graph.self_loop_weight(0) == pytest.approx(2.0)
        assert result.graph.total_weight == pytest.approx(1.0)

    def test_no_single_degree_noop(self):
        from repro.graph.generators import cycle_graph

        g = cycle_graph(8)
        result = vf_merge(g)
        assert result.num_merged == 0
        assert result.graph is g

    def test_karate_merges_its_one_leaf(self, karate):
        # Zachary's karate has exactly one degree-1 vertex: 11 (tied to 0).
        result = vf_merge(karate)
        assert result.num_merged == 1
        assert result.graph.num_vertices == 33
        assert result.vertex_to_meta[11] == result.vertex_to_meta[0]

    def test_road_network_shrinks(self):
        g = road_with_spokes(50, 4)
        result = vf_merge(g)
        assert result.num_merged == 200
        assert result.graph.num_vertices == 50

    def test_modularity_equivalence(self):
        """A partition on the merged graph scores identically to the
        partition it induces on the input."""
        g = road_with_spokes(20, 2, seed=0)
        result = vf_merge(g)
        meta_comm = (np.arange(result.graph.num_vertices) % 4).astype(np.int64)
        fine_comm = meta_comm[result.vertex_to_meta]
        assert modularity(result.graph, meta_comm) == pytest.approx(
            modularity(g, fine_comm), abs=1e-12
        )


class TestLemma3:
    """Lemma 3: single-degree vertices always join their neighbor under
    serial Louvain."""

    @pytest.mark.parametrize("builder,kwargs", [
        (star_graph, dict(num_leaves=6)),
        (road_with_spokes, dict(num_hubs=15, spokes_per_hub=2)),
        (path_graph, dict(n=9)),
    ])
    def test_final_solution_joins_neighbor(self, builder, kwargs):
        g = builder(**kwargs)
        result = louvain_serial(g)
        comm = result.communities
        singles = single_degree_vertices(g)
        for v in singles.tolist():
            nbr = int(g.indices[g.indptr[v]])
            assert comm[v] == comm[nbr], f"vertex {v} not with neighbor {nbr}"

    def test_vf_and_plain_agree_on_star(self):
        g = star_graph(8)
        plain = louvain_serial(g)
        merged = vf_merge(g)
        # VF collapses the whole star; plain Louvain must find the same
        # single community.
        assert plain.num_communities == 1
        assert merged.graph.num_vertices == 1


class TestChainCompress:
    def test_path_collapses_until_bound_blocks(self):
        result = chain_compress(path_graph(10))
        # Needs multiple rounds, unlike plain VF, and compresses far below
        # the 8 vertices plain VF leaves; the §5.3 inequality stops the
        # final merge of the two heavy chain halves (k_i k_j / ω >= 2m).
        assert result.rounds > 1
        assert result.graph.num_vertices <= 3
        assert result.graph.num_vertices >= 1

    def test_respects_max_rounds(self):
        result = chain_compress(path_graph(10), max_rounds=1)
        assert result.rounds == 1
        assert result.graph.num_vertices == 8

    def test_termination_inequality_blocks_unsafe_merge(self):
        """When k_i * k_j / ω(i,j) >= 2m the §5.3 bound fails and the merge
        is skipped."""
        # Tiny m with a heavy pendant: k_i*k_j/w = 4*5/4 = 5 >= 2m = 4.5...
        g = CSRGraph.from_edges(
            3, [(0, 1), (1, 2), (1, 1)], [4.0, 0.25, 0.125]
        )
        # m = 4.375; vertex 0: k=4, neighbor 1: k=4.375; 4*4.375/4 = 4.375
        # < 8.75 -> merge allowed.  Vertex 2: k=0.25, 0.25*4.375/0.25 =
        # 4.375 < 8.75 -> also allowed.  Construct a genuinely blocked case:
        g2 = CSRGraph.from_edges(3, [(0, 1), (0, 2)], [10.0, 0.01])
        # m = 10.01, 2m = 20.02; merging 2 into 0: k_2*k_0/w = 0.01*10.01/
        # 0.01 = 10.01 < 20.02 (allowed); merging 1 into 0: k_1*k_0/w =
        # 10*10.01/10 = 10.01 (allowed).  Use weights making it fail:
        g3 = CSRGraph.from_edges(2, [(0, 1), (1, 1)], [1.0, 100.0])
        # m = 101; 2m = 202. k_0 = 1, k_1 = 101: 1*101/1 = 101 < 202 ->
        # allowed; single-neighbor vertex 1 (loop+edge): k_1*k_0/1 = 101 ->
        # allowed.  The bound is loose; verify compress terminates anyway.
        for g_ in (g, g2, g3):
            result = chain_compress(g_)
            assert result.graph.num_vertices >= 1

    def test_modularity_equivalence_after_compress(self):
        g = road_with_spokes(12, 1)
        result = chain_compress(g)
        meta_comm = (np.arange(result.graph.num_vertices) % 3).astype(np.int64)
        fine = meta_comm[result.vertex_to_meta]
        assert modularity(result.graph, meta_comm) == pytest.approx(
            modularity(g, fine), abs=1e-12
        )
