"""Unit tests for Eq. 3 modularity and its building blocks."""

import numpy as np
import pytest

from repro.core.modularity import (
    communities_are_valid,
    community_degrees,
    community_sizes,
    intra_community_weight,
    modularity,
    vertex_to_community_weight,
)
from repro.graph.csr import CSRGraph
from repro.utils.errors import ValidationError


class TestModularity:
    def test_all_in_one_community_is_zero(self, karate):
        """With P = {V}, the first term is 2m/2m and the second (2m/2m)^2."""
        assert modularity(karate, np.zeros(34, dtype=np.int64)) == pytest.approx(0.0)

    def test_singletons_negative_without_loops(self, karate):
        """Singleton partition: no intra weight, only the degree penalty."""
        q = modularity(karate, np.arange(34))
        expected = -float(
            np.square(karate.degrees / (2 * karate.total_weight)).sum()
        )
        assert q == pytest.approx(expected)
        assert q < 0

    def test_two_cliques_known_value(self, cliques8):
        comm = np.array([0, 0, 0, 0, 1, 1, 1, 1])
        # m = 13; intra = 24; a_C = 13 each.
        expected = 24 / 26 - 2 * (13 / 26) ** 2
        assert modularity(cliques8, comm) == pytest.approx(expected)

    def test_upper_bound_one(self, planted, planted_truth):
        assert modularity(planted, planted_truth) <= 1.0

    def test_ground_truth_beats_random(self, planted, planted_truth):
        rng = np.random.default_rng(0)
        random_comm = rng.integers(0, 6, size=planted.num_vertices)
        assert modularity(planted, planted_truth) > modularity(
            planted, random_comm
        )

    def test_self_loop_handling(self, loops_graph):
        """All vertices together: Q = 0 exactly (self-loops included)."""
        assert modularity(loops_graph, np.zeros(3, dtype=np.int64)) == pytest.approx(
            0.0
        )

    def test_label_values_irrelevant(self, karate):
        comm = (np.arange(34) % 4).astype(np.int64)
        shifted = comm * 17 + 3
        assert modularity(karate, comm) == pytest.approx(
            modularity(karate, shifted)
        )

    def test_empty_graph(self):
        assert modularity(CSRGraph.empty(0), np.zeros(0, dtype=np.int64)) == 0.0
        assert modularity(CSRGraph.empty(3), np.zeros(3, dtype=np.int64)) == 0.0

    def test_invalid_assignment_rejected(self, karate):
        with pytest.raises(ValidationError):
            modularity(karate, np.zeros(3, dtype=np.int64))
        with pytest.raises(ValidationError):
            modularity(karate, np.zeros(34, dtype=np.float64))
        assert not communities_are_valid(karate, np.zeros(3, dtype=np.int64))
        assert communities_are_valid(karate, np.zeros(34, dtype=np.int64))


class TestBuildingBlocks:
    def test_community_degrees(self, loops_graph):
        comm = np.array([0, 0, 1])
        a = community_degrees(loops_graph, comm)
        # k = [5, 4, 6].
        assert a.tolist() == [9.0, 6.0]

    def test_community_degrees_padding(self, triangle):
        a = community_degrees(triangle, np.zeros(3, dtype=np.int64), num_labels=5)
        assert a.shape == (5,)
        assert a[0] == 6.0 and (a[1:] == 0).all()

    def test_community_sizes(self, triangle):
        sizes = community_sizes(triangle, np.array([2, 0, 2]))
        assert sizes.tolist() == [1, 0, 2]

    def test_intra_weight_counts_loops_once(self, loops_graph):
        comm = np.array([0, 0, 1])
        # Community 0: loop(0)=2 once + edge(0,1)=3 twice = 8;
        # community 1: loop(2)=5 once.
        assert intra_community_weight(loops_graph, comm) == pytest.approx(13.0)

    def test_vertex_to_community_weight(self, loops_graph):
        comm = np.array([0, 0, 1])
        # e_{0 -> C0} includes the self-loop once plus edge to 1.
        assert vertex_to_community_weight(loops_graph, 0, comm, 0) == 5.0
        assert vertex_to_community_weight(loops_graph, 1, comm, 1) == 1.0
        assert vertex_to_community_weight(loops_graph, 1, comm, 0) == 3.0

    def test_sum_of_e_equals_degrees(self, karate):
        """sum_C e_{v→C} == k_v for every vertex (partition of edges)."""
        comm = (np.arange(34) % 3).astype(np.int64)
        for v in range(34):
            total = sum(
                vertex_to_community_weight(karate, v, comm, c) for c in range(3)
            )
            assert total == pytest.approx(karate.degrees[v])
