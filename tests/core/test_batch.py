"""Batched multi-graph Louvain: per-graph equivalence with the driver.

The load-bearing contract: for every input graph, ``louvain_batch``
produces **identical** communities, modularity, phase count, and
iteration count to a standalone ``louvain`` run under the same
configuration — the batch changes throughput, never results.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import LouvainConfig, louvain, louvain_batch
from repro.core.batch import run_phase_batch
from repro.core.sweep import init_state
from repro.core.workspace import SweepWorkspace
from repro.graph.batch import pack_graphs
from repro.graph.csr import CSRGraph
from repro.graph.generators import (
    karate_club,
    planted_partition,
    two_cliques_bridge,
)
from repro.robust.budget import RunBudget
from repro.utils.errors import ValidationError

from tests.properties.strategies import graphs


def assert_matches_driver(gs, cfg):
    batch = louvain_batch(gs, cfg)
    for i, g in enumerate(gs):
        single = louvain(g, cfg)
        b = batch[i]
        assert np.array_equal(single.communities, b.communities), i
        assert single.modularity == b.modularity, i
        assert single.num_phases == b.num_phases, i
        assert single.total_iterations == b.total_iterations, i


MIXED_GRAPHS = [
    planted_partition(3, 7, 0.7, 0.08, seed=0),
    planted_partition(4, 5, 0.6, 0.05, seed=1),
    karate_club(),
    two_cliques_bridge(4),
    CSRGraph.empty(0),
    CSRGraph.empty(5),
]


class TestLouvainBatchEquivalence:
    def test_defaults(self):
        assert_matches_driver(MIXED_GRAPHS, LouvainConfig())

    @pytest.mark.parametrize("prune", [True, False])
    @pytest.mark.parametrize("incremental", [True, False])
    def test_prune_incremental_matrix(self, prune, incremental):
        cfg = LouvainConfig(prune=prune, incremental_modularity=incremental)
        assert_matches_driver(MIXED_GRAPHS[:4], cfg)

    @pytest.mark.parametrize("aggregation", ["auto", "sort", "bincount"])
    def test_aggregation_paths(self, aggregation):
        cfg = LouvainConfig(aggregation=aggregation)
        assert_matches_driver(MIXED_GRAPHS[:3], cfg)

    def test_min_label_ablation(self):
        assert_matches_driver(MIXED_GRAPHS[:4],
                              LouvainConfig(use_min_label=False))

    def test_resolution(self):
        assert_matches_driver(MIXED_GRAPHS[:4],
                              LouvainConfig(resolution=1.5))

    def test_traced_and_sanitized(self):
        assert_matches_driver(MIXED_GRAPHS[:3],
                              LouvainConfig(trace=True, sanitize=True))

    def test_float32_batch(self):
        gs = [
            CSRGraph(g.indptr, g.indices, g.weights.astype(np.float32),
                     validate=False)
            for g in MIXED_GRAPHS[:3]
        ]
        assert_matches_driver(gs, LouvainConfig())

    def test_single_graph_batch(self):
        assert_matches_driver([karate_club()], LouvainConfig())

    @given(gs=st.lists(graphs(max_vertices=12, max_extra_edges=20),
                       min_size=1, max_size=5))
    @settings(max_examples=15, deadline=None)
    def test_random_graph_lists(self, gs):
        assert_matches_driver(gs, LouvainConfig())

    def test_duplicate_graphs_get_identical_results(self):
        g = planted_partition(3, 6, 0.7, 0.05, seed=3)
        results = louvain_batch([g, g, g])
        for r in results[1:]:
            assert np.array_equal(r.communities, results[0].communities)
            assert r.modularity == results[0].modularity


class TestLouvainBatchEdges:
    def test_empty_graph(self):
        (r,) = louvain_batch([CSRGraph.empty(0)])
        assert r.communities.size == 0
        assert r.modularity == 0.0
        assert r.converged

    def test_edgeless_graph(self):
        (r,) = louvain_batch([CSRGraph.empty(7)])
        assert np.array_equal(r.communities, np.arange(7))
        assert r.modularity == 0.0
        assert (r.num_phases, r.total_iterations) == (1, 1)

    def test_budget_interrupt_returns_valid_partitions(self):
        gs = [planted_partition(4, 8, 0.6, 0.05, seed=s) for s in range(3)]
        cfg = LouvainConfig(budget=RunBudget(max_iterations=1))
        results = louvain_batch(gs, cfg)
        for g, r in zip(gs, results):
            assert r.communities.shape == (g.num_vertices,)
            assert r.communities.min() >= 0
            assert r.interrupted or r.converged

    def test_result_repr(self):
        (r,) = louvain_batch([two_cliques_bridge(3)])
        assert "BatchGraphResult" in repr(r)
        assert r.num_communities == 2


class TestLouvainBatchValidation:
    @pytest.mark.parametrize("overrides", [
        dict(use_vf=True),
        dict(use_coloring=True),
        dict(kernel="reference"),
        dict(backend="threads"),
        dict(fault_plan="kill:worker=0,chunk=0"),
    ])
    def test_unsupported_config_rejected(self, overrides):
        with pytest.raises(ValidationError):
            louvain_batch([two_cliques_bridge(3)], **overrides)

    def test_non_graph_rejected(self):
        with pytest.raises(ValidationError):
            louvain_batch([np.zeros(4)])


class TestRunPhaseBatch:
    def test_zero_weight_blocks_converge_instantly(self):
        batch = pack_graphs([CSRGraph.empty(4), two_cliques_bridge(3)])
        state = init_state(batch.graph)
        workspace = SweepWorkspace(batch.graph)
        outcome = run_phase_batch(batch, state, threshold=1e-6,
                                  workspace=workspace)
        assert outcome.converged.all()
        assert outcome.iterations[0] == 0
        assert outcome.iterations[1] > 0
        assert outcome.start_modularity[0] == 0.0
        assert outcome.end_modularity[1] > outcome.start_modularity[1]

    def test_per_graph_convergence_masks_finished_blocks(self):
        # A trivially-converging block next to one that needs real work:
        # the easy one must stop being swept while the other continues.
        easy = two_cliques_bridge(2)
        hard = planted_partition(4, 10, 0.5, 0.05, seed=7)
        batch = pack_graphs([easy, hard])
        state = init_state(batch.graph)
        outcome = run_phase_batch(batch, state, threshold=1e-6,
                                  workspace=SweepWorkspace(batch.graph))
        assert outcome.converged.all()
        single_easy = init_state(easy)
        from repro.core.phase import run_phase
        easy_out = run_phase(easy, single_easy, threshold=1e-6)
        assert outcome.iterations[0] == len(easy_out.records)
