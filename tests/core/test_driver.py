"""Integration-level tests for the full pipeline driver (§5.4)."""

import numpy as np
import pytest

from repro.core.config import HeuristicVariant, LouvainConfig
from repro.core.driver import louvain
from repro.core.modularity import modularity
from repro.graph.csr import CSRGraph
from repro.graph.generators import (
    karate_club,
    planted_partition,
    road_with_spokes,
    star_graph,
)
from repro.utils.errors import ValidationError


class TestBasics:
    def test_default_run(self, karate):
        result = louvain(karate)
        assert result.modularity > 0.35
        assert result.config.variant_name == "baseline"
        assert result.num_phases >= 1

    def test_modularity_matches_communities(self, karate):
        result = louvain(karate)
        assert result.modularity == pytest.approx(
            modularity(karate, result.communities)
        )

    def test_dense_labels(self, planted):
        comm = louvain(planted).communities
        labels = np.unique(comm)
        np.testing.assert_array_equal(labels, np.arange(labels.size))

    def test_two_cliques(self, cliques8):
        result = louvain(cliques8)
        assert result.num_communities == 2

    def test_empty_graph(self):
        result = louvain(CSRGraph.empty(0))
        assert result.communities.shape == (0,)
        assert result.modularity == 0.0

    def test_edgeless_graph(self):
        result = louvain(CSRGraph.empty(5))
        assert result.num_communities == 5

    def test_repr(self, karate):
        r = repr(louvain(karate))
        assert "Q=" in r and "variant=" in r


class TestVariants:
    def test_variant_string_and_enum(self, karate):
        r1 = louvain(karate, variant="baseline+VF")
        r2 = louvain(karate, variant=HeuristicVariant.BASELINE_VF)
        np.testing.assert_array_equal(r1.communities, r2.communities)

    def test_config_and_variant_exclusive(self, karate):
        with pytest.raises(ValidationError):
            louvain(karate, LouvainConfig(), variant="baseline")

    def test_overrides(self, karate):
        result = louvain(karate, variant="baseline+VF+Color",
                         coloring_min_vertices=10)
        assert result.config.coloring_min_vertices == 10
        assert result.config.use_coloring

    def test_vf_level_in_dendrogram(self):
        g = road_with_spokes(30, 3)
        result = louvain(g, variant="baseline+VF")
        assert result.vf is not None
        assert result.vf.num_merged == 90
        assert result.dendrogram.labels[0] == "vf"
        # Communities still live on the original 120 vertices.
        assert result.communities.shape == (120,)

    def test_vf_noop_when_no_single_degree(self):
        from repro.graph.generators import cycle_graph

        result = louvain(cycle_graph(12), variant="baseline+VF")
        assert result.vf is not None
        assert result.vf.num_merged == 0

    def test_chain_compression_option(self):
        g = road_with_spokes(30, 2)
        result = louvain(g, variant="baseline+VF", vf_chain_compression=True)
        assert result.vf.rounds >= 1
        assert result.communities.shape == (g.num_vertices,)

    def test_coloring_actually_used(self, planted):
        result = louvain(planted, variant="baseline+VF+Color",
                         coloring_min_vertices=4)
        assert any(p.colored for p in result.history.phases)
        assert result.history.phases[0].num_colors >= 2

    def test_coloring_cutoff_respected(self, planted):
        result = louvain(planted, variant="baseline+VF+Color",
                         coloring_min_vertices=10**6)
        assert not any(p.colored for p in result.history.phases)

    def test_first_phase_only_coloring(self, planted):
        result = louvain(
            planted, variant="baseline+VF+Color",
            coloring_min_vertices=4, multiphase_coloring=False,
        )
        colored = [p.colored for p in result.history.phases]
        assert colored[0]
        assert not any(colored[1:])

    def test_colored_phases_use_colored_threshold(self, planted):
        result = louvain(planted, variant="baseline+VF+Color",
                         coloring_min_vertices=4)
        for p in result.history.phases:
            expected = 1e-2 if p.colored else 1e-6
            assert p.threshold == expected

    def test_min_label_ablation_runs(self, planted):
        result = louvain(planted, use_min_label=False)
        assert result.modularity > 0  # still finds structure

    def test_balanced_coloring_option(self, planted):
        result = louvain(planted, variant="baseline+VF+Color",
                         coloring_min_vertices=4, balanced_coloring=True)
        assert result.modularity > 0.5

    def test_distance2_coloring_option(self, karate):
        result = louvain(karate, variant="baseline+VF+Color",
                         coloring_min_vertices=4, distance_k=2)
        assert result.modularity > 0.35


class TestDeterminismAndBackends:
    def test_deterministic(self, planted):
        r1 = louvain(planted, variant="baseline+VF+Color", coloring_min_vertices=4)
        r2 = louvain(planted, variant="baseline+VF+Color", coloring_min_vertices=4)
        np.testing.assert_array_equal(r1.communities, r2.communities)
        assert r1.modularity == r2.modularity

    def test_backend_invariance(self, planted):
        """§5.4 stability: thread backend changes nothing in the output."""
        serial = louvain(planted, backend="serial")
        threaded = louvain(planted, backend="threads", num_threads=4)
        np.testing.assert_array_equal(serial.communities, threaded.communities)

    def test_kernel_invariance(self, karate):
        vec = louvain(karate)
        ref = louvain(karate, kernel="reference")
        np.testing.assert_array_equal(vec.communities, ref.communities)


class TestHistoryAndTimers:
    def test_history_shape(self, planted):
        result = louvain(planted, variant="baseline+VF+Color",
                         coloring_min_vertices=4)
        h = result.history
        assert h.total_iterations == sum(p.iterations for p in h.phases)
        assert h.final_modularity == pytest.approx(
            h.phases[-1].end_modularity
        )
        bounds = h.phase_boundaries()
        assert bounds[-1] == h.total_iterations

    def test_monotone_phase_start(self, planted):
        """Each phase starts from the previous phase's communities, so its
        start modularity equals the previous end (coarsening invariance)."""
        result = louvain(planted)
        phases = result.history.phases
        for prev, nxt in zip(phases, phases[1:]):
            assert nxt.start_modularity == pytest.approx(
                prev.end_modularity, abs=1e-9
            )

    def test_timers(self, planted):
        result = louvain(planted, variant="baseline+VF+Color",
                         coloring_min_vertices=4)
        assert result.timers.get("clustering") > 0
        assert result.timers.get("coloring") > 0
        assert result.timers.get("rebuild") > 0

    def test_dendrogram_flatten_matches_result(self, planted):
        result = louvain(planted)
        np.testing.assert_array_equal(
            result.dendrogram.flatten(), result.communities
        )

    def test_rebuild_lock_ops_recorded(self, planted):
        result = louvain(planted)
        assert result.history.phases[0].rebuild_lock_ops > 0


class TestQuality:
    def test_planted_recovery(self, planted, planted_truth):
        result = louvain(planted, variant="baseline+VF+Color",
                         coloring_min_vertices=4)
        assert result.modularity >= modularity(planted, planted_truth) - 0.02

    def test_star_single_community(self):
        result = louvain(star_graph(10), variant="baseline+VF")
        assert result.num_communities == 1

    def test_parallel_close_to_serial(self, planted):
        from repro.core.louvain_serial import louvain_serial

        serial_q = louvain_serial(planted).modularity
        parallel_q = louvain(planted, variant="baseline+VF+Color",
                             coloring_min_vertices=4).modularity
        assert parallel_q >= serial_q - 0.03
