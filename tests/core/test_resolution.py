"""Tests for the resolution-parameter extension (paper future work iv).

The standard modularity of Eq. 3 has a *resolution limit*: on a large ring
of small cliques, merging adjacent cliques scores higher than keeping them
separate, so Louvain reports merged pairs.  The γ-generalized objective
(γ > 1) removes the incentive; these tests demonstrate exactly that, plus
the algebraic consistency of the generalized gain.
"""

import numpy as np
import pytest

from repro.core.driver import louvain
from repro.core.gain import delta_q_vertex
from repro.core.louvain_serial import louvain_serial
from repro.core.modularity import modularity
from repro.graph.build import from_edge_array
from repro.graph.csr import CSRGraph
from repro.utils.errors import ValidationError


def ring_of_cliques(num_cliques: int, clique_size: int) -> CSRGraph:
    """Cliques joined in a ring by single bridge edges."""
    n = num_cliques * clique_size
    i, j = np.triu_indices(clique_size, k=1)
    base = (np.arange(num_cliques) * clique_size)[:, None]
    u = (base + i[None, :]).ravel()
    v = (base + j[None, :]).ravel()
    bridge_src = (np.arange(num_cliques) * clique_size + clique_size - 1)
    bridge_dst = (np.arange(1, num_cliques + 1) % num_cliques) * clique_size
    u = np.concatenate([u, np.minimum(bridge_src, bridge_dst)])
    v = np.concatenate([v, np.maximum(bridge_src, bridge_dst)])
    return from_edge_array(n, np.column_stack([u, v]), combine="error")


class TestGeneralizedModularity:
    def test_gamma_one_is_paper_definition(self, karate):
        comm = (np.arange(34) % 4).astype(np.int64)
        assert modularity(karate, comm) == modularity(karate, comm,
                                                      resolution=1.0)

    def test_higher_gamma_penalizes_merging(self, cliques8):
        """γ scales the degree penalty, so coarse partitions score lower
        relative to fine ones as γ grows."""
        merged = np.zeros(8, dtype=np.int64)
        split = np.array([0, 0, 0, 0, 1, 1, 1, 1])
        for gamma in (0.5, 1.0, 2.0):
            gap = modularity(cliques8, split, resolution=gamma) - modularity(
                cliques8, merged, resolution=gamma
            )
            # The two-community split beats the single community more
            # strongly at higher gamma.
            assert gap > 0
        gap_low = modularity(cliques8, split, resolution=0.5) - modularity(
            cliques8, merged, resolution=0.5
        )
        gap_high = modularity(cliques8, split, resolution=2.0) - modularity(
            cliques8, merged, resolution=2.0
        )
        assert gap_high > gap_low

    def test_invalid_gamma(self, karate):
        with pytest.raises(ValidationError):
            modularity(karate, np.zeros(34, dtype=np.int64), resolution=0.0)


class TestGainConsistency:
    @pytest.mark.parametrize("gamma", [0.5, 1.0, 2.5])
    def test_gain_identity_holds_for_any_gamma(self, karate, gamma):
        comm = (np.arange(34) % 5).astype(np.int64)
        for v, target in [(0, 1), (12, 3), (33, 0)]:
            if target == comm[v]:
                continue
            gain = delta_q_vertex(karate, comm, v, target, resolution=gamma)
            moved = comm.copy()
            moved[v] = target
            exact = modularity(karate, moved, resolution=gamma) - modularity(
                karate, comm, resolution=gamma
            )
            assert gain == pytest.approx(exact, abs=1e-12)


class TestResolutionLimit:
    """The classic Fortunato–Barthélemy demonstration."""

    def test_gamma_one_merges_small_cliques(self):
        """30 triangles in a ring: standard modularity prefers merged
        pairs, so Louvain finds fewer than 30 communities."""
        g = ring_of_cliques(30, 3)
        result = louvain_serial(g)
        assert result.num_communities < 30

    def test_high_gamma_resolves_each_clique(self):
        # For 30 triangles (m = 120, merged-pair degree ~14), the bridge
        # gain 1/m beats the penalty 2*gamma*a^2/(2m)^2 until gamma ~ 4.9.
        g = ring_of_cliques(30, 3)
        result = louvain_serial(g, resolution=5.0)
        assert result.num_communities == 30
        # Every triangle is one community.
        comm = result.communities
        for c in range(30):
            members = comm[c * 3:(c + 1) * 3]
            assert len(set(members.tolist())) == 1

    def test_parallel_pipeline_matches(self):
        """The parallel pipeline honors the resolution parameter too."""
        g = ring_of_cliques(24, 3)
        low = louvain(g, variant="baseline+VF+Color",
                      coloring_min_vertices=8)
        high = louvain(g, variant="baseline+VF+Color",
                       coloring_min_vertices=8, resolution=5.0)
        assert high.num_communities > low.num_communities
        assert high.num_communities == 24

    def test_low_gamma_coarsens(self):
        """γ < 1 favors merging: fewer, larger communities."""
        g = ring_of_cliques(24, 4)
        standard = louvain_serial(g)
        coarse = louvain_serial(g, resolution=0.25)
        assert coarse.num_communities <= standard.num_communities

    def test_reported_modularity_uses_gamma(self):
        g = ring_of_cliques(12, 3)
        result = louvain(g, resolution=2.0)
        assert result.modularity == pytest.approx(
            modularity(g, result.communities, resolution=2.0)
        )
