"""Unit tests for the Eq. 4 gain identity and the Eq. 6–9 concurrent-move
algebra (negative-gain scenario, §4.1)."""

import numpy as np
import pytest

from repro.core.gain import (
    concurrent_gain,
    concurrent_gain_from_parts,
    delta_q,
    delta_q_vertex,
)
from repro.core.modularity import modularity
from repro.graph.csr import CSRGraph
from repro.utils.errors import ValidationError


def exact_delta(graph, comm, v, target):
    """Q(after) - Q(before) computed from Eq. 3 directly."""
    before = modularity(graph, comm)
    moved = comm.copy()
    moved[v] = target
    return modularity(graph, moved) - before


class TestGainIdentity:
    def test_matches_exact_delta_karate(self, karate):
        comm = (np.arange(34) % 5).astype(np.int64)
        for v in [0, 7, 19, 33]:
            for target in range(5):
                if target == comm[v]:
                    continue
                assert delta_q_vertex(karate, comm, v, target) == pytest.approx(
                    exact_delta(karate, comm, v, target), abs=1e-12
                )

    def test_matches_exact_delta_with_self_loops(self, loops_graph):
        comm = np.array([0, 1, 1])
        for v in range(3):
            for target in range(2):
                if target == comm[v]:
                    continue
                assert delta_q_vertex(loops_graph, comm, v, target) == (
                    pytest.approx(exact_delta(loops_graph, comm, v, target),
                                  abs=1e-12)
                )

    def test_move_to_own_community_is_zero(self, karate):
        comm = (np.arange(34) % 3).astype(np.int64)
        assert delta_q_vertex(karate, comm, 5, int(comm[5])) == 0.0

    def test_singleton_join_gain(self, cliques8):
        """A clique vertex split off as a singlet gains by rejoining."""
        comm = np.array([0, 0, 0, 7, 1, 1, 1, 1])
        gain = delta_q_vertex(cliques8, comm, 3, 0)
        assert gain > 0
        assert gain == pytest.approx(exact_delta(cliques8, comm, 3, 0), abs=1e-12)

    def test_delta_q_direct_parts(self):
        # Hand-computed: m=4, e_t=2, e_c=1, k=2, a_c'=3, a_t=2.
        expected = (2 - 1) / 4 + (2 * 2 * 3 - 2 * 2 * 2) / 64
        assert delta_q(4.0, 2.0, 1.0, 2.0, 3.0, 2.0) == pytest.approx(expected)

    def test_nonpositive_m_rejected(self):
        with pytest.raises(ValidationError):
            delta_q(0.0, 1, 1, 1, 1, 1)


class TestConcurrentGain:
    def test_lemma1_three_vertex_negative_gain(self):
        """The paper's Fig. 1 scenario: i and j both join C(k) concurrently;
        with (i, j) not an edge the realized gain undershoots the sum of
        individual gains and can be negative."""
        # Star-ish: i-k and j-k edges plus enough ballast to keep m small.
        g = CSRGraph.from_edges(5, [(0, 2), (1, 2), (3, 4)])
        comm = np.arange(5)
        gain_i = delta_q_vertex(g, comm, 0, 2)
        gain_j = delta_q_vertex(g, comm, 1, 2)
        assert gain_i > 0 and gain_j > 0
        joint = concurrent_gain(g, comm, 0, 1, 2)
        # Eq. 7: joint <= sum of parts when (i, j) is not an edge.
        assert joint < gain_i + gain_j
        # And it matches the exact Eq. 3 delta of the double move.
        moved = comm.copy()
        moved[0] = 2
        moved[1] = 2
        exact = modularity(g, moved) - modularity(g, comm)
        assert joint == pytest.approx(exact, abs=1e-12)

    def test_eq9_edge_bonus(self):
        """With (i, j) an edge and ω/m > 2 k_i k_j/(2m)^2, the joint move
        beats the sum of the parts (Eq. 9)."""
        g = CSRGraph.from_edges(4, [(0, 2), (1, 2), (0, 1), (2, 3)])
        comm = np.arange(4)
        gain_i = delta_q_vertex(g, comm, 0, 2)
        gain_j = delta_q_vertex(g, comm, 1, 2)
        joint = concurrent_gain(g, comm, 0, 1, 2)
        m = g.total_weight
        bonus = g.edge_weight(0, 1) / m - 2 * g.degrees[0] * g.degrees[1] / (2 * m) ** 2
        assert bonus > 0
        assert joint == pytest.approx(gain_i + gain_j + bonus, abs=1e-12)
        assert joint > gain_i + gain_j
        moved = comm.copy()
        moved[[0, 1]] = 2
        assert joint == pytest.approx(
            modularity(g, moved) - modularity(g, comm), abs=1e-12
        )

    def test_parts_formula(self):
        assert concurrent_gain_from_parts(2.0, 0.1, 0.2, 0.0, 1.0, 1.0) == (
            pytest.approx(0.3 - 2.0 / 16.0)
        )

    def test_validation(self, triangle):
        comm = np.array([0, 1, 2])
        with pytest.raises(ValidationError):
            concurrent_gain(triangle, comm, 0, 1, 1)  # j already in target
        with pytest.raises(ValidationError):
            concurrent_gain(triangle, np.array([0, 0, 2]), 0, 1, 2)
