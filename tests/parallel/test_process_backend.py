"""Tests for the fork + shared-memory process backend (real parallelism)."""

import multiprocessing as mp
import time

import numpy as np
import pytest

from repro.core.driver import louvain
from repro.core.sweep import compute_targets, init_state
from repro.parallel.backends import make_backend
from repro.parallel.process_backend import ProcessBackend
from repro.utils.errors import ValidationError

pytestmark = pytest.mark.skipif(
    "fork" not in mp.get_all_start_methods(),
    reason="process backend requires the fork start method",
)


class TestSweepIdentity:
    def test_targets_match_serial(self, planted):
        state = init_state(planted)
        verts = np.arange(planted.num_vertices, dtype=np.int64)
        serial = compute_targets(planted, state, verts)
        backend = ProcessBackend(2)
        try:
            parallel = compute_targets(planted, state, verts, backend=backend)
        finally:
            backend.close()
        np.testing.assert_array_equal(serial, parallel)

    def test_targets_match_over_iterations(self, planted):
        from repro.core.sweep import apply_moves

        s_serial = init_state(planted)
        s_proc = init_state(planted)
        verts = np.arange(planted.num_vertices, dtype=np.int64)
        backend = ProcessBackend(2)
        try:
            for _ in range(3):
                a = compute_targets(planted, s_serial, verts)
                b = compute_targets(planted, s_proc, verts, backend=backend)
                np.testing.assert_array_equal(a, b)
                apply_moves(planted, s_serial, verts, a)
                apply_moves(planted, s_proc, verts, b)
        finally:
            backend.close()

    def test_subset_and_resolution(self, planted):
        state = init_state(planted)
        subset = np.arange(0, planted.num_vertices, 3, dtype=np.int64)
        backend = ProcessBackend(2)
        try:
            a = compute_targets(planted, state, subset, resolution=2.0)
            b = compute_targets(planted, state, subset, backend=backend,
                                resolution=2.0)
        finally:
            backend.close()
        np.testing.assert_array_equal(a, b)


class TestFullPipeline:
    def test_driver_identity(self, planted):
        serial = louvain(planted, variant="baseline")
        proc = louvain(planted, variant="baseline", backend="processes",
                       num_threads=2)
        np.testing.assert_array_equal(serial.communities, proc.communities)

    def test_driver_with_coloring(self, planted):
        cutoff = max(16, planted.num_vertices // 8)
        serial = louvain(planted, variant="baseline+VF+Color",
                         coloring_min_vertices=cutoff)
        proc = louvain(planted, variant="baseline+VF+Color",
                       coloring_min_vertices=cutoff,
                       backend="processes", num_threads=2)
        np.testing.assert_array_equal(serial.communities, proc.communities)


class TestLifecycle:
    def test_factory(self):
        backend = make_backend("processes", 2)
        assert isinstance(backend, ProcessBackend)
        assert backend.num_workers == 2
        backend.close()

    def test_default_worker_count(self):
        backend = ProcessBackend()
        assert backend.num_workers >= 1
        backend.close()

    def test_single_worker_inline(self, planted):
        backend = ProcessBackend(1)
        try:
            state = init_state(planted)
            verts = np.arange(planted.num_vertices, dtype=np.int64)
            out = backend.sweep_targets(planted, state, verts,
                                        use_min_label=True, resolution=1.0)
            np.testing.assert_array_equal(
                out, compute_targets(planted, state, verts)
            )
            assert backend._executors == {}  # never forked
        finally:
            backend.close()

    def test_close_idempotent(self, planted):
        backend = ProcessBackend(2)
        state = init_state(planted)
        verts = np.arange(planted.num_vertices, dtype=np.int64)
        backend.sweep_targets(planted, state, verts, use_min_label=True,
                              resolution=1.0)
        backend.close()
        backend.close()

    def test_map_runs_inline(self):
        backend = ProcessBackend(2)
        try:
            assert backend.map(lambda x: x + 1, [1, 2]) == [2, 3]
        finally:
            backend.close()

    def test_validation(self):
        with pytest.raises(ValidationError):
            ProcessBackend(0)


class TestWorkerDeath:
    """Regression tests for the done_q / trace_q hang class.

    The seed backend blocked forever on ``done_q.get()`` when a worker
    died mid-chunk, and ``close()`` paid a serial 5 s ``trace_q`` penalty
    per dead worker.  Both paths must now finish promptly — and with
    recovery in place, a pool that loses a worker completes the sweep
    anyway (identical results) unless its respawn budget is zeroed.
    """

    def _executor(self, planted, policy=None):
        backend = ProcessBackend(2, policy=policy)
        state = init_state(planted)
        verts = np.arange(planted.num_vertices, dtype=np.int64)
        # Run one sweep so the executor (pool + buffers) exists.
        backend.sweep_targets(planted, state, verts, use_min_label=True,
                              resolution=1.0)
        (executor,) = backend._executors.values()
        return backend, executor, state, verts

    def test_close_fast_with_dead_worker(self, planted):
        backend, executor, _, _ = self._executor(planted)
        executor._slots[0].process.kill()
        executor._slots[0].process.join(timeout=5)
        t0 = time.perf_counter()
        backend.close()
        assert time.perf_counter() - t0 < 2.0

    def test_dead_worker_recovers_with_identical_targets(self, planted):
        backend, executor, state, verts = self._executor(planted)
        try:
            executor._slots[0].process.kill()
            executor._slots[0].process.join(timeout=5)
            out = executor.compute_targets(state, verts, use_min_label=True,
                                           resolution=1.0)
            np.testing.assert_array_equal(
                out, compute_targets(planted, state, verts)
            )
            assert backend.recovery.deaths >= 1
            assert backend.recovery.respawns >= 1
        finally:
            backend.close()

    def test_dead_pool_raises_instead_of_hanging(self, planted):
        from repro.robust.recovery import RetryPolicy
        from repro.utils.errors import WorkerPoolError

        backend, executor, state, verts = self._executor(
            planted, policy=RetryPolicy(max_respawns=0)
        )
        try:
            for slot in executor._slots:
                slot.process.kill()
                slot.process.join(timeout=5)
            t0 = time.perf_counter()
            with pytest.raises(WorkerPoolError, match="died mid-sweep"):
                executor.compute_targets(state, verts, use_min_label=True,
                                         resolution=1.0)
            assert time.perf_counter() - t0 < 5.0
        finally:
            backend.close()

    def test_dead_pool_backend_falls_back_to_serial(self, planted):
        from repro.robust.recovery import RetryPolicy

        backend, executor, state, verts = self._executor(
            planted, policy=RetryPolicy(max_respawns=0)
        )
        try:
            for slot in executor._slots:
                slot.process.kill()
                slot.process.join(timeout=5)
            out = backend.sweep_targets(planted, state, verts,
                                        use_min_label=True, resolution=1.0)
            np.testing.assert_array_equal(
                out, compute_targets(planted, state, verts)
            )
            assert backend.recovery.fallbacks == 1
            assert backend._degraded
        finally:
            backend.close()

    def test_close_fast_with_all_workers_dead(self, planted):
        backend, executor, _, _ = self._executor(planted)
        for slot in executor._slots:
            slot.process.kill()
            slot.process.join(timeout=5)
        t0 = time.perf_counter()
        backend.close()
        assert time.perf_counter() - t0 < 2.0
