"""Unit tests for the simulated-machine cost model."""

import numpy as np
import pytest

from repro.core.driver import louvain
from repro.core.history import ConvergenceHistory, IterationRecord, PhaseRecord
from repro.parallel.costmodel import (
    MachineModel,
    absolute_speedup,
    relative_speedup,
)
from repro.utils.errors import ValidationError


def _iteration(vertices=1000, edges=8000, moved=100, comms=500, sets=1):
    per_v = vertices // sets
    per_e = edges // sets
    return IterationRecord(
        phase=0, iteration=0, modularity=0.5, vertices_moved=moved,
        num_communities=comms,
        color_set_vertices=tuple([per_v] * sets),
        color_set_edges=tuple([per_e] * sets),
    )


def _phase(vertices=1000, edges=4000, colored=False, colors=0, locks=4000,
           comms=300, sizes=()):
    return PhaseRecord(
        phase=0, num_vertices=vertices, num_edges=edges, colored=colored,
        num_colors=colors, threshold=1e-2, iterations=3,
        start_modularity=0.0, end_modularity=0.5,
        rebuild_lock_ops=locks, rebuild_num_communities=comms,
        color_class_sizes=sizes,
    )


class TestIterationTime:
    def test_speedup_with_threads(self):
        mm = MachineModel()
        rec = _iteration(vertices=100_000, edges=1_000_000)
        t1 = mm.iteration_time(rec, 1)
        t8 = mm.iteration_time(rec, 8)
        assert t8 < t1
        assert t1 / t8 <= 8.0  # never super-linear

    def test_many_small_color_sets_hurt(self):
        """The §6.2 skew effect: same total work, more sets -> more time."""
        mm = MachineModel()
        one_set = _iteration(vertices=64_000, edges=512_000, sets=1)
        many_sets = _iteration(vertices=64_000, edges=512_000, sets=64)
        assert mm.iteration_time(many_sets, 16) > mm.iteration_time(one_set, 16)

    def test_tiny_sets_underutilize(self):
        """A color set smaller than p*grain cannot use all threads."""
        mm = MachineModel(grain=64)
        rec = _iteration(vertices=32, edges=256, moved=0, sets=1)
        # 32 vertices < 64 grain -> p_eff = 1; p=32 only adds sync cost.
        assert mm.iteration_time(rec, 32) >= mm.iteration_time(rec, 1)

    def test_bandwidth_roofline(self):
        """Effective parallelism saturates near the bandwidth cap but keeps
        a mild slope (the paper's 16 -> 32 thread behaviour)."""
        mm = MachineModel()
        e16 = mm.effective_parallelism(16, 10**6)
        e32 = mm.effective_parallelism(32, 10**6)
        e64 = mm.effective_parallelism(64, 10**6)
        assert e16 < e32 < e64 <= mm.bandwidth_cap
        assert e32 - e16 < 16 - 8  # clearly sub-linear growth

    def test_contention_grows_when_communities_shrink(self):
        mm = MachineModel()
        few = _iteration(moved=1000, comms=4)
        many = _iteration(moved=1000, comms=100_000)
        assert mm.iteration_time(few, 32) > mm.iteration_time(many, 32)

    def test_p_validation(self):
        with pytest.raises(ValidationError):
            MachineModel().iteration_time(_iteration(), 0)


class TestRebuildTime:
    def test_serial_renumber_caps_scaling(self):
        """With a huge surviving community count the serial renumbering
        dominates at high p (the paper's §5.5 bottleneck)."""
        mm = MachineModel()
        ph = _phase(vertices=100_000, edges=400_000, comms=90_000,
                    locks=800_000)
        t1 = mm.rebuild_time(ph, 1)
        t32 = mm.rebuild_time(ph, 32)
        serial_floor = ph.rebuild_num_communities * mm.t_serial_vertex
        assert t32 >= serial_floor
        assert t1 / t32 < 32

    def test_lock_contention_with_few_communities(self):
        """When lock traffic dominates, fewer targets -> more contention.

        Lock counts are set high enough that the (cheaper-to-renumber)
        crowded case still loses despite the roomy case's larger serial
        renumbering floor.
        """
        mm = MachineModel()
        crowded = _phase(comms=2, locks=10_000_000)
        roomy = _phase(comms=50_000, locks=10_000_000)
        assert mm.rebuild_time(crowded, 32) > mm.rebuild_time(roomy, 32)

    def test_inter_heavy_costs_more(self):
        """More lock ops (low-modularity phase, mostly inter edges) -> slower
        rebuild: the Europe-osm/NLPKKT240 effect of §6.2.1."""
        mm = MachineModel()
        inter_heavy = _phase(locks=2 * 4000)   # all edges inter: 2 locks
        intra_heavy = _phase(locks=4000)       # all edges intra: 1 lock
        assert mm.rebuild_time(inter_heavy, 8) > mm.rebuild_time(intra_heavy, 8)


class TestColoringTime:
    def test_uncolored_phase_free(self):
        assert MachineModel().coloring_time(_phase(colored=False), 8) == 0.0

    def test_rounds_add_sync(self):
        mm = MachineModel()
        few = _phase(colored=True, colors=4)
        many = _phase(colored=True, colors=400)
        assert mm.coloring_time(many, 8) > mm.coloring_time(few, 8)


class TestSimulate:
    def _history(self):
        h = ConvergenceHistory()
        h.iterations = [_iteration() for _ in range(5)]
        h.phases = [_phase(colored=True, colors=8), _phase()]
        return h

    def test_breakdown_buckets(self):
        mm = MachineModel()
        b = mm.simulate(self._history(), 8)
        assert b.clustering > 0 and b.rebuild > 0 and b.coloring > 0
        assert b.total == pytest.approx(b.clustering + b.coloring + b.rebuild)
        fr = b.fractions()
        assert sum(fr.values()) == pytest.approx(1.0)

    def test_replay_from_real_run(self):
        from repro.graph.generators import planted_partition

        g = planted_partition(10, 100, 0.1, 0.005, seed=3)
        result = louvain(g, variant="baseline")
        mm = MachineModel()
        times = {p: mm.simulate(result.history, p).total for p in (1, 2, 4, 8)}
        # 8 threads beat 1 thread on a real (non-sync-dominated) workload.
        assert times[8] < times[1]

    def test_tiny_graphs_do_not_scale(self, planted):
        """On a 120-vertex input barrier costs dominate — extra threads
        cannot pay for themselves (true of the real machine too)."""
        result = louvain(planted, variant="baseline+VF+Color",
                         coloring_min_vertices=4)
        mm = MachineModel()
        t1 = mm.simulate(result.history, 1).total
        t32 = mm.simulate(result.history, 32).total
        assert t32 > t1 / 32  # nowhere near linear

    def test_serial_equals_p1(self):
        mm = MachineModel()
        h = self._history()
        assert mm.simulate_serial(h) == pytest.approx(mm.simulate(h, 1).total)


class TestSpeedupHelpers:
    def test_relative(self):
        sp = relative_speedup({1: 10.0, 2: 8.0, 4: 4.0}, base_p=2)
        assert sp[2] == 1.0
        assert sp[4] == 2.0

    def test_relative_missing_base(self):
        with pytest.raises(ValidationError):
            relative_speedup({1: 1.0}, base_p=2)

    def test_absolute(self):
        sp = absolute_speedup({8: 5.0}, serial_time=20.0)
        assert sp[8] == 4.0
        with pytest.raises(ValidationError):
            absolute_speedup({8: 5.0}, serial_time=0.0)
