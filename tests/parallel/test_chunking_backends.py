"""Unit tests for partitioners, backends, and the atomic emulation."""

import numpy as np
import pytest

from repro.graph.generators import rmat, star_graph
from repro.parallel.atomic import ThreadLocalAccumulator
from repro.parallel.backends import SerialBackend, ThreadBackend, make_backend
from repro.parallel.chunking import block_partition, edge_balanced_partition
from repro.utils.errors import ValidationError


class TestBlockPartition:
    def test_covers_all_exactly_once(self):
        verts = np.arange(100)
        chunks = block_partition(verts, 7)
        merged = np.concatenate(chunks)
        np.testing.assert_array_equal(merged, verts)

    def test_near_equal_sizes(self):
        chunks = block_partition(np.arange(100), 4)
        assert all(len(c) == 25 for c in chunks)

    def test_more_chunks_than_items(self):
        chunks = block_partition(np.arange(3), 10)
        assert len(chunks) == 3
        assert all(len(c) == 1 for c in chunks)

    def test_empty(self):
        assert block_partition(np.zeros(0, dtype=np.int64), 4) == []

    def test_bad_count(self):
        with pytest.raises(ValidationError):
            block_partition(np.arange(3), 0)


class TestEdgeBalancedPartition:
    def test_covers_all_exactly_once(self):
        g = rmat(8, 8, seed=1)
        verts = np.arange(g.num_vertices)
        chunks = edge_balanced_partition(verts, g.indptr, 6)
        np.testing.assert_array_equal(np.concatenate(chunks), verts)

    def test_balances_skewed_degrees(self):
        """On a star, block split puts all edge work in the hub chunk;
        edge-balanced split isolates the hub."""
        g = star_graph(99)  # hub 0 degree 99, leaves degree 1
        verts = np.arange(100)
        chunks = edge_balanced_partition(verts, g.indptr, 2)
        work = [int(g.unweighted_degrees[c].sum()) for c in chunks]
        assert max(work) <= 100  # hub alone ~99, rest ~99

    def test_subset_vertices(self):
        g = rmat(7, 4, seed=2)
        subset = np.arange(0, g.num_vertices, 3)
        chunks = edge_balanced_partition(subset, g.indptr, 4)
        np.testing.assert_array_equal(np.concatenate(chunks), subset)

    def test_empty_and_validation(self):
        g = star_graph(3)
        assert edge_balanced_partition(np.zeros(0, np.int64), g.indptr, 2) == []
        with pytest.raises(ValidationError):
            edge_balanced_partition(np.arange(2), g.indptr, 0)


class TestBackends:
    def test_serial_map(self):
        assert SerialBackend().map(lambda x: x * 2, [1, 2, 3]) == [2, 4, 6]

    def test_thread_map_order_preserved(self):
        with ThreadBackend(4) as tb:
            out = tb.map(lambda x: x * x, list(range(20)))
        assert out == [x * x for x in range(20)]

    def test_thread_pool_reused_and_closed(self):
        tb = ThreadBackend(2)
        tb.map(lambda x: x, [1, 2])
        pool = tb._pool
        tb.map(lambda x: x, [3, 4])
        assert tb._pool is pool
        tb.close()
        assert tb._pool is None
        tb.close()  # idempotent

    def test_single_item_shortcut(self):
        tb = ThreadBackend(4)
        assert tb.map(lambda x: x + 1, [41]) == [42]
        assert tb._pool is None  # no pool spun up for one item
        tb.close()

    def test_factory(self):
        assert isinstance(make_backend("serial"), SerialBackend)
        backend = make_backend("threads", 3)
        assert isinstance(backend, ThreadBackend)
        assert backend.num_workers == 3
        with pytest.raises(ValidationError):
            make_backend("mpi")
        with pytest.raises(ValidationError):
            ThreadBackend(0)


class TestAtomicEmulation:
    def test_reduce_matches_sequential(self):
        acc = ThreadLocalAccumulator(5, num_workers=3)
        acc.add(0, [0, 1, 1], [1.0, 2.0, 3.0])
        acc.add(1, [1, 4], [10.0, 4.0])
        acc.add(2, [0], [0.5])
        assert acc.reduce().tolist() == [1.5, 15.0, 0.0, 0.0, 4.0]

    def test_order_invariance(self):
        """Any assignment of updates to workers reduces identically —
        the determinism property replacing real atomics."""
        rng = np.random.default_rng(0)
        idx = rng.integers(0, 10, size=100)
        vals = rng.random(100)
        a = ThreadLocalAccumulator(10, num_workers=1)
        a.add(0, idx, vals)
        b = ThreadLocalAccumulator(10, num_workers=4)
        for w in range(4):
            sel = slice(w * 25, (w + 1) * 25)
            b.add(w, idx[sel], vals[sel])
        np.testing.assert_allclose(a.reduce(), b.reduce())

    def test_reset(self):
        acc = ThreadLocalAccumulator(3, num_workers=2)
        acc.add(0, [0], [1.0])
        acc.reset()
        assert acc.reduce().tolist() == [0.0, 0.0, 0.0]

    def test_bad_worker(self):
        acc = ThreadLocalAccumulator(3, num_workers=2)
        with pytest.raises(ValidationError):
            acc.add(2, [0], [1.0])
        with pytest.raises(ValidationError):
            ThreadLocalAccumulator(3, num_workers=0)
