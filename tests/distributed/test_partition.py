"""Unit tests for vertex partitioning and ghost discovery."""

import numpy as np
import pytest

from repro.distributed.partition import partition_vertices
from repro.graph.csr import CSRGraph
from repro.graph.generators import grid_lattice, star_graph
from repro.utils.errors import ValidationError


class TestPartition:
    def test_ownership_covers_all(self, planted):
        part = partition_vertices(planted, 4)
        merged = np.sort(np.concatenate(part.owned))
        np.testing.assert_array_equal(merged, np.arange(planted.num_vertices))
        for r, members in enumerate(part.owned):
            assert (part.owner[members] == r).all()

    def test_ghosts_are_foreign_neighbors(self, planted):
        part = partition_vertices(planted, 3)
        for r in range(3):
            ghosts = part.ghosts[r]
            assert (part.owner[ghosts] != r).all()
            # Every ghost really is adjacent to an owned vertex.
            owned_set = set(part.owned[r].tolist())
            for g in ghosts.tolist():
                nbrs, _ = planted.neighbors(g)
                assert owned_set & set(nbrs.tolist())

    def test_boundary_matches_ghosts(self, planted):
        """boundary_to[r][s] is exactly rank s's ghosts owned by r."""
        part = partition_vertices(planted, 3)
        for r in range(3):
            for s in range(3):
                if r == s:
                    assert part.boundary_to[r][s].size == 0
                    continue
                expected = part.ghosts[s][part.owner[part.ghosts[s]] == r]
                np.testing.assert_array_equal(
                    part.boundary_to[r][s], np.sort(expected)
                )

    def test_cut_edges_lattice(self):
        # A 4x4 grid split in two blocks of 8 cuts exactly 4 row edges.
        g = grid_lattice((4, 4))
        part = partition_vertices(g, 2, scheme="block")
        assert part.cut_edges(g) == 4

    def test_single_rank_no_ghosts(self, planted):
        part = partition_vertices(planted, 1)
        assert part.cut_edges(planted) == 0
        assert part.ghosts[0].size == 0
        assert part.replication_factor() == 1.0

    def test_more_ranks_than_vertices(self):
        g = star_graph(2)
        part = partition_vertices(g, 8)
        assert part.num_ranks == 8
        merged = np.sort(np.concatenate(part.owned))
        np.testing.assert_array_equal(merged, np.arange(3))

    def test_edge_balanced_on_star(self):
        """Edge-balanced split isolates the hub; block split does not."""
        g = star_graph(63)
        balanced = partition_vertices(g, 2, scheme="edge_balanced")
        work = [int(g.unweighted_degrees[m].sum()) for m in balanced.owned]
        assert max(work) < 2 * 63  # hub (63) not lumped with many leaves

    def test_validation(self, planted):
        with pytest.raises(ValidationError):
            partition_vertices(planted, 0)
        with pytest.raises(ValidationError):
            partition_vertices(planted, 2, scheme="metis")
