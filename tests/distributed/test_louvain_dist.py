"""Tests of the distributed pipeline — headlined by the bitwise-identity
property against the shared-memory driver (§5.4/§5.5's architecture-
agnosticism claim)."""

import numpy as np
import pytest

from repro.core.driver import louvain
from repro.core.modularity import modularity
from repro.distributed import distributed_louvain
from repro.distributed.cluster import NetworkModel
from repro.graph.csr import CSRGraph
from repro.graph.generators import planted_partition
from repro.utils.errors import ValidationError


def cutoff(graph):
    return max(32, graph.num_vertices // 16)


class TestIdentityWithSharedMemory:
    @pytest.mark.parametrize("num_ranks", [1, 2, 3, 7])
    def test_baseline_identical(self, planted, num_ranks):
        shared = louvain(planted, variant="baseline")
        dist = distributed_louvain(planted, num_ranks)
        np.testing.assert_array_equal(dist.communities, shared.communities)
        assert dist.modularity == pytest.approx(shared.modularity)

    @pytest.mark.parametrize("num_ranks", [2, 5])
    def test_full_pipeline_identical(self, planted, num_ranks):
        shared = louvain(planted, variant="baseline+VF+Color",
                         coloring_min_vertices=cutoff(planted))
        dist = distributed_louvain(
            planted, num_ranks, use_vf=True, use_coloring=True,
            coloring_min_vertices=cutoff(planted),
        )
        np.testing.assert_array_equal(dist.communities, shared.communities)

    def test_partition_scheme_does_not_change_output(self, planted):
        a = distributed_louvain(planted, 4, partition_scheme="block")
        b = distributed_louvain(planted, 4, partition_scheme="edge_balanced")
        np.testing.assert_array_equal(a.communities, b.communities)

    def test_iteration_histories_match(self, planted):
        # The distributed supersteps mirror run_phase's *full* sweeps, so
        # compare against a run with frontier pruning disabled (pruning
        # reaches the same partition in fewer tail iterations).
        shared = louvain(planted, variant="baseline", prune=False)
        dist = distributed_louvain(planted, 3)
        np.testing.assert_allclose(
            dist.history.modularity_trajectory(),
            shared.history.modularity_trajectory(),
            atol=1e-9,
        )

    def test_resolution_respected(self, planted):
        shared = louvain(planted, variant="baseline", resolution=2.0)
        dist = distributed_louvain(planted, 3, resolution=2.0)
        np.testing.assert_array_equal(dist.communities, shared.communities)


class TestTrafficAccounting:
    def test_single_rank_communication_free(self, planted):
        dist = distributed_louvain(planted, 1)
        assert dist.traffic.total_bytes == 0
        assert dist.communication_time() == 0.0

    def test_traffic_grows_with_ranks(self, planted):
        volumes = [
            distributed_louvain(planted, p).traffic.total_bytes
            for p in (2, 4, 8)
        ]
        assert volumes[0] < volumes[1] < volumes[2]

    def test_halo_bounded_by_boundary(self, planted):
        """Halo traffic only carries changed boundary labels: it must be
        bounded by iterations * boundary size * pair payload."""
        dist = distributed_louvain(planted, 2)
        from repro.distributed.partition import partition_vertices

        part = partition_vertices(planted, 2)
        boundary = sum(
            part.boundary_to[r][s].size for r in range(2) for s in range(2)
        )
        per_iter_cap = boundary * 2 * 8  # (id, label) int64 pairs
        iters = dist.history.total_iterations
        assert dist.traffic.bytes_by_op.get("halo", 0.0) <= per_iter_cap * iters

    def test_communication_time_model(self, planted):
        dist = distributed_louvain(planted, 4)
        fast = NetworkModel(alpha=1e-9, beta=1e-12)
        slow = NetworkModel(alpha=1e-4, beta=1e-8)
        assert dist.communication_time(slow) > dist.communication_time(fast)

    def test_partition_stats_recorded(self, planted):
        dist = distributed_louvain(planted, 4)
        assert len(dist.partition_stats) == dist.history.num_phases
        cut, repl = dist.partition_stats[0]
        assert cut > 0
        assert repl >= 1.0


class TestSparseAggregation:
    def test_identical_results(self, planted):
        dense = distributed_louvain(planted, 4, aggregation="dense")
        sparse = distributed_louvain(planted, 4, aggregation="sparse")
        np.testing.assert_array_equal(dense.communities, sparse.communities)

    def test_sparse_cheaper_on_converging_runs(self, planted):
        """Late iterations move few vertices, so pair shipping beats the
        dense vector allreduce."""
        dense = distributed_louvain(planted, 4, aggregation="dense")
        sparse = distributed_louvain(planted, 4, aggregation="sparse")
        dense_agg = dense.traffic.bytes_by_op.get("allreduce", 0.0)
        sparse_agg = sparse.traffic.bytes_by_op.get("sparse_allreduce", 0.0)
        # Exclude the scalar moved-count allreduce both schemes share.
        assert sparse_agg < dense_agg

    def test_cluster_sparse_allreduce_correct(self):
        from repro.distributed.cluster import SimCluster

        cluster = SimCluster(2)
        out = cluster.sparse_allreduce_sum(
            [np.array([0, 2, 2]), np.array([1])],
            [np.array([1.0, 2.0, 3.0]), np.array([4.0])],
            size=4,
        )
        assert out.tolist() == [1.0, 4.0, 5.0, 0.0]
        assert cluster.traffic.bytes_by_op["sparse_allreduce"] > 0

    def test_unknown_aggregation_rejected(self, planted):
        with pytest.raises(ValidationError):
            distributed_louvain(planted, 2, aggregation="rle")


class TestEdgeCases:
    def test_empty_graph(self):
        dist = distributed_louvain(CSRGraph.empty(0), 4)
        assert dist.communities.shape == (0,)

    def test_edgeless_graph(self):
        dist = distributed_louvain(CSRGraph.empty(6), 3)
        assert dist.num_communities == 6

    def test_more_ranks_than_vertices(self):
        g = planted_partition(2, 4, 0.9, 0.1, seed=0)
        shared = louvain(g, variant="baseline")
        dist = distributed_louvain(g, 32)
        np.testing.assert_array_equal(dist.communities, shared.communities)

    def test_validation(self, planted):
        with pytest.raises(ValidationError):
            distributed_louvain(planted, 0)
