"""Unit tests for the simulated message-passing substrate."""

import numpy as np
import pytest

from repro.distributed.cluster import NetworkModel, SimCluster, TrafficLog
from repro.utils.errors import ValidationError


class TestCollectives:
    def test_allreduce_sum(self):
        cluster = SimCluster(3)
        out = cluster.allreduce_sum([
            np.array([1.0, 0.0]), np.array([2.0, 5.0]), np.array([3.0, 1.0]),
        ])
        assert out.tolist() == [6.0, 6.0]
        assert cluster.traffic.bytes_by_op["allreduce"] > 0

    def test_allreduce_single_rank_free(self):
        cluster = SimCluster(1)
        cluster.allreduce_sum([np.array([1.0])])
        assert cluster.traffic.total_bytes == 0

    def test_allreduce_shape_mismatch(self):
        cluster = SimCluster(2)
        with pytest.raises(ValidationError):
            cluster.allreduce_sum([np.zeros(2), np.zeros(3)])

    def test_allreduce_wrong_rank_count(self):
        cluster = SimCluster(2)
        with pytest.raises(ValidationError):
            cluster.allreduce_sum([np.zeros(2)])

    def test_allgatherv(self):
        cluster = SimCluster(2)
        out = cluster.allgatherv([np.array([1, 2]), np.array([3])])
        assert out.tolist() == [1, 2, 3]
        assert cluster.traffic.bytes_by_op["allgatherv"] > 0

    def test_halo_exchange_accounting(self):
        cluster = SimCluster(3)
        delivered = cluster.halo_exchange({
            (0, 1): np.array([5, 7]),
            (1, 2): np.array([9]),
            (2, 2): np.array([1, 1, 1]),  # self-send: free
        })
        assert delivered[(0, 1)].tolist() == [5, 7]
        assert cluster.traffic.messages_by_op["halo"] == 2
        assert cluster.traffic.bytes_by_op["halo"] == 3 * 8

    def test_halo_rank_validation(self):
        cluster = SimCluster(2)
        with pytest.raises(ValidationError):
            cluster.halo_exchange({(0, 5): np.array([1])})

    def test_broadcast(self):
        cluster = SimCluster(4)
        value = np.arange(10)
        out = cluster.broadcast(value)
        np.testing.assert_array_equal(out, value)
        assert cluster.traffic.messages_by_op["broadcast"] == 3

    def test_barrier_counts_supersteps(self):
        cluster = SimCluster(2)
        cluster.barrier()
        cluster.barrier()
        assert cluster.traffic.supersteps == 2

    def test_bad_rank_count(self):
        with pytest.raises(ValidationError):
            SimCluster(0)


class TestNetworkModel:
    def test_alpha_beta_pricing(self):
        log = TrafficLog()
        log.charge("halo", 1000.0, 10)
        model = NetworkModel(alpha=1e-6, beta=1e-9)
        assert model.time(log) == pytest.approx(10e-6 + 1e-6)

    def test_empty_log_free(self):
        assert NetworkModel().time(TrafficLog()) == 0.0
