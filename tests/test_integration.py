"""End-to-end integration tests: the full pipeline on every stand-in.

These run every heuristic variant plus the serial baseline on all eleven
dataset stand-ins (reduced scale) and check the cross-cutting guarantees:
valid dense outputs, modularity consistency, determinism, backend/kernel
invariance, and the coarse claims the evaluation depends on.
"""

import numpy as np
import pytest

from repro.core.driver import louvain
from repro.core.louvain_serial import louvain_serial
from repro.core.modularity import modularity
from repro.datasets.catalog import dataset_names, load_dataset

SCALE = 0.25
VARIANTS = ("baseline", "baseline+VF", "baseline+VF+Color")


def _cutoff(graph):
    return max(32, graph.num_vertices // 16)


@pytest.fixture(scope="module", params=dataset_names())
def dataset(request):
    name = request.param
    return name, load_dataset(name, scale=SCALE, seed=0)


class TestFullPipelineOnAllStandins:
    @pytest.mark.parametrize("variant", VARIANTS)
    def test_variant_produces_valid_partition(self, dataset, variant):
        name, graph = dataset
        result = louvain(graph, variant=variant,
                         coloring_min_vertices=_cutoff(graph))
        comm = result.communities
        assert comm.shape == (graph.num_vertices,)
        labels = np.unique(comm)
        np.testing.assert_array_equal(labels, np.arange(labels.size))
        assert result.modularity == pytest.approx(modularity(graph, comm))
        assert result.total_iterations >= 1
        assert result.num_phases >= 1

    def test_serial_runs_everywhere(self, dataset):
        """Unlike the paper's reference binary, our serial implementation
        completes on the Europe-osm and friendster stand-ins too."""
        name, graph = dataset
        result = louvain_serial(graph)
        assert result.modularity > 0

    def test_parallel_quality_comparable_to_serial(self, dataset):
        name, graph = dataset
        serial_q = louvain_serial(graph).modularity
        parallel_q = louvain(graph, variant="baseline+VF+Color",
                             coloring_min_vertices=_cutoff(graph)).modularity
        assert parallel_q >= serial_q - 0.08, name

    def test_determinism(self, dataset):
        name, graph = dataset
        r1 = louvain(graph, variant="baseline+VF+Color",
                     coloring_min_vertices=_cutoff(graph))
        r2 = louvain(graph, variant="baseline+VF+Color",
                     coloring_min_vertices=_cutoff(graph))
        np.testing.assert_array_equal(r1.communities, r2.communities)

    def test_dendrogram_consistency(self, dataset):
        """Every dendrogram level is a valid partition whose modularity is
        non-decreasing toward the final level (phases only improve Q)."""
        name, graph = dataset
        result = louvain(graph, variant="baseline+VF",
                         coloring_min_vertices=_cutoff(graph))
        d = result.dendrogram
        previous = -1.0
        start = 2 if (result.vf and result.vf.num_merged) else 1
        for level in range(start, d.num_levels + 1):
            q = modularity(graph, d.flatten(level))
            assert q >= previous - 1e-9
            previous = q
        np.testing.assert_array_equal(d.flatten(), result.communities)


class TestBackendKernelInvariance:
    """§5.4 stability across the implementation axes, on real workloads."""

    @pytest.mark.parametrize("name", ["CNR", "MG1", "Europe-osm"])
    def test_threads_match_serial_backend(self, name):
        graph = load_dataset(name, scale=SCALE, seed=0)
        a = louvain(graph, variant="baseline+VF+Color",
                    coloring_min_vertices=_cutoff(graph), backend="serial")
        b = louvain(graph, variant="baseline+VF+Color",
                    coloring_min_vertices=_cutoff(graph),
                    backend="threads", num_threads=3)
        np.testing.assert_array_equal(a.communities, b.communities)

    @pytest.mark.parametrize("name", ["Channel", "coPapersDBLP"])
    def test_reference_kernel_matches_vectorized(self, name):
        graph = load_dataset(name, scale=SCALE, seed=0)
        a = louvain(graph, variant="baseline",
                    coloring_min_vertices=_cutoff(graph))
        b = louvain(graph, variant="baseline", kernel="reference",
                    coloring_min_vertices=_cutoff(graph))
        np.testing.assert_array_equal(a.communities, b.communities)


class TestFileRoundTripPipeline:
    def test_detect_from_file_matches_in_memory(self, tmp_path):
        from repro.graph.io import read_edge_list, write_edge_list

        graph = load_dataset("MG1", scale=SCALE, seed=0)
        path = tmp_path / "mg1.txt"
        write_edge_list(graph, path)
        reloaded = read_edge_list(path)
        a = louvain(graph, variant="baseline")
        b = louvain(reloaded, variant="baseline")
        np.testing.assert_array_equal(a.communities, b.communities)
