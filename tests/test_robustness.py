"""Robustness / failure-injection tests: numerically extreme and
adversarially shaped inputs must neither crash nor produce NaNs, and the
core invariants must keep holding."""

import numpy as np
import pytest

from repro.core.driver import louvain
from repro.core.louvain_serial import louvain_serial
from repro.core.modularity import modularity
from repro.graph.csr import CSRGraph
from repro.graph.generators import star_graph
from repro.utils.errors import GraphStructureError


def assert_sane(graph, result):
    assert np.isfinite(result.modularity)
    assert result.modularity <= 1.0 + 1e-12
    comm = result.communities
    assert comm.shape == (graph.num_vertices,)
    assert result.modularity == pytest.approx(modularity(graph, comm))


class TestExtremeWeights:
    def test_huge_weights(self):
        g = CSRGraph.from_edges(
            6,
            [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3)],
            [1e12, 1e12, 1e12, 1e12, 1e12, 1e12, 1.0],
        )
        assert_sane(g, louvain(g))
        assert louvain(g).num_communities == 2

    def test_tiny_weights(self):
        g = CSRGraph.from_edges(
            6,
            [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3)],
            [1e-12] * 6 + [1e-14],
        )
        assert_sane(g, louvain(g))

    def test_mixed_scales(self):
        """13 orders of magnitude between weights in one graph."""
        g = CSRGraph.from_edges(
            4, [(0, 1), (1, 2), (2, 3)], [1e-6, 1.0, 1e7]
        )
        assert_sane(g, louvain(g))
        assert_sane(g, louvain_serial(g))

    def test_single_heavy_self_loop(self):
        g = CSRGraph.from_edges(3, [(0, 0), (0, 1), (1, 2)],
                                [1e9, 1.0, 1.0])
        assert_sane(g, louvain(g))


class TestAdversarialShapes:
    def test_all_self_loops(self):
        g = CSRGraph.from_edges(4, [(i, i) for i in range(4)])
        result = louvain(g)
        assert result.num_communities == 4  # nothing to merge
        assert_sane(g, result)

    def test_star_of_stars(self):
        """Two-level hub hierarchy: center 0, hubs 1..4, leaves below."""
        edges = [(0, h) for h in range(1, 5)]
        nxt = 5
        for h in range(1, 5):
            for _ in range(6):
                edges.append((h, nxt))
                nxt += 1
        g = CSRGraph.from_edges(nxt, edges)
        for variant in ("baseline", "baseline+VF"):
            result = louvain(g, variant=variant)
            assert_sane(g, result)

    def test_complete_bipartite(self):
        """K_{5,5}: no community structure at all (Q <= 0 territory)."""
        edges = [(i, 5 + j) for i in range(5) for j in range(5)]
        g = CSRGraph.from_edges(10, edges)
        result = louvain(g)
        assert_sane(g, result)

    def test_disconnected_with_isolates(self):
        g = CSRGraph.from_edges(10, [(0, 1), (1, 2), (0, 2)])
        result = louvain(g, variant="baseline+VF")
        assert_sane(g, result)
        # The triangle merges; the 7 isolates stay singlets.
        assert result.num_communities == 8

    def test_long_path_all_variants(self):
        from repro.graph.generators import path_graph

        g = path_graph(400)
        for variant in ("baseline", "baseline+VF", "baseline+VF+Color"):
            result = louvain(g, variant=variant, coloring_min_vertices=32)
            assert_sane(g, result)
            assert result.modularity > 0.8  # paths are highly modular

    def test_two_vertices_one_edge(self):
        g = CSRGraph.from_edges(2, [(0, 1)])
        result = louvain(g)
        assert result.num_communities == 1
        assert_sane(g, result)

    def test_single_vertex_with_loop(self):
        g = CSRGraph.from_edges(1, [(0, 0)])
        result = louvain(g)
        assert result.num_communities == 1
        assert result.modularity == pytest.approx(0.0)


class TestMalformedRejected:
    def test_nan_weight_rejected(self):
        with pytest.raises(GraphStructureError):
            CSRGraph.from_edges(2, [(0, 1)], [float("nan")])

    def test_inf_weight_rejected(self):
        # inf passes a bare `> 0` check, after which total_weight is inf
        # and every modularity NaN — validation rejects it up front.
        for bad in (float("inf"), float("-inf")):
            with pytest.raises(GraphStructureError):
                CSRGraph.from_edges(2, [(0, 1)], [bad])

    def test_negative_rejected_everywhere(self):
        from repro.dynamic import DynamicGraph

        with pytest.raises(GraphStructureError):
            CSRGraph.from_edges(2, [(0, 1)], [-1.0])
        dyn = DynamicGraph(2)
        with pytest.raises(GraphStructureError):
            dyn.add_edge(0, 1, -2.0)
