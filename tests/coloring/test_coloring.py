"""Unit tests for the coloring substrate."""

import numpy as np
import pytest

from repro.coloring.balanced import balance_colors
from repro.coloring.distance_k import distance_k_coloring, power_graph
from repro.coloring.greedy import greedy_coloring, vertex_order
from repro.coloring.jones_plassmann import jones_plassmann_coloring
from repro.coloring.validate import (
    color_class_sizes,
    color_set_partition,
    color_size_rsd,
    is_valid_coloring,
    num_colors,
)
from repro.graph.csr import CSRGraph
from repro.graph.generators import (
    complete_graph,
    cycle_graph,
    grid_lattice,
    path_graph,
    planted_partition,
    star_graph,
)
from repro.utils.errors import ValidationError


ALL_ORDERS = ["natural", "largest_first", "smallest_last", "random"]


class TestGreedy:
    @pytest.mark.parametrize("order", ALL_ORDERS)
    def test_valid_on_karate(self, karate, order):
        colors = greedy_coloring(karate, order=order, seed=0)
        assert is_valid_coloring(karate, colors)

    @pytest.mark.parametrize("order", ALL_ORDERS)
    def test_valid_on_planted(self, planted, order):
        colors = greedy_coloring(planted, order=order, seed=0)
        assert is_valid_coloring(planted, colors)

    def test_complete_graph_needs_n_colors(self):
        g = complete_graph(6)
        assert num_colors(greedy_coloring(g)) == 6

    def test_path_two_colors(self):
        assert num_colors(greedy_coloring(path_graph(10))) == 2

    def test_even_cycle_two_odd_three(self):
        assert num_colors(greedy_coloring(cycle_graph(8))) <= 3
        colors = greedy_coloring(cycle_graph(9))
        assert is_valid_coloring(cycle_graph(9), colors)

    def test_self_loops_ignored(self):
        g = CSRGraph.from_edges(2, [(0, 0), (0, 1)])
        colors = greedy_coloring(g)
        assert is_valid_coloring(g, colors)
        assert colors[0] != colors[1]

    def test_smallest_last_bounded_by_degeneracy_plus_one(self):
        # A 2-D grid has degeneracy 2, so smallest-last uses <= 3 colors.
        g = grid_lattice((8, 8))
        assert num_colors(greedy_coloring(g, order="smallest_last")) <= 3

    def test_deterministic_given_seed(self, karate):
        c1 = greedy_coloring(karate, order="random", seed=9)
        c2 = greedy_coloring(karate, order="random", seed=9)
        np.testing.assert_array_equal(c1, c2)

    def test_unknown_order_rejected(self, karate):
        with pytest.raises(ValidationError):
            vertex_order(karate, "bogus")

    def test_empty_graph(self):
        assert greedy_coloring(CSRGraph.empty(0)).shape == (0,)

    def test_isolated_vertices_color_zero(self):
        g = CSRGraph.from_edges(4, [(0, 1)])
        colors = greedy_coloring(g, order="natural")
        assert colors[2] == 0 and colors[3] == 0


class TestJonesPlassmann:
    def test_valid_on_karate(self, karate):
        colors = jones_plassmann_coloring(karate, seed=1)
        assert is_valid_coloring(karate, colors)

    def test_valid_on_planted(self, planted):
        colors = jones_plassmann_coloring(planted, seed=1)
        assert is_valid_coloring(planted, colors)

    def test_deterministic_given_seed(self, planted):
        c1 = jones_plassmann_coloring(planted, seed=5)
        c2 = jones_plassmann_coloring(planted, seed=5)
        np.testing.assert_array_equal(c1, c2)

    def test_work_log_rounds(self, karate):
        log: list = []
        jones_plassmann_coloring(karate, seed=0, work_log=log)
        assert len(log) >= 1
        # Every vertex is colored exactly once across rounds.
        assert sum(c for c, _ in log) == karate.num_vertices

    def test_complete_graph(self):
        g = complete_graph(5)
        colors = jones_plassmann_coloring(g, seed=0)
        assert num_colors(colors) == 5

    def test_empty_graph(self):
        assert jones_plassmann_coloring(CSRGraph.empty(0)).shape == (0,)

    def test_edgeless_graph_single_round(self):
        g = CSRGraph.empty(10)
        colors = jones_plassmann_coloring(g, seed=0)
        assert (colors == 0).all()


class TestDistanceK:
    def test_power_graph_path(self):
        # Path 0-1-2-3: square adds (0,2),(1,3); distance<=2.
        p2 = power_graph(path_graph(4), 2)
        assert p2.has_edge(0, 2)
        assert p2.has_edge(1, 3)
        assert not p2.has_edge(0, 3)

    def test_distance2_coloring_valid(self, karate):
        colors = distance_k_coloring(karate, 2)
        assert is_valid_coloring(karate, colors, k=2)
        # Distance-2 validity is strictly stronger than distance-1.
        assert is_valid_coloring(karate, colors, k=1)

    def test_distance2_star_needs_leafcount_colors(self):
        g = star_graph(6)
        colors = distance_k_coloring(g, 2)
        # All leaves are pairwise at distance 2 -> 7 distinct colors.
        assert num_colors(colors) == 7

    def test_k1_equals_greedy(self, karate):
        np.testing.assert_array_equal(
            distance_k_coloring(karate, 1), greedy_coloring(karate)
        )

    def test_bad_k(self, karate):
        with pytest.raises(ValidationError):
            power_graph(karate, 0)


class TestBalanced:
    def test_stays_valid(self, planted):
        colors = greedy_coloring(planted)
        balanced = balance_colors(planted, colors)
        assert is_valid_coloring(planted, balanced)

    def test_rsd_does_not_increase(self, planted):
        colors = greedy_coloring(planted)
        balanced = balance_colors(planted, colors)
        assert color_size_rsd(balanced) <= color_size_rsd(colors) + 1e-12

    def test_reduces_skew_on_star_with_extra_colors(self):
        # Greedy on a star: hub one color, all 30 leaves the other -> very
        # skewed.  Leaves are all adjacent to the hub, so rebalancing needs
        # extra classes; leaves are mutually non-adjacent and spread freely.
        g = star_graph(30)
        colors = greedy_coloring(g, order="natural")
        assert color_size_rsd(colors) > 0.9
        balanced = balance_colors(g, colors, max_colors=4)
        assert color_size_rsd(balanced) < color_size_rsd(colors)
        assert is_valid_coloring(g, balanced)

    def test_max_colors_below_input_rejected(self, karate):
        colors = greedy_coloring(karate)
        with pytest.raises(ValidationError):
            balance_colors(karate, colors, max_colors=1)

    def test_shape_validation(self, karate):
        with pytest.raises(ValidationError):
            balance_colors(karate, np.zeros(3, dtype=np.int64))

    def test_single_color_noop(self):
        g = CSRGraph.empty(5)
        colors = np.zeros(5, dtype=np.int64)
        np.testing.assert_array_equal(balance_colors(g, colors), colors)


class TestValidate:
    def test_invalid_coloring_detected(self, triangle):
        assert not is_valid_coloring(triangle, np.array([0, 0, 1]))
        assert is_valid_coloring(triangle, np.array([0, 1, 2]))

    def test_class_sizes_and_count(self):
        colors = np.array([0, 1, 0, 2, 1, 0])
        assert color_class_sizes(colors).tolist() == [3, 2, 1]
        assert num_colors(colors) == 3

    def test_rsd_uniform_zero(self):
        assert color_size_rsd(np.array([0, 1, 2, 0, 1, 2])) == 0.0

    def test_partition_sorted_and_complete(self, karate):
        colors = greedy_coloring(karate)
        sets = color_set_partition(colors)
        assert len(sets) == num_colors(colors)
        all_vertices = np.sort(np.concatenate(sets))
        np.testing.assert_array_equal(all_vertices, np.arange(34))
        for s in sets:
            assert (np.diff(s) > 0).all()  # sorted, unique
        for color, s in enumerate(sets):
            assert (colors[s] == color).all()

    def test_partition_empty(self):
        assert color_set_partition(np.zeros(0, dtype=np.int64)) == []

    def test_negative_colors_rejected(self, triangle):
        with pytest.raises(ValidationError):
            is_valid_coloring(triangle, np.array([-1, 0, 1]))

    def test_wrong_shape_rejected(self, triangle):
        with pytest.raises(ValidationError):
            is_valid_coloring(triangle, np.array([0, 1]))
