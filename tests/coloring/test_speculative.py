"""Unit tests for the speculative (conflict-resolution) colorer."""

import numpy as np
import pytest

from repro.coloring.speculative import speculative_coloring
from repro.coloring.validate import is_valid_coloring, num_colors
from repro.graph.csr import CSRGraph
from repro.graph.generators import complete_graph, planted_partition, rmat


class TestSpeculativeColoring:
    def test_valid_on_karate(self, karate):
        colors = speculative_coloring(karate, seed=0)
        assert is_valid_coloring(karate, colors)

    @pytest.mark.parametrize("seed", range(4))
    def test_valid_on_random_graphs(self, seed):
        g = rmat(8, 6, seed=seed)
        colors = speculative_coloring(g, seed=seed)
        assert is_valid_coloring(g, colors)

    def test_deterministic(self, planted):
        c1 = speculative_coloring(planted, seed=9)
        c2 = speculative_coloring(planted, seed=9)
        np.testing.assert_array_equal(c1, c2)

    def test_complete_graph(self):
        g = complete_graph(6)
        colors = speculative_coloring(g, seed=1)
        assert is_valid_coloring(g, colors)
        assert num_colors(colors) == 6

    def test_empty_and_edgeless(self):
        assert speculative_coloring(CSRGraph.empty(0)).shape == (0,)
        colors = speculative_coloring(CSRGraph.empty(5), seed=0)
        assert (colors == 0).all()

    def test_work_log_first_round_covers_all(self, planted):
        log: list = []
        speculative_coloring(planted, seed=0, work_log=log)
        # Round 1 speculates on every vertex; later rounds only conflicts.
        assert log[0][0] == planted.num_vertices
        for count, _edges in log[1:]:
            assert count < planted.num_vertices

    def test_conflicts_shrink(self, planted):
        log: list = []
        speculative_coloring(planted, seed=3, work_log=log)
        counts = [c for c, _ in log]
        assert counts == sorted(counts, reverse=True) or len(counts) <= 2

    def test_self_loops_ignored(self):
        g = CSRGraph.from_edges(3, [(0, 0), (0, 1), (1, 2)])
        colors = speculative_coloring(g, seed=0)
        assert is_valid_coloring(g, colors)

    def test_pipeline_integration(self, planted):
        from repro.core.driver import louvain

        result = louvain(
            planted, variant="baseline+VF+Color",
            coloring_min_vertices=16, colorer="speculative",
        )
        assert result.modularity > 0.5
        assert any(p.colored for p in result.history.phases)

    def test_pipeline_greedy_colorer(self, planted):
        from repro.core.driver import louvain

        result = louvain(
            planted, variant="baseline+VF+Color",
            coloring_min_vertices=16, colorer="greedy",
        )
        assert result.modularity > 0.5

    def test_unknown_colorer_rejected(self):
        from repro.core.config import LouvainConfig
        from repro.utils.errors import ValidationError

        with pytest.raises(ValidationError):
            LouvainConfig(colorer="rainbow")
