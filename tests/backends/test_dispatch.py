"""Backend registry, resolution, and the generic shim implementations.

The NumPy backend's bitwise-identity claim is carried by the rest of the
suite (every test runs through ``numpy_ops``); this module covers the
dispatch machinery itself plus the *generic* host-round-trip shims —
exercised here against the NumPy namespace wrapped in the base class, so
the code path accelerator backends inherit is tested without any
accelerator installed.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.backends import (
    ArrayOps,
    available_backends,
    backend_default,
    get_ops,
    numpy_ops,
)
from repro.backends import dispatch
from repro.utils.errors import ValidationError


class TestResolution:
    def test_default_is_numpy(self, monkeypatch):
        monkeypatch.delenv(dispatch.ENV_VAR, raising=False)
        assert backend_default() == "numpy"
        assert get_ops() is numpy_ops

    def test_env_var_selects_backend(self, monkeypatch):
        monkeypatch.setenv(dispatch.ENV_VAR, "NumPy")
        assert backend_default() == "numpy"
        monkeypatch.setenv(dispatch.ENV_VAR, "array_api_strict")
        assert backend_default() == "array-api-strict"

    def test_explicit_name_normalized(self):
        assert get_ops("NUMPY") is numpy_ops
        assert get_ops("numpy") is numpy_ops

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValidationError, match="unknown array backend"):
            get_ops("jax")

    def test_uninstalled_backend_names_available(self):
        missing = [n for n in ("cupy", "torch", "array-api-strict")
                   if n not in available_backends()]
        if not missing:
            pytest.skip("every optional backend is installed here")
        with pytest.raises(ValidationError, match="not installed"):
            get_ops(missing[0])

    def test_available_backends_always_has_numpy(self):
        names = available_backends()
        assert names[0] == "numpy"
        assert set(names) <= set(dispatch.BACKEND_NAMES)

    def test_repr_and_is_numpy(self):
        assert repr(numpy_ops) == "ArrayOps('numpy')"
        assert numpy_ops.is_numpy
        assert not ArrayOps("array-api-strict", np).is_numpy

    def test_getattr_delegates_to_namespace(self):
        assert numpy_ops.searchsorted is np.searchsorted
        assert numpy_ops.cumsum is np.cumsum
        with pytest.raises(AttributeError):
            numpy_ops.not_an_array_function


@pytest.fixture
def generic_ops():
    """The *base-class* shims running over the NumPy namespace."""
    return ArrayOps("generic", np)


class TestGenericShims:
    """Generic host-round-trip shims must agree with the NumPy bindings."""

    def test_bincount(self, generic_ops):
        x = np.array([0, 2, 2, 5, 1], dtype=np.int64)
        w = np.array([1.0, 0.5, 0.25, 2.0, 3.0])
        assert np.array_equal(generic_ops.bincount(x, minlength=8),
                              numpy_ops.bincount(x, minlength=8))
        assert np.array_equal(generic_ops.bincount(x, weights=w),
                              numpy_ops.bincount(x, weights=w))

    def test_reduceats(self, generic_ops):
        vals = np.array([3.0, 1.0, 4.0, 1.0, 5.0, 9.0])
        starts = np.array([0, 2, 5], dtype=np.int64)
        for op in ("add_reduceat", "maximum_reduceat", "minimum_reduceat"):
            assert np.array_equal(getattr(generic_ops, op)(vals, starts),
                                  getattr(numpy_ops, op)(vals, starts))

    def test_scatter_add_accumulates_duplicates(self, generic_ops):
        out = np.zeros(4)
        generic_ops.scatter_add(out, np.array([1, 1, 3]),
                                np.array([2.0, 3.0, 7.0]))
        assert np.array_equal(out, [0.0, 5.0, 0.0, 7.0])
        generic_ops.scatter_sub(out, np.array([1, 1]), np.array([1.0, 1.0]))
        assert np.array_equal(out, [0.0, 3.0, 0.0, 7.0])

    def test_put_and_masked_fill(self, generic_ops):
        out = np.arange(5, dtype=np.float64)
        generic_ops.put(out, np.array([0, 4]), np.array([-1.0, -2.0]))
        assert np.array_equal(out, [-1.0, 1.0, 2.0, 3.0, -2.0])
        generic_ops.masked_fill(out, out < 0, 9.0)
        assert np.array_equal(out, [9.0, 1.0, 2.0, 3.0, 9.0])

    def test_argsort_stable_preserves_tie_order(self, generic_ops):
        keys = np.array([1, 0, 1, 0, 1], dtype=np.int64)
        assert np.array_equal(generic_ops.argsort_stable(keys),
                              numpy_ops.argsort_stable(keys))

    def test_run_boundaries_matches_utils(self, generic_ops):
        for keys in ([], [7], [1, 1, 2, 2, 2, 5], [3, 3, 3]):
            arr = np.asarray(keys, dtype=np.int64)
            got = generic_ops.run_boundaries(arr)
            want = numpy_ops.run_boundaries(arr)
            assert np.array_equal(got, want), keys
            assert got.dtype == np.int64

    def test_flatnonzero(self, generic_ops):
        mask = np.array([True, False, True, True, False])
        assert np.array_equal(generic_ops.flatnonzero(mask),
                              numpy_ops.flatnonzero(mask))


class TestGenericBackendEndToEnd:
    """Full pipeline through the base-class shims: results must be
    bitwise identical to the NumPy backend (the generic shims compute on
    the host, so there is no rounding excuse)."""

    @pytest.fixture
    def registered_generic(self):
        name = "generic-test"
        dispatch._CACHE[name] = ArrayOps(name, np)
        yield name
        dispatch._CACHE.pop(name, None)

    def test_louvain_matches_numpy_backend(self, registered_generic):
        from repro import LouvainConfig, louvain
        from repro.graph.generators import karate_club, planted_partition

        for g in (karate_club(), planted_partition(3, 8, 0.6, 0.05, seed=4)):
            base = louvain(g, LouvainConfig(array_backend="numpy"))
            alt = louvain(g, LouvainConfig(array_backend=registered_generic))
            assert np.array_equal(alt.communities, base.communities)
            assert alt.modularity == base.modularity
            assert alt.total_iterations == base.total_iterations

    def test_louvain_batch_matches_numpy_backend(self, registered_generic):
        from repro import LouvainConfig, louvain_batch
        from repro.graph.generators import two_cliques_bridge

        gs = [two_cliques_bridge(3), two_cliques_bridge(5)]
        base = louvain_batch(gs, LouvainConfig(array_backend="numpy"))
        alt = louvain_batch(gs, LouvainConfig(array_backend=registered_generic))
        for b, a in zip(base, alt):
            assert np.array_equal(a.communities, b.communities)
            assert a.modularity == b.modularity
