"""Kernel equivalence under ``array-api-strict`` (namespace-leak catcher).

``array_api_strict`` implements *only* the array-API standard: any kernel
call that leaks a NumPy-ism past the :class:`~repro.backends.ArrayOps`
shims raises immediately.  The whole module skips cleanly when the
package is absent — it is an optional dependency everywhere, including
CI, where a dedicated job installs it to run exactly this directory.
"""

from __future__ import annotations

import numpy as np
import pytest

pytest.importorskip("array_api_strict")

from repro import LouvainConfig, louvain, louvain_batch, modularity
from repro.backends import get_ops
from repro.core.sweep import compute_targets_vectorized, init_state
from repro.core.workspace import SweepWorkspace
from repro.graph.generators import (
    karate_club,
    planted_partition,
    two_cliques_bridge,
)

BACKEND = "array-api-strict"

GRAPHS = [
    karate_club(),
    two_cliques_bridge(4),
    planted_partition(3, 7, 0.7, 0.08, seed=0),
]


class TestStrictBackend:
    def test_resolves(self):
        ops = get_ops(BACKEND)
        assert ops.name == BACKEND
        assert not ops.is_numpy

    def test_single_sweep_matches_numpy(self):
        g = karate_club()
        state = init_state(g)
        verts = np.arange(g.num_vertices, dtype=np.int64)
        base = compute_targets_vectorized(
            g, state, verts, workspace=SweepWorkspace(g))
        strict = compute_targets_vectorized(
            g, state, verts,
            workspace=SweepWorkspace(g, array_backend=BACKEND))
        assert np.array_equal(base, strict)

    @pytest.mark.parametrize("idx", range(len(GRAPHS)))
    def test_louvain_matches_numpy(self, idx):
        g = GRAPHS[idx]
        base = louvain(g, LouvainConfig(array_backend="numpy"))
        strict = louvain(g, LouvainConfig(array_backend=BACKEND))
        assert np.array_equal(strict.communities, base.communities)
        assert strict.modularity == base.modularity
        assert strict.total_iterations == base.total_iterations

    def test_louvain_batch_matches_numpy(self):
        base = louvain_batch(GRAPHS, LouvainConfig(array_backend="numpy"))
        strict = louvain_batch(GRAPHS, LouvainConfig(array_backend=BACKEND))
        for b, s in zip(base, strict):
            assert np.array_equal(s.communities, b.communities)
            assert s.modularity == b.modularity

    def test_partitions_remain_exact(self):
        g = GRAPHS[2]
        result = louvain(g, LouvainConfig(array_backend=BACKEND))
        assert result.modularity == pytest.approx(
            modularity(g, result.communities), abs=1e-12)
