"""Unit tests for graph construction (GraphBuilder and converters)."""

import numpy as np
import pytest

from repro.graph.build import GraphBuilder, from_edge_array
from repro.graph.csr import CSRGraph
from repro.utils.errors import GraphStructureError


class TestGraphBuilder:
    def test_incremental_build(self):
        g = (
            GraphBuilder(4)
            .add_edge(0, 1)
            .add_edge(1, 2, 2.5)
            .add_edge(3, 3)
            .build()
        )
        assert g.num_vertices == 4
        assert g.num_edges == 3
        assert g.edge_weight(1, 2) == 2.5
        assert g.self_loop_weight(3) == 1.0

    def test_auto_vertex_count(self):
        g = GraphBuilder().add_edge(2, 7).build()
        assert g.num_vertices == 8

    def test_empty_build(self):
        assert GraphBuilder(3).build().num_edges == 0
        assert GraphBuilder().build().num_vertices == 0

    def test_add_edges_bulk(self):
        g = GraphBuilder(3).add_edges([(0, 1), (1, 2)], [1.0, 4.0]).build()
        assert g.edge_weight(1, 2) == 4.0

    def test_add_edges_weights_length_mismatch(self):
        with pytest.raises(GraphStructureError):
            GraphBuilder(3).add_edges([(0, 1)], [1.0, 2.0])

    def test_duplicate_rejected_then_merged(self):
        b = GraphBuilder(2).add_edge(0, 1).add_edge(1, 0, 2.0)
        with pytest.raises(GraphStructureError):
            b.build()
        assert b.build(combine="sum").edge_weight(0, 1) == 3.0

    def test_negative_inputs_rejected_eagerly(self):
        b = GraphBuilder(2)
        with pytest.raises(GraphStructureError):
            b.add_edge(-1, 0)
        with pytest.raises(GraphStructureError):
            b.add_edge(0, 1, 0.0)

    def test_buffered_count_and_repr(self):
        b = GraphBuilder(5).add_edge(0, 1)
        assert b.buffered_edges == 1
        assert "buffered_edges=1" in repr(b)

    def test_builder_matches_from_edges(self):
        edges = [(0, 1), (1, 2), (2, 3), (0, 3), (1, 1)]
        weights = [1.0, 2.0, 3.0, 4.0, 5.0]
        g1 = GraphBuilder(4).add_edges(edges, weights).build()
        g2 = CSRGraph.from_edges(4, edges, weights)
        assert g1 == g2


class TestFromEdgeArray:
    def test_empty_edge_list(self):
        g = from_edge_array(3, np.zeros((0, 2), dtype=np.int64))
        assert g.num_vertices == 3
        assert g.num_edges == 0

    def test_self_loops_kept_single(self):
        g = from_edge_array(2, [(0, 0), (0, 1)], [3.0, 1.0])
        assert g.self_loop_weight(0) == 3.0
        assert g.degrees.tolist() == [4.0, 1.0]

    def test_duplicate_self_loop_merge(self):
        g = from_edge_array(1, [(0, 0), (0, 0)], [1.0, 2.0], combine="sum")
        assert g.self_loop_weight(0) == 3.0

    def test_duplicate_same_orientation(self):
        with pytest.raises(GraphStructureError):
            from_edge_array(2, [(0, 1), (0, 1)])

    def test_large_random_consistency(self):
        rng = np.random.default_rng(7)
        n = 200
        edges = rng.integers(0, n, size=(2000, 2))
        g = from_edge_array(n, edges, combine="sum")
        # Total weight equals number of sampled pairs (each weight 1, merged
        # by summing; self-loop halving matches the degree convention).
        loops = edges[:, 0] == edges[:, 1]
        expected_m = (2000 - loops.sum()) + loops.sum() / 2.0
        assert g.total_weight == pytest.approx(expected_m)
