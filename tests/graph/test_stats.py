"""Unit tests for graph statistics (Table 1 columns)."""

import numpy as np
import pytest

from repro.graph.csr import CSRGraph
from repro.graph.generators import grid_lattice, star_graph
from repro.graph.stats import compute_stats, degree_rsd, single_degree_count


class TestDegreeRSD:
    def test_uniform_degrees_zero_rsd(self, triangle):
        assert degree_rsd(triangle) == 0.0

    def test_star_high_rsd(self):
        g = star_graph(20)
        # Degrees: one 20, twenty 1s — RSD well above 1.
        deg = g.unweighted_degrees.astype(float)
        assert degree_rsd(g) == pytest.approx(deg.std() / deg.mean())
        assert degree_rsd(g) > 1.0

    def test_empty_graph(self):
        assert degree_rsd(CSRGraph.empty(3)) == 0.0
        assert degree_rsd(CSRGraph.empty(0)) == 0.0


class TestSingleDegree:
    def test_star_leaves(self):
        assert single_degree_count(star_graph(6)) == 6

    def test_grid_has_none(self):
        assert single_degree_count(grid_lattice((4, 4))) == 0

    def test_self_loop_only_not_single_degree(self):
        g = CSRGraph.from_edges(2, [(0, 0), (0, 1)])
        # Vertex 1 is single-degree; vertex 0 is not (loop + edge).
        assert single_degree_count(g) == 1


class TestMemoryAccounting:
    def test_nbytes_linear_in_input(self):
        """§5.6: storage is O(m + n) — doubling edges ~doubles bytes."""
        from repro.graph.generators import grid_lattice

        small = grid_lattice((10, 10))
        large = grid_lattice((10, 20))
        ratio = large.nbytes / small.nbytes
        assert 1.5 < ratio < 2.5

    def test_nbytes_matches_arrays(self, karate):
        expected = (karate.indptr.nbytes + karate.indices.nbytes
                    + karate.weights.nbytes)
        assert karate.nbytes == expected

    def test_pipeline_estimate(self, karate):
        from repro.graph.stats import pipeline_memory_estimate

        est = pipeline_memory_estimate(karate)
        assert est["total"] == sum(
            v for k, v in est.items() if k != "total"
        )
        assert est["graph"] == karate.nbytes
        # O(m + n): a 34-vertex, 78-edge graph stays in the kilobytes.
        assert est["total"] < 10_000


class TestComputeStats:
    def test_karate_row(self, karate):
        s = compute_stats(karate)
        assert s.num_vertices == 34
        assert s.num_edges == 78
        assert s.max_degree == 17
        assert s.avg_degree == pytest.approx(2 * 78 / 34)
        assert s.num_self_loops == 0
        assert s.total_weight == 78.0

    def test_table1_row_formatting(self, karate):
        row = compute_stats(karate).table1_row("karate")
        assert "karate" in row
        assert "34" in row and "78" in row

    def test_empty(self):
        s = compute_stats(CSRGraph.empty(0))
        assert s.num_vertices == 0
        assert s.max_degree == 0
        assert s.avg_degree == 0.0
