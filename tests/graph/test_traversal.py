"""Unit tests for BFS / connected components / eccentricity."""

import numpy as np
import pytest

from repro.graph.csr import CSRGraph
from repro.graph.generators import (
    cycle_graph,
    grid_lattice,
    karate_club,
    path_graph,
    two_cliques_bridge,
)
from repro.graph.traversal import (
    bfs_levels,
    connected_components,
    eccentricity_estimate,
    is_connected,
)
from repro.utils.errors import ValidationError


class TestBFS:
    def test_path_distances(self):
        levels = bfs_levels(path_graph(5), 0)
        assert levels.tolist() == [0, 1, 2, 3, 4]

    def test_middle_source(self):
        levels = bfs_levels(path_graph(5), 2)
        assert levels.tolist() == [2, 1, 0, 1, 2]

    def test_unreachable_minus_one(self):
        g = CSRGraph.from_edges(4, [(0, 1)])
        levels = bfs_levels(g, 0)
        assert levels.tolist() == [0, 1, -1, -1]

    def test_cycle(self):
        levels = bfs_levels(cycle_graph(6), 0)
        assert levels.tolist() == [0, 1, 2, 3, 2, 1]

    def test_matches_networkx(self, karate):
        import networkx as nx

        expected = nx.single_source_shortest_path_length(
            karate.to_networkx(), 0
        )
        levels = bfs_levels(karate, 0)
        for v, d in expected.items():
            assert levels[v] == d

    def test_self_loop_harmless(self):
        g = CSRGraph.from_edges(2, [(0, 0), (0, 1)])
        assert bfs_levels(g, 0).tolist() == [0, 1]

    def test_bad_source(self, karate):
        with pytest.raises(ValidationError):
            bfs_levels(karate, 99)


class TestComponents:
    def test_connected_graph(self, karate):
        labels, count = connected_components(karate)
        assert count == 1
        assert (labels == 0).all()
        assert is_connected(karate)

    def test_two_components(self):
        g = CSRGraph.from_edges(5, [(0, 1), (2, 3)])
        labels, count = connected_components(g)
        assert count == 3  # {0,1}, {2,3}, {4}
        assert labels[0] == labels[1]
        assert labels[2] == labels[3]
        assert labels[4] not in (labels[0], labels[2])
        assert not is_connected(g)

    def test_labels_ordered_by_smallest_member(self):
        g = CSRGraph.from_edges(4, [(2, 3)])
        labels, count = connected_components(g)
        assert labels.tolist() == [0, 1, 2, 2]

    def test_empty(self):
        labels, count = connected_components(CSRGraph.empty(0))
        assert count == 0
        assert is_connected(CSRGraph.empty(0))

    def test_communities_respect_components(self):
        """Detected communities never straddle components."""
        from repro.core.driver import louvain

        g = CSRGraph.from_edges(
            8,
            [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (6, 7)],
        )
        comp, _ = connected_components(g)
        comm = louvain(g).communities
        for c in np.unique(comm):
            members = np.flatnonzero(comm == c)
            assert len(set(comp[members].tolist())) == 1


class TestEccentricity:
    def test_path_diameter_exact(self):
        assert eccentricity_estimate(path_graph(9)) == 8

    def test_clique(self):
        assert eccentricity_estimate(two_cliques_bridge(4)) >= 3

    def test_grid_lower_bound(self):
        # 5x5 grid diameter is 8; the double sweep finds it.
        assert eccentricity_estimate(grid_lattice((5, 5))) == 8

    def test_edge_free(self):
        assert eccentricity_estimate(CSRGraph.empty(3)) == 0

    def test_validation(self, karate):
        with pytest.raises(ValidationError):
            eccentricity_estimate(karate, sweeps=0)
