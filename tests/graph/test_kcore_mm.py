"""Unit tests for k-core decomposition and Matrix Market I/O."""

import numpy as np
import pytest

from repro.graph.csr import CSRGraph
from repro.graph.generators import (
    complete_graph,
    cycle_graph,
    path_graph,
    star_graph,
    two_cliques_bridge,
)
from repro.graph.io import read_matrix_market, write_matrix_market
from repro.graph.kcore import core_numbers, degeneracy, k_core, peel_layers
from repro.utils.errors import GraphFormatError, ValidationError


class TestCoreNumbers:
    def test_path(self):
        # A path is 1-degenerate: every vertex has core number 1.
        assert core_numbers(path_graph(6)).tolist() == [1] * 6

    def test_star(self):
        core = core_numbers(star_graph(5))
        assert (core == 1).all()

    def test_cycle(self):
        assert core_numbers(cycle_graph(7)).tolist() == [2] * 7

    def test_clique(self):
        assert core_numbers(complete_graph(5)).tolist() == [4] * 5

    def test_clique_with_pendant(self):
        # 4-clique (core 3) plus a pendant vertex (core 1).
        g = CSRGraph.from_edges(
            5, [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3), (3, 4)]
        )
        core = core_numbers(g)
        assert core.tolist() == [3, 3, 3, 3, 1]

    def test_matches_networkx(self, karate):
        import networkx as nx

        expected = nx.core_number(karate.to_networkx())
        core = core_numbers(karate)
        for v, k in expected.items():
            assert core[v] == k

    def test_self_loops_ignored(self):
        g = CSRGraph.from_edges(3, [(0, 0), (0, 1), (1, 2)])
        assert core_numbers(g).tolist() == [1, 1, 1]

    def test_isolated_vertices(self):
        g = CSRGraph.from_edges(4, [(0, 1)])
        assert core_numbers(g).tolist() == [1, 1, 0, 0]

    def test_degeneracy(self, karate):
        assert degeneracy(karate) == 4
        assert degeneracy(CSRGraph.empty(3)) == 0


class TestKCoreExtraction:
    def test_two_core_drops_pendants(self):
        g = CSRGraph.from_edges(
            5, [(0, 1), (1, 2), (0, 2), (2, 3), (3, 4)]
        )
        sub, members = k_core(g, 2)
        assert members.tolist() == [0, 1, 2]
        assert sub.num_edges == 3

    def test_zero_core_is_everything(self, karate):
        sub, members = k_core(karate, 0)
        assert members.size == 34
        assert sub == karate

    def test_too_deep_core_empty(self, karate):
        sub, members = k_core(karate, 100)
        assert members.size == 0
        assert sub.num_vertices == 0

    def test_negative_k_rejected(self, karate):
        with pytest.raises(ValidationError):
            k_core(karate, -1)

    def test_peel_layers_cover_all(self, karate):
        layers = peel_layers(karate)
        merged = np.sort(np.concatenate(layers))
        np.testing.assert_array_equal(merged, np.arange(34))

    def test_layer_zero_is_vf_candidates(self):
        from repro.core.vf import single_degree_vertices
        from repro.graph.generators import road_with_spokes

        g = road_with_spokes(20, 2)
        layers = peel_layers(g)
        # Core-1 layer contains every single-degree spoke (§5.3 analogy).
        spoke_set = set(single_degree_vertices(g).tolist())
        layer1 = set(layers[0].tolist())
        assert spoke_set <= layer1


class TestMatrixMarket:
    def test_roundtrip(self, loops_graph, tmp_path):
        path = tmp_path / "g.mtx"
        write_matrix_market(loops_graph, path)
        assert read_matrix_market(path) == loops_graph

    def test_roundtrip_karate(self, karate, tmp_path):
        path = tmp_path / "k.mtx"
        write_matrix_market(karate, path)
        assert read_matrix_market(path) == karate

    def test_pattern_symmetric(self, tmp_path):
        path = tmp_path / "p.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate pattern symmetric\n"
            "3 3 2\n2 1\n3 2\n"
        )
        g = read_matrix_market(path)
        assert g.num_edges == 2
        assert g.has_edge(0, 1) and g.has_edge(1, 2)

    def test_general_with_both_triangles(self, tmp_path):
        path = tmp_path / "g.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate real general\n"
            "2 2 2\n1 2 3.5\n2 1 3.5\n"
        )
        g = read_matrix_market(path)
        assert g.edge_weight(0, 1) == 3.5

    def test_general_conflicting_weights(self, tmp_path):
        path = tmp_path / "bad.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate real general\n"
            "2 2 2\n1 2 1.0\n2 1 2.0\n"
        )
        with pytest.raises(GraphFormatError, match="asymmetric"):
            read_matrix_market(path)
        assert read_matrix_market(path, combine="max").edge_weight(0, 1) == 2.0

    def test_bad_header(self, tmp_path):
        path = tmp_path / "bad.mtx"
        path.write_text("%%MatrixMarket matrix array real general\n2 2\n")
        with pytest.raises(GraphFormatError):
            read_matrix_market(path)

    def test_nonsquare_rejected(self, tmp_path):
        path = tmp_path / "bad.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate real symmetric\n2 3 1\n1 2 1.0\n"
        )
        with pytest.raises(GraphFormatError, match="square"):
            read_matrix_market(path)

    def test_entry_count_mismatch(self, tmp_path):
        path = tmp_path / "bad.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate real symmetric\n2 2 2\n1 2 1.0\n"
        )
        with pytest.raises(GraphFormatError, match="declares 2"):
            read_matrix_market(path)

    def test_comment_lines_between(self, tmp_path):
        path = tmp_path / "c.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate real symmetric\n"
            "% a comment\n2 2 1\n% another\n2 1 4.0\n"
        )
        assert read_matrix_market(path).edge_weight(0, 1) == 4.0

    def test_diagonal_entries_become_loops(self, tmp_path):
        path = tmp_path / "d.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate real symmetric\n"
            "2 2 2\n1 1 2.0\n2 1 1.0\n"
        )
        g = read_matrix_market(path)
        assert g.self_loop_weight(0) == 2.0
