"""Unit tests for graph file formats."""

import gzip
import warnings

import numpy as np
import pytest

from repro.graph.csr import CSRGraph
from repro.graph.io import (
    load_csrz,
    read_edge_list,
    read_matrix_market,
    read_metis,
    save_csrz,
    write_edge_list,
    write_metis,
)
from repro.utils.errors import GraphFormatError


class TestEdgeList:
    def test_roundtrip_weighted(self, loops_graph, tmp_path):
        path = tmp_path / "g.txt"
        write_edge_list(loops_graph, path)
        g2 = read_edge_list(path)
        assert g2 == loops_graph

    def test_roundtrip_unweighted(self, karate, tmp_path):
        path = tmp_path / "k.txt"
        write_edge_list(karate, path, write_weights=False)
        assert read_edge_list(path) == karate

    def test_gzip_roundtrip(self, karate, tmp_path):
        path = tmp_path / "k.txt.gz"
        write_edge_list(karate, path)
        assert read_edge_list(path) == karate
        # File really is gzip-compressed.
        with gzip.open(path, "rt") as fh:
            assert fh.readline().startswith("#")

    def test_comments_and_blank_lines(self, tmp_path):
        path = tmp_path / "c.txt"
        path.write_text("# comment\n\n% other comment\n0 1\n1 2 2.5\n")
        g = read_edge_list(path)
        assert g.num_edges == 2
        assert g.edge_weight(1, 2) == 2.5

    def test_one_indexed(self, tmp_path):
        path = tmp_path / "o.txt"
        path.write_text("1 2\n2 3\n")
        g = read_edge_list(path, zero_indexed=False)
        assert g.num_vertices == 3
        assert g.has_edge(0, 1)

    def test_num_vertices_override(self, tmp_path):
        path = tmp_path / "n.txt"
        path.write_text("0 1\n")
        assert read_edge_list(path, num_vertices=10).num_vertices == 10

    def test_bad_token(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("0 x\n")
        with pytest.raises(GraphFormatError, match="bad token"):
            read_edge_list(path)

    def test_bad_arity(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("0 1 2 3\n")
        with pytest.raises(GraphFormatError, match="expected"):
            read_edge_list(path)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.txt"
        path.write_text("")
        assert read_edge_list(path).num_vertices == 0

    def test_negative_after_shift(self, tmp_path):
        path = tmp_path / "neg.txt"
        path.write_text("0 1\n")
        with pytest.raises(GraphFormatError, match="negative"):
            read_edge_list(path, zero_indexed=False)


class TestNonAsciiComments:
    """Regression: the ascii codec crashed on non-ASCII comment bytes."""

    def test_edge_list_utf8_comment(self, tmp_path):
        path = tmp_path / "cafe.txt"
        path.write_text("# café graph\n0 1\n1 2\n", encoding="utf-8")
        assert read_edge_list(path).num_edges == 2

    def test_edge_list_utf8_comment_gzip(self, tmp_path):
        path = tmp_path / "cafe.txt.gz"
        with gzip.open(path, "wt", encoding="utf-8") as fh:
            fh.write("# café graph\n0 1\n1 2\n")
        assert read_edge_list(path).num_edges == 2

    def test_edge_list_undecodable_bytes_in_comment(self, tmp_path):
        # Latin-1 comment bytes that are invalid UTF-8 must not crash
        # the reader; they only ever occur in comment lines.
        path = tmp_path / "latin1.txt"
        path.write_bytes("# caf\xe9 graph\n0 1\n".encode("latin-1"))
        assert read_edge_list(path).num_edges == 1

    def test_matrix_market_utf8_comment(self, tmp_path):
        path = tmp_path / "cafe.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate real symmetric\n"
            "% café graph — résumé of a network\n"
            "3 3 2\n2 1 1.0\n3 2 1.0\n",
            encoding="utf-8",
        )
        assert read_matrix_market(path).num_edges == 2


class TestMetis:
    def test_roundtrip_weighted(self, loops_graph, tmp_path):
        path = tmp_path / "g.metis"
        write_metis(loops_graph, path)
        assert read_metis(path) == loops_graph

    def test_roundtrip_unweighted(self, karate, tmp_path):
        path = tmp_path / "k.metis"
        write_metis(karate, path, write_weights=False)
        assert read_metis(path) == karate

    def test_hand_written_file(self, tmp_path):
        # Triangle in DIMACS10/METIS format (1-indexed, symmetric lists).
        path = tmp_path / "t.metis"
        path.write_text("3 3 0\n2 3\n1 3\n1 2\n")
        g = read_metis(path)
        assert g.num_edges == 3
        assert g.has_edge(0, 2)

    def test_comment_lines(self, tmp_path):
        path = tmp_path / "c.metis"
        path.write_text("% header comment\n2 1 0\n2\n1\n")
        assert read_metis(path).num_edges == 1

    def test_wrong_vertex_count(self, tmp_path):
        path = tmp_path / "bad.metis"
        path.write_text("3 1 0\n2\n1\n")
        with pytest.raises(GraphFormatError, match="vertex lines"):
            read_metis(path)

    def test_wrong_edge_count(self, tmp_path):
        path = tmp_path / "bad.metis"
        path.write_text("2 5 0\n2\n1\n")
        with pytest.raises(GraphFormatError, match="declares m="):
            read_metis(path)

    def test_vertex_id_out_of_range(self, tmp_path):
        path = tmp_path / "bad.metis"
        path.write_text("2 1 0\n3\n1\n")
        with pytest.raises(GraphFormatError, match="out of range"):
            read_metis(path)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.metis"
        path.write_text("")
        with pytest.raises(GraphFormatError, match="empty"):
            read_metis(path)

    def test_vertex_weights_unsupported(self, tmp_path):
        path = tmp_path / "vw.metis"
        path.write_text("2 1 11\n1 2\n1 1\n")
        with pytest.raises(GraphFormatError, match="unsupported"):
            read_metis(path)

    def test_odd_tokens_in_weighted(self, tmp_path):
        path = tmp_path / "odd.metis"
        path.write_text("2 1 1\n2 1.0 3\n1 1.0\n")
        with pytest.raises(GraphFormatError, match="odd token"):
            read_metis(path)


class TestMetisWeightSpec:
    """METIS requires positive integer weights; write_metis must not
    silently emit fractional ones (spec violation, breaks DIMACS10
    tooling interchange)."""

    @staticmethod
    def _fractional():
        return CSRGraph.from_edges(
            3, [(0, 1), (1, 2), (0, 2)], [0.5, 2.0, 1.5]
        )

    def test_integral_weights_written_as_integers(self, loops_graph,
                                                  tmp_path):
        path = tmp_path / "int.metis"
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            write_metis(loops_graph, path)
        body = path.read_text().splitlines()[1:]
        for line in body:
            for tok in line.split():
                assert "." not in tok
        assert read_metis(path) == loops_graph

    def test_fractional_weights_warn_and_roundtrip(self, tmp_path):
        g = self._fractional()
        path = tmp_path / "frac.metis"
        with pytest.warns(UserWarning, match="METIS spec"):
            write_metis(g, path)
        # Non-strict output keeps exact weights: our reader round-trips.
        assert read_metis(path) == g

    def test_strict_scales_to_integers(self, tmp_path):
        g = self._fractional()
        path = tmp_path / "strict.metis"
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            write_metis(g, path, strict=True)
        g2 = read_metis(path)
        # Weights scaled by 10: 0.5 -> 5, 2.0 -> 20, 1.5 -> 15.
        np.testing.assert_array_equal(g2.weights, g.weights * 10)

    def test_strict_unscalable_raises(self, tmp_path):
        g = CSRGraph.from_edges(2, [(0, 1)], [1.0 / 3.0])
        with pytest.raises(GraphFormatError, match="power-of-ten"):
            write_metis(g, tmp_path / "bad.metis", strict=True)


class TestNonFiniteWeights:
    """Every text reader rejects inf/nan weights at the parse site with
    a file:line diagnostic, instead of letting them poison total_weight
    downstream (CSRGraph itself also rejects them as a backstop)."""

    @pytest.mark.parametrize("token", ["inf", "-inf", "nan", "Infinity"])
    def test_edge_list(self, tmp_path, token):
        path = tmp_path / "bad.txt"
        path.write_text(f"0 1 {token}\n")
        with pytest.raises(GraphFormatError, match="non-finite"):
            read_edge_list(path)

    def test_edge_list_reports_line(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("0 1 1.0\n1 2 inf\n")
        with pytest.raises(GraphFormatError, match=r"bad\.txt:2"):
            read_edge_list(path)

    @pytest.mark.parametrize("token", ["inf", "nan"])
    def test_metis_weighted(self, tmp_path, token):
        path = tmp_path / "bad.metis"
        path.write_text(f"2 1 1\n2 {token}\n1 {token}\n")
        with pytest.raises(GraphFormatError, match="non-finite"):
            read_metis(path)

    @pytest.mark.parametrize("token", ["inf", "nan"])
    def test_matrix_market(self, tmp_path, token):
        path = tmp_path / "bad.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate real symmetric\n"
            f"2 2 1\n2 1 {token}\n"
        )
        with pytest.raises(GraphFormatError, match="non-finite"):
            read_matrix_market(path)


class TestCsrz:
    def test_roundtrip(self, loops_graph, tmp_path):
        path = tmp_path / "g.csrz.npz"
        save_csrz(loops_graph, path)
        assert load_csrz(path) == loops_graph

    def test_roundtrip_large(self, planted, tmp_path):
        path = tmp_path / "p.csrz.npz"
        save_csrz(planted, path)
        assert load_csrz(path) == planted

    def test_not_a_container(self, tmp_path):
        path = tmp_path / "x.npz"
        np.savez(path, foo=np.arange(3))
        with pytest.raises(GraphFormatError, match="not a csrz"):
            load_csrz(path)
