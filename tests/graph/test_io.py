"""Unit tests for graph file formats."""

import gzip

import numpy as np
import pytest

from repro.graph.csr import CSRGraph
from repro.graph.io import (
    load_csrz,
    read_edge_list,
    read_metis,
    save_csrz,
    write_edge_list,
    write_metis,
)
from repro.utils.errors import GraphFormatError


class TestEdgeList:
    def test_roundtrip_weighted(self, loops_graph, tmp_path):
        path = tmp_path / "g.txt"
        write_edge_list(loops_graph, path)
        g2 = read_edge_list(path)
        assert g2 == loops_graph

    def test_roundtrip_unweighted(self, karate, tmp_path):
        path = tmp_path / "k.txt"
        write_edge_list(karate, path, write_weights=False)
        assert read_edge_list(path) == karate

    def test_gzip_roundtrip(self, karate, tmp_path):
        path = tmp_path / "k.txt.gz"
        write_edge_list(karate, path)
        assert read_edge_list(path) == karate
        # File really is gzip-compressed.
        with gzip.open(path, "rt") as fh:
            assert fh.readline().startswith("#")

    def test_comments_and_blank_lines(self, tmp_path):
        path = tmp_path / "c.txt"
        path.write_text("# comment\n\n% other comment\n0 1\n1 2 2.5\n")
        g = read_edge_list(path)
        assert g.num_edges == 2
        assert g.edge_weight(1, 2) == 2.5

    def test_one_indexed(self, tmp_path):
        path = tmp_path / "o.txt"
        path.write_text("1 2\n2 3\n")
        g = read_edge_list(path, zero_indexed=False)
        assert g.num_vertices == 3
        assert g.has_edge(0, 1)

    def test_num_vertices_override(self, tmp_path):
        path = tmp_path / "n.txt"
        path.write_text("0 1\n")
        assert read_edge_list(path, num_vertices=10).num_vertices == 10

    def test_bad_token(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("0 x\n")
        with pytest.raises(GraphFormatError, match="bad token"):
            read_edge_list(path)

    def test_bad_arity(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("0 1 2 3\n")
        with pytest.raises(GraphFormatError, match="expected"):
            read_edge_list(path)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.txt"
        path.write_text("")
        assert read_edge_list(path).num_vertices == 0

    def test_negative_after_shift(self, tmp_path):
        path = tmp_path / "neg.txt"
        path.write_text("0 1\n")
        with pytest.raises(GraphFormatError, match="negative"):
            read_edge_list(path, zero_indexed=False)


class TestMetis:
    def test_roundtrip_weighted(self, loops_graph, tmp_path):
        path = tmp_path / "g.metis"
        write_metis(loops_graph, path)
        assert read_metis(path) == loops_graph

    def test_roundtrip_unweighted(self, karate, tmp_path):
        path = tmp_path / "k.metis"
        write_metis(karate, path, write_weights=False)
        assert read_metis(path) == karate

    def test_hand_written_file(self, tmp_path):
        # Triangle in DIMACS10/METIS format (1-indexed, symmetric lists).
        path = tmp_path / "t.metis"
        path.write_text("3 3 0\n2 3\n1 3\n1 2\n")
        g = read_metis(path)
        assert g.num_edges == 3
        assert g.has_edge(0, 2)

    def test_comment_lines(self, tmp_path):
        path = tmp_path / "c.metis"
        path.write_text("% header comment\n2 1 0\n2\n1\n")
        assert read_metis(path).num_edges == 1

    def test_wrong_vertex_count(self, tmp_path):
        path = tmp_path / "bad.metis"
        path.write_text("3 1 0\n2\n1\n")
        with pytest.raises(GraphFormatError, match="vertex lines"):
            read_metis(path)

    def test_wrong_edge_count(self, tmp_path):
        path = tmp_path / "bad.metis"
        path.write_text("2 5 0\n2\n1\n")
        with pytest.raises(GraphFormatError, match="declares m="):
            read_metis(path)

    def test_vertex_id_out_of_range(self, tmp_path):
        path = tmp_path / "bad.metis"
        path.write_text("2 1 0\n3\n1\n")
        with pytest.raises(GraphFormatError, match="out of range"):
            read_metis(path)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.metis"
        path.write_text("")
        with pytest.raises(GraphFormatError, match="empty"):
            read_metis(path)

    def test_vertex_weights_unsupported(self, tmp_path):
        path = tmp_path / "vw.metis"
        path.write_text("2 1 11\n1 2\n1 1\n")
        with pytest.raises(GraphFormatError, match="unsupported"):
            read_metis(path)

    def test_odd_tokens_in_weighted(self, tmp_path):
        path = tmp_path / "odd.metis"
        path.write_text("2 1 1\n2 1.0 3\n1 1.0\n")
        with pytest.raises(GraphFormatError, match="odd token"):
            read_metis(path)


class TestCsrz:
    def test_roundtrip(self, loops_graph, tmp_path):
        path = tmp_path / "g.csrz.npz"
        save_csrz(loops_graph, path)
        assert load_csrz(path) == loops_graph

    def test_roundtrip_large(self, planted, tmp_path):
        path = tmp_path / "p.csrz.npz"
        save_csrz(planted, path)
        assert load_csrz(path) == planted

    def test_not_a_container(self, tmp_path):
        path = tmp_path / "x.npz"
        np.savez(path, foo=np.arange(3))
        with pytest.raises(GraphFormatError, match="not a csrz"):
            load_csrz(path)
