"""Unit tests for the between-phase graph rebuild (paper §5.5)."""

import numpy as np
import pytest

from repro.core.modularity import community_degrees, modularity
from repro.graph.coarsen import coarsen, project_assignment
from repro.graph.csr import CSRGraph
from repro.graph.generators import karate_club, two_cliques_bridge
from repro.utils.errors import ValidationError


class TestCoarsenStructure:
    def test_two_cliques_collapse(self, cliques8):
        comm = np.array([0, 0, 0, 0, 1, 1, 1, 1])
        result = coarsen(cliques8, comm)
        g = result.graph
        assert g.num_vertices == 2
        # One inter-community bridge edge of weight 1.
        assert g.edge_weight(0, 1) == 1.0
        # Intra weight appears as self-loops; degree convention makes the
        # self-loop weight equal the sum over directed intra entries (12).
        assert g.self_loop_weight(0) == 12.0
        assert result.num_communities == 2
        assert result.intra_weight == 12.0
        assert result.inter_weight == 1.0

    def test_label_renumbering_preserves_order(self):
        g = CSRGraph.from_edges(4, [(0, 1), (2, 3)])
        # Labels 7 and 3 — non-dense, out of order.
        result = coarsen(g, np.array([7, 7, 3, 3]))
        # Label 3 < 7, so community {2,3} becomes meta-vertex 0.
        assert result.vertex_to_meta.tolist() == [1, 1, 0, 0]

    def test_all_singletons_identity(self, karate):
        result = coarsen(karate, np.arange(34))
        assert result.graph == karate
        assert result.lock_ops == 2 * 78  # every edge inter-community

    def test_all_one_community(self, karate):
        result = coarsen(karate, np.zeros(34, dtype=np.int64))
        g = result.graph
        assert g.num_vertices == 1
        assert g.self_loop_weight(0) == 2 * 78
        assert result.lock_ops == 78  # every edge intra: one lock each

    def test_degree_preservation(self, karate):
        """Coarse vertex degrees equal fine community degrees a_C."""
        comm = (np.arange(34) % 5).astype(np.int64)
        result = coarsen(karate, comm)
        a_fine = community_degrees(karate, comm, 5)
        np.testing.assert_allclose(result.graph.degrees, a_fine)

    def test_total_weight_preserved(self, karate):
        comm = (np.arange(34) % 7).astype(np.int64)
        assert coarsen(karate, comm).graph.total_weight == pytest.approx(
            karate.total_weight
        )

    def test_modularity_invariance(self, karate):
        """Q of a coarse partition == Q of the induced fine partition."""
        comm = (np.arange(34) % 6).astype(np.int64)
        result = coarsen(karate, comm)
        # Partition the 6 meta-vertices into 2 groups.
        meta_assign = np.array([0, 0, 0, 1, 1, 1])
        fine = project_assignment(result.vertex_to_meta, meta_assign)
        assert modularity(result.graph, meta_assign) == pytest.approx(
            modularity(karate, fine), abs=1e-12
        )

    def test_self_loops_in_fine_graph(self, loops_graph):
        comm = np.array([0, 0, 1])
        result = coarsen(loops_graph, comm)
        g = result.graph
        # Community 0 = {0, 1}: intra entries are loop(0,0)=2 once and edge
        # (0,1)=3 twice -> self-loop 8; community 1 = {2}: loop 5.
        assert g.self_loop_weight(0) == 2.0 + 2 * 3.0
        assert g.self_loop_weight(1) == 5.0
        assert g.edge_weight(0, 1) == 1.0
        assert g.total_weight == pytest.approx(loops_graph.total_weight)

    def test_lock_accounting(self, cliques8):
        comm = np.array([0, 0, 0, 0, 1, 1, 1, 1])
        result = coarsen(cliques8, comm)
        # 12 intra edges (1 lock each) + 1 inter edge (2 locks).
        assert result.lock_ops == 12 + 2

    def test_empty_graph(self):
        result = coarsen(CSRGraph.empty(0), np.zeros(0, dtype=np.int64))
        assert result.num_communities == 0
        assert result.graph.num_vertices == 0

    def test_validation(self, karate):
        with pytest.raises(ValidationError):
            coarsen(karate, np.zeros(3, dtype=np.int64))
        with pytest.raises(ValidationError):
            coarsen(karate, np.zeros(34, dtype=np.float64))


class TestProjectAssignment:
    def test_composition(self):
        v2m = np.array([0, 0, 1, 2])
        meta = np.array([5, 5, 9])
        assert project_assignment(v2m, meta).tolist() == [5, 5, 5, 9]

    def test_out_of_range(self):
        with pytest.raises(ValidationError):
            project_assignment(np.array([0, 3]), np.array([1, 2]))
