"""Block-diagonal packing: round trips, offsets, and validation."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.graph.batch import GraphBatch, pack_graphs
from repro.graph.csr import CSRGraph
from repro.graph.generators import planted_partition, two_cliques_bridge
from repro.utils.errors import ValidationError

from tests.properties.strategies import graphs

SETTINGS = dict(max_examples=30, deadline=None)


def graph_lists(min_graphs=1, max_graphs=6, **kwargs):
    return st.lists(graphs(**kwargs), min_size=min_graphs,
                    max_size=max_graphs)


class TestPackGraphs:
    @given(gs=graph_lists())
    @settings(**SETTINGS)
    def test_subgraph_round_trip(self, gs):
        batch = pack_graphs(gs)
        assert batch.num_graphs == len(gs)
        for i, g in enumerate(gs):
            sub = batch.subgraph(i)
            assert np.array_equal(sub.indptr, g.indptr)
            assert np.array_equal(sub.indices, g.indices)
            assert np.array_equal(sub.weights, g.weights)

    @given(gs=graph_lists())
    @settings(**SETTINGS)
    def test_union_dimensions(self, gs):
        batch = pack_graphs(gs)
        assert batch.graph.num_vertices == sum(g.num_vertices for g in gs)
        assert batch.graph.num_entries == sum(g.num_entries for g in gs)
        assert batch.vertex_offsets[-1] == batch.graph.num_vertices
        assert batch.entry_offsets[-1] == batch.graph.num_entries

    @given(gs=graph_lists())
    @settings(**SETTINGS)
    def test_union_is_valid_csr(self, gs):
        batch = pack_graphs(gs)
        # Re-validate the assembled union explicitly: packing claims that
        # shifting preserves every CSR invariant.
        CSRGraph(batch.graph.indptr, batch.graph.indices,
                 batch.graph.weights, validate=True)

    @given(gs=graph_lists())
    @settings(**SETTINGS)
    def test_blocks_are_disconnected(self, gs):
        batch = pack_graphs(gs)
        for i in range(batch.num_graphs):
            vs, es = batch.block(i), batch.entry_block(i)
            nbrs = batch.graph.indices[es]
            assert ((nbrs >= vs.start) & (nbrs < vs.stop)).all()

    @given(gs=graph_lists())
    @settings(**SETTINGS)
    def test_split_inverts_per_vertex(self, gs):
        batch = pack_graphs(gs)
        ids = batch.vertex_graph_ids()
        parts = batch.split(ids)
        for i, part in enumerate(parts):
            assert part.shape == (gs[i].num_vertices,)
            assert (part == i).all()

    def test_per_vertex_expansion(self):
        batch = pack_graphs([two_cliques_bridge(2), two_cliques_bridge(3)])
        expanded = batch.per_vertex([10.0, 20.0])
        assert np.array_equal(expanded, [10.0] * 4 + [20.0] * 6)

    def test_total_weight_is_preserved_per_block(self):
        gs = [planted_partition(3, 5, 0.6, 0.1, seed=s) for s in range(4)]
        batch = pack_graphs(gs)
        for i, g in enumerate(gs):
            # Same contiguous weight values, same reduction: identical m.
            assert batch.subgraph(i).total_weight == g.total_weight

    def test_float32_batches_stay_float32(self):
        g = two_cliques_bridge(3)
        g32 = CSRGraph(g.indptr, g.indices, g.weights.astype(np.float32),
                       validate=False)
        assert pack_graphs([g32, g32]).graph.weights.dtype == np.float32
        # Mixed dtypes promote the union (and thus every block) to f64.
        assert pack_graphs([g32, g]).graph.weights.dtype == np.float64

    def test_empty_blocks_are_allowed(self):
        batch = pack_graphs([CSRGraph.empty(3), two_cliques_bridge(2),
                             CSRGraph.empty(0)])
        assert batch.num_vertices_of(0) == 3
        assert batch.num_vertices_of(2) == 0
        assert batch.subgraph(1) == two_cliques_bridge(2)

    def test_no_graphs_rejected(self):
        with pytest.raises(ValidationError):
            pack_graphs([])

    def test_non_graph_rejected(self):
        with pytest.raises(ValidationError):
            pack_graphs([np.zeros(3)])

    def test_per_vertex_shape_mismatch_rejected(self):
        batch = pack_graphs([two_cliques_bridge(2)])
        with pytest.raises(ValidationError):
            batch.per_vertex([1.0, 2.0])
        with pytest.raises(ValidationError):
            batch.split(np.zeros(99))
