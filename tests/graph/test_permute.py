"""Unit tests for graph permutation and ordering effects."""

import numpy as np
import pytest

from repro.core.modularity import modularity
from repro.graph.permute import (
    degree_order_permutation,
    permute_graph,
    random_permutation,
)
from repro.utils.errors import ValidationError


class TestPermuteGraph:
    def test_isomorphism_preserved(self, karate):
        perm = random_permutation(34, seed=1)
        g2 = permute_graph(karate, perm)
        assert g2.num_edges == karate.num_edges
        assert g2.total_weight == karate.total_weight
        # Degrees map through the permutation.
        np.testing.assert_allclose(g2.degrees[perm], karate.degrees)
        # Edges map through the permutation.
        for u, v, w in list(karate.edges())[:20]:
            assert g2.edge_weight(int(perm[u]), int(perm[v])) == w

    def test_identity_permutation(self, karate):
        assert permute_graph(karate, np.arange(34)) == karate

    def test_modularity_invariant_under_relabel(self, planted, planted_truth):
        perm = random_permutation(planted.num_vertices, seed=2)
        g2 = permute_graph(planted, perm)
        comm2 = np.empty_like(planted_truth)
        comm2[perm] = planted_truth
        assert modularity(g2, comm2) == pytest.approx(
            modularity(planted, planted_truth)
        )

    def test_weights_preserved(self, loops_graph):
        perm = np.array([2, 0, 1])
        g2 = permute_graph(loops_graph, perm)
        assert g2.self_loop_weight(2) == 2.0  # old vertex 0's loop
        assert g2.edge_weight(2, 0) == 3.0    # old edge (0, 1)

    def test_invalid_permutation(self, karate):
        with pytest.raises(ValidationError):
            permute_graph(karate, np.zeros(34, dtype=np.int64))
        with pytest.raises(ValidationError):
            permute_graph(karate, np.arange(10))


class TestOrderings:
    def test_random_permutation_seeded(self):
        np.testing.assert_array_equal(
            random_permutation(20, seed=5), random_permutation(20, seed=5)
        )

    def test_degree_order_puts_hub_first(self):
        from repro.graph.generators import star_graph

        g = star_graph(6)
        perm = degree_order_permutation(g)
        assert perm[0] == 0  # the hub keeps id 0 (largest degree)
        ascending = degree_order_permutation(g, descending=False)
        assert ascending[0] == 6  # the hub gets the largest id

    def test_degree_order_is_permutation(self, karate):
        from repro.utils.arrays import check_permutation

        check_permutation(degree_order_permutation(karate), 34)
