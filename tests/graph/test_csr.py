"""Unit tests for the CSR graph substrate."""

import numpy as np
import pytest

from repro.graph.csr import CSRGraph
from repro.utils.errors import GraphStructureError


class TestConstruction:
    def test_from_edges_basic(self):
        g = CSRGraph.from_edges(3, [(0, 1), (1, 2)])
        assert g.num_vertices == 3
        assert g.num_edges == 2
        assert g.num_entries == 4  # each edge stored twice

    def test_empty_graph(self):
        g = CSRGraph.empty(5)
        assert g.num_vertices == 5
        assert g.num_edges == 0
        assert g.total_weight == 0.0
        assert list(g.edges()) == []

    def test_zero_vertex_graph(self):
        g = CSRGraph.empty(0)
        assert g.num_vertices == 0
        assert g.degrees.shape == (0,)

    def test_negative_vertex_count_rejected(self):
        with pytest.raises(GraphStructureError):
            CSRGraph.empty(-1)

    def test_edge_order_in_pair_irrelevant(self):
        g1 = CSRGraph.from_edges(3, [(0, 1), (1, 2)])
        g2 = CSRGraph.from_edges(3, [(1, 0), (2, 1)])
        assert g1 == g2

    def test_rows_sorted(self):
        g = CSRGraph.from_edges(4, [(0, 3), (0, 1), (0, 2)])
        nbrs, _ = g.neighbors(0)
        assert nbrs.tolist() == [1, 2, 3]

    def test_self_loop_stored_once(self):
        g = CSRGraph.from_edges(2, [(0, 0), (0, 1)])
        assert g.num_entries == 3
        assert g.num_edges == 2
        assert g.num_self_loops == 1

    def test_multi_edge_rejected_by_default(self):
        with pytest.raises(GraphStructureError, match="multi-edge"):
            CSRGraph.from_edges(2, [(0, 1), (1, 0)])

    def test_multi_edge_sum(self):
        g = CSRGraph.from_edges(2, [(0, 1), (1, 0)], [1.0, 2.5], combine="sum")
        assert g.edge_weight(0, 1) == 3.5
        assert g.num_edges == 1

    def test_multi_edge_min_max(self):
        gmin = CSRGraph.from_edges(2, [(0, 1), (1, 0)], [1.0, 2.5], combine="min")
        gmax = CSRGraph.from_edges(2, [(0, 1), (1, 0)], [1.0, 2.5], combine="max")
        assert gmin.edge_weight(0, 1) == 1.0
        assert gmax.edge_weight(0, 1) == 2.5

    def test_out_of_range_endpoint_rejected(self):
        with pytest.raises(GraphStructureError):
            CSRGraph.from_edges(2, [(0, 2)])
        with pytest.raises(GraphStructureError):
            CSRGraph.from_edges(2, [(-1, 0)])

    def test_nonpositive_weight_rejected(self):
        with pytest.raises(GraphStructureError):
            CSRGraph.from_edges(2, [(0, 1)], [0.0])
        with pytest.raises(GraphStructureError):
            CSRGraph.from_edges(2, [(0, 1)], [-1.0])

    def test_weight_length_mismatch_rejected(self):
        with pytest.raises(GraphStructureError):
            CSRGraph.from_edges(3, [(0, 1), (1, 2)], [1.0])

    def test_bad_edge_shape_rejected(self):
        with pytest.raises(GraphStructureError):
            CSRGraph.from_edges(3, np.zeros((2, 3), dtype=np.int64))

    def test_asymmetric_csr_rejected(self):
        # Entry (0 -> 1) without the reverse.
        with pytest.raises(GraphStructureError):
            CSRGraph([0, 1, 1], [1], [1.0])

    def test_asymmetric_weights_rejected(self):
        with pytest.raises(GraphStructureError):
            CSRGraph([0, 1, 2], [1, 0], [1.0, 2.0])

    def test_unsorted_row_rejected(self):
        with pytest.raises(GraphStructureError):
            CSRGraph([0, 2, 3, 4], [2, 1, 0, 0], [1.0, 1.0, 1.0, 1.0])

    def test_bad_indptr_rejected(self):
        with pytest.raises(GraphStructureError):
            CSRGraph([0, 2], [0], [1.0])  # indptr[-1] != nnz
        with pytest.raises(GraphStructureError):
            CSRGraph([0, 2, 1], [0, 1, 1], [1.0, 1.0, 1.0])


class TestProperties:
    def test_degrees_unweighted(self, triangle):
        assert triangle.degrees.tolist() == [2.0, 2.0, 2.0]
        assert triangle.total_weight == 3.0

    def test_degrees_weighted_with_loops(self, loops_graph):
        assert loops_graph.degrees.tolist() == [5.0, 4.0, 6.0]
        assert loops_graph.total_weight == pytest.approx(7.5)

    def test_degree_singleton_matches_array(self, loops_graph):
        for v in range(3):
            assert loops_graph.degree(v) == loops_graph.degrees[v]

    def test_unweighted_degrees(self, loops_graph):
        # Entries per row: v0 -> {0, 1}, v1 -> {0, 2}, v2 -> {1, 2}.
        assert loops_graph.unweighted_degrees.tolist() == [2, 2, 2]

    def test_trailing_isolated_vertices(self):
        g = CSRGraph.from_edges(5, [(0, 1)])
        assert g.degrees.tolist() == [1.0, 1.0, 0.0, 0.0, 0.0]
        assert g.isolated_vertices().tolist() == [2, 3, 4]
        assert g.is_isolated(4)
        assert not g.is_isolated(0)

    def test_num_edges_counts_loops_once(self, loops_graph):
        assert loops_graph.num_edges == 4

    def test_arrays_readonly(self, triangle):
        with pytest.raises(ValueError):
            triangle.indices[0] = 2
        with pytest.raises(ValueError):
            triangle.weights[0] = 9.0

    def test_repr(self, triangle):
        assert "n=3" in repr(triangle)
        assert "M=3" in repr(triangle)


class TestAccess:
    def test_edge_weight_present_and_absent(self, loops_graph):
        assert loops_graph.edge_weight(0, 1) == 3.0
        assert loops_graph.edge_weight(1, 0) == 3.0
        assert loops_graph.edge_weight(0, 2) == 0.0
        assert loops_graph.self_loop_weight(0) == 2.0
        assert loops_graph.self_loop_weight(1) == 0.0

    def test_has_edge(self, path4):
        assert path4.has_edge(0, 1)
        assert not path4.has_edge(0, 3)

    def test_self_loop_weights_array(self, loops_graph):
        assert loops_graph.self_loop_weights().tolist() == [2.0, 0.0, 5.0]

    def test_neighbors(self, path4):
        nbrs, w = path4.neighbors(1)
        assert nbrs.tolist() == [0, 2]
        assert w.tolist() == [1.0, 1.0]

    def test_edges_iterator_each_once(self, triangle):
        edges = sorted((u, v) for u, v, _ in triangle.edges())
        assert edges == [(0, 1), (0, 2), (1, 2)]

    def test_edge_arrays_roundtrip(self, loops_graph):
        u, v, w = loops_graph.edge_arrays()
        g2 = CSRGraph.from_edges(3, np.column_stack([u, v]), w)
        assert g2 == loops_graph

    def test_row_of_entry(self, path4):
        row = path4.row_of_entry()
        # Row lengths: 1, 2, 2, 1.
        assert row.tolist() == [0, 1, 1, 2, 2, 3]


class TestConversions:
    def test_scipy_roundtrip(self, loops_graph):
        mat = loops_graph.to_scipy()
        g2 = CSRGraph.from_scipy(mat)
        assert g2 == loops_graph

    def test_scipy_shape_and_symmetry(self, karate):
        mat = karate.to_scipy()
        assert mat.shape == (34, 34)
        dense = mat.toarray()
        assert np.array_equal(dense, dense.T)

    def test_networkx_roundtrip(self, karate):
        nx_graph = karate.to_networkx()
        g2 = CSRGraph.from_networkx(nx_graph)
        assert g2 == karate

    def test_networkx_weights_preserved(self, loops_graph):
        nx_graph = loops_graph.to_networkx()
        g2 = CSRGraph.from_networkx(nx_graph)
        assert g2 == loops_graph

    def test_from_scipy_asymmetric_rejected_on_conflict(self):
        import scipy.sparse as sp

        mat = sp.coo_array(
            (np.array([1.0, 2.0]), (np.array([0, 1]), np.array([1, 0]))),
            shape=(2, 2),
        )
        with pytest.raises(GraphStructureError):
            CSRGraph.from_scipy(mat)
        g = CSRGraph.from_scipy(mat, combine="max")
        assert g.edge_weight(0, 1) == 2.0
