"""Unit tests for the synthetic graph generators."""

import numpy as np
import pytest

from repro.graph.generators import (
    chung_lu,
    clique_chain,
    complete_graph,
    cycle_graph,
    grid_lattice,
    karate_club,
    path_graph,
    planted_partition,
    power_law_degrees,
    random_geometric,
    relaxed_caveman,
    rmat,
    road_with_spokes,
    star_graph,
    two_cliques_bridge,
)
from repro.graph.stats import degree_rsd
from repro.utils.errors import ValidationError


class TestFixtures:
    def test_path(self):
        g = path_graph(5)
        assert g.num_edges == 4
        assert g.unweighted_degrees.tolist() == [1, 2, 2, 2, 1]

    def test_cycle(self):
        g = cycle_graph(6)
        assert g.num_edges == 6
        assert set(g.unweighted_degrees.tolist()) == {2}

    def test_cycle_too_small(self):
        with pytest.raises(ValidationError):
            cycle_graph(2)

    def test_star(self):
        g = star_graph(7)
        assert g.num_vertices == 8
        assert g.unweighted_degrees[0] == 7
        assert (g.unweighted_degrees[1:] == 1).all()

    def test_complete(self):
        g = complete_graph(6)
        assert g.num_edges == 15
        assert set(g.unweighted_degrees.tolist()) == {5}

    def test_karate(self):
        g = karate_club()
        assert g.num_vertices == 34
        assert g.num_edges == 78
        assert g.unweighted_degrees[33] == 17  # the instructor hub

    def test_two_cliques_bridge(self):
        g = two_cliques_bridge(4)
        assert g.num_vertices == 8
        assert g.num_edges == 2 * 6 + 1

    def test_clique_chain(self):
        g = clique_chain(3, 4)
        assert g.num_vertices == 12
        assert g.num_edges == 3 * 6 + 2


class TestRandomModels:
    def test_planted_partition_shape(self):
        g = planted_partition(4, 25, 0.3, 0.01, seed=0)
        assert g.num_vertices == 100
        assert g.num_self_loops == 0

    def test_planted_partition_determinism(self):
        g1 = planted_partition(4, 25, 0.3, 0.01, seed=5)
        g2 = planted_partition(4, 25, 0.3, 0.01, seed=5)
        assert g1 == g2

    def test_planted_partition_edge_counts_near_expectation(self):
        g = planted_partition(4, 50, 0.4, 0.02, seed=1)
        intra_expected = 4 * (50 * 49 / 2) * 0.4
        inter_expected = 6 * 50 * 50 * 0.02
        total_expected = intra_expected + inter_expected
        assert g.num_edges == pytest.approx(total_expected, rel=0.15)

    def test_planted_partition_degenerate(self):
        assert planted_partition(2, 3, 0.0, 0.0, seed=0).num_edges == 0
        g = planted_partition(1, 4, 1.0, 0.5, seed=0)
        assert g.num_edges == 6  # one complete block

    def test_planted_partition_validation(self):
        with pytest.raises(ValidationError):
            planted_partition(0, 5, 0.1, 0.1)
        with pytest.raises(ValidationError):
            planted_partition(2, 5, 1.5, 0.1)

    def test_chung_lu_heavy_tail(self):
        w = power_law_degrees(500, 2.5, 2.0, 100.0, seed=3)
        g = chung_lu(w, seed=3)
        assert g.num_vertices == 500
        assert degree_rsd(g) > 0.5  # heavy-tailed

    def test_chung_lu_determinism(self):
        w = power_law_degrees(100, 2.5, 2.0, 50.0, seed=1)
        assert chung_lu(w, seed=2) == chung_lu(w, seed=2)

    def test_chung_lu_zero_weights(self):
        assert chung_lu(np.zeros(5)).num_edges == 0

    def test_chung_lu_validation(self):
        with pytest.raises(ValidationError):
            chung_lu(np.array([-1.0, 2.0]))
        with pytest.raises(ValidationError):
            chung_lu(np.zeros((2, 2)))

    def test_power_law_validation(self):
        with pytest.raises(ValidationError):
            power_law_degrees(10, 0.5, 1.0, 10.0)
        with pytest.raises(ValidationError):
            power_law_degrees(10, 2.5, 10.0, 1.0)

    def test_rmat_shape_and_skew(self):
        g = rmat(9, 8, seed=11)
        assert g.num_vertices == 512
        # R-MAT with default quadrants is much more skewed than uniform.
        assert degree_rsd(g) > 0.5

    def test_rmat_determinism(self):
        assert rmat(7, 4, seed=3) == rmat(7, 4, seed=3)

    def test_rmat_validation(self):
        with pytest.raises(ValidationError):
            rmat(0, 8)
        with pytest.raises(ValidationError):
            rmat(5, 8, a=0.9, b=0.2, c=0.2)

    def test_random_geometric_uniform_degrees(self):
        g = random_geometric(800, 0.06, seed=2)
        assert g.num_vertices == 800
        # RGG degree RSD is low (the Rgg_n_2_24_s0 signature, Table 1: 0.251).
        assert degree_rsd(g) < 0.5

    def test_random_geometric_radius_monotone(self):
        small = random_geometric(300, 0.04, seed=9)
        large = random_geometric(300, 0.10, seed=9)
        assert large.num_edges > small.num_edges

    def test_random_geometric_validation(self):
        with pytest.raises(ValidationError):
            random_geometric(0, 0.1)
        with pytest.raises(ValidationError):
            random_geometric(10, -0.1)

    def test_relaxed_caveman(self):
        g = relaxed_caveman(10, 8, 0.1, seed=4)
        assert g.num_vertices == 80
        assert g.num_edges > 0

    def test_relaxed_caveman_no_rewire_is_cliques(self):
        g = relaxed_caveman(3, 5, 0.0, seed=0)
        assert g.num_edges == 3 * 10


class TestWattsStrogatz:
    def test_no_rewire_is_ring_lattice(self):
        from repro.graph.generators import watts_strogatz

        g = watts_strogatz(20, 4, 0.0)
        assert g.num_edges == 20 * 2  # n*k/2
        assert set(g.unweighted_degrees.tolist()) == {4}
        assert g.has_edge(0, 1) and g.has_edge(0, 2)
        assert not g.has_edge(0, 3)

    def test_rewiring_changes_structure(self):
        from repro.graph.generators import watts_strogatz

        ring = watts_strogatz(50, 4, 0.0)
        wild = watts_strogatz(50, 4, 0.5, seed=1)
        assert wild != ring
        # Edge count can only drop (dedupe/self-loop removal on rewire).
        assert wild.num_edges <= ring.num_edges

    def test_deterministic(self):
        from repro.graph.generators import watts_strogatz

        assert watts_strogatz(30, 4, 0.2, seed=3) == watts_strogatz(
            30, 4, 0.2, seed=3
        )

    def test_small_world_shortens_paths(self):
        from repro.graph.generators import watts_strogatz
        from repro.graph.traversal import eccentricity_estimate

        ring = watts_strogatz(200, 4, 0.0)
        small_world = watts_strogatz(200, 4, 0.2, seed=0)
        assert eccentricity_estimate(small_world) < eccentricity_estimate(ring)

    def test_validation(self):
        from repro.graph.generators import watts_strogatz
        from repro.utils.errors import ValidationError

        with pytest.raises(ValidationError):
            watts_strogatz(10, 3, 0.1)  # odd k
        with pytest.raises(ValidationError):
            watts_strogatz(4, 4, 0.1)  # k >= n
        with pytest.raises(ValidationError):
            watts_strogatz(10, 4, 1.5)


class TestStructuredModels:
    def test_grid_2d(self):
        g = grid_lattice((4, 5))
        assert g.num_vertices == 20
        assert g.num_edges == 4 * 4 + 5 * 3  # 31

    def test_grid_3d(self):
        g = grid_lattice((3, 3, 3))
        assert g.num_vertices == 27
        assert g.num_edges == 3 * (2 * 3 * 3)  # 54

    def test_grid_periodic(self):
        g = grid_lattice((4, 4), periodic=True)
        assert set(g.unweighted_degrees.tolist()) == {4}
        assert g.num_edges == 32

    def test_grid_degenerate_dims(self):
        assert grid_lattice((1, 1)).num_edges == 0
        assert grid_lattice((5,)).num_edges == 4  # a path

    def test_grid_low_rsd(self):
        # The Channel/NLPKKT240 signature: near-uniform degrees.
        assert degree_rsd(grid_lattice((12, 12))) < 0.25

    def test_road_with_spokes(self):
        g = road_with_spokes(10, 3)
        assert g.num_vertices == 40
        # 9 chain edges + 30 spoke edges.
        assert g.num_edges == 39
        # All spokes are single-degree.
        assert (g.unweighted_degrees[10:] == 1).all()

    def test_road_with_shortcuts(self):
        g = road_with_spokes(20, 0, extra_chain_skip=5)
        assert g.num_edges == 19 + 3

    def test_road_validation(self):
        with pytest.raises(ValidationError):
            road_with_spokes(1, 3)
