"""Legacy setup shim.

The canonical project metadata lives in ``pyproject.toml``; this file only
exists so ``pip install -e . --no-use-pep517`` works in offline
environments that lack the ``wheel`` package (PEP 660 editable installs
require it).
"""

from setuptools import setup

setup()
